//! Minimal JSON reader for benchmark trajectory files.
//!
//! The workspace builds fully offline — no serde — so the `bench_check`
//! regression gate parses the `hsqp --bench-out` files with this small
//! recursive-descent parser instead. It supports the complete JSON grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null), which
//! is more than the bench schema needs, so schema evolution never requires
//! touching the parser.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64 — exact for the row counts and
    /// millisecond timings the bench schema carries).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved (sorted map).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates (paired or lone) are not needed by
                            // the bench schema; map them to the replacement
                            // character instead of failing the whole file.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever advances by
                    // whole ASCII tokens or len_utf8, so it stays a char
                    // boundary of the original &str.
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_document() {
        let doc = r#"{
            "schema": "hsqp-bench-v1",
            "sf": 0.01,
            "queries": [
                {"query": 1, "rows": 4, "ms": 12.5, "bytes_shuffled": 1024},
                {"query": 3, "rows": 10, "ms": 7.25, "bytes_shuffled": 0}
            ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("hsqp-bench-v1")
        );
        let queries = v.get("queries").and_then(Json::as_arr).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[1].get("rows").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = parse(r#"{"a": "x\n\"yA", "b": [true, false, null, -1.5e2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x\n\"yA"));
        let b = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[3], Json::Num(-150.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Json::Arr(Vec::new()));
    }
}
