//! `bench_check` — benchmark trajectory regression gate.
//!
//! Compares a freshly produced `hsqp --bench-out` file against a committed
//! baseline (e.g. `BENCH_tpch_sf001.json`):
//!
//! * **Row counts must match exactly.** The TPC-H generator is
//!   deterministic, so any drift means the engine changed its answer —
//!   always a failure.
//! * **Latency regressions beyond the threshold** (default +25% per query)
//!   are reported; whether they fail the run is selectable, because wall
//!   times on shared CI runners are noisy while row counts are not.
//!
//! ```bash
//! bench_check BENCH_tpch_sf001.json bench-results/BENCH_tpch.json --latency warn
//! ```

use std::process::ExitCode;

use hsqp::benchjson::{parse, Json};

const USAGE: &str = "\
bench_check — compare a bench run against a committed baseline

USAGE:
    bench_check <BASELINE.json> <CURRENT.json> [OPTIONS]

OPTIONS:
    --latency <warn|fail>  What a per-query latency regression does
                           (default warn: report but exit 0; row-count
                           drift always fails)
    --threshold <FLOAT>    Latency regression threshold as a ratio
                           (default 1.25 = +25%)
    -h, --help             Show this help
";

/// One query's numbers from a bench file.
#[derive(Debug, Clone, Copy)]
struct Entry {
    query: u32,
    rows: u64,
    ms: f64,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("hsqp-bench-v1") => {}
        Some(other) => return Err(format!("{path}: unsupported schema {other:?}")),
        None => return Err(format!("{path}: missing \"schema\" field")),
    }
    let queries = doc
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"queries\" array"))?;
    let mut entries = Vec::with_capacity(queries.len());
    for q in queries {
        let field = |name: &str| {
            q.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: query entry missing numeric {name:?}"))
        };
        entries.push(Entry {
            query: field("query")? as u32,
            rows: field("rows")? as u64,
            ms: field("ms")?,
        });
    }
    Ok(entries)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut latency_fails = false;
    let mut threshold = 1.25f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            "--latency" => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| "--latency requires a value".to_string())?;
                latency_fails = match value.as_str() {
                    "warn" => false,
                    "fail" => true,
                    other => return Err(format!("--latency expects warn | fail, got {other:?}")),
                };
                i += 2;
            }
            "--threshold" => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| "--threshold requires a value".to_string())?;
                threshold = value
                    .parse()
                    .ok()
                    .filter(|&t: &f64| t.is_finite() && t > 1.0)
                    .ok_or_else(|| format!("--threshold must be a ratio > 1, got {value:?}"))?;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?} (see --help)"));
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        return Err(format!(
            "expected exactly two file arguments, got {}\n{USAGE}",
            paths.len()
        ));
    };

    let baseline = load(baseline_path)?;
    let current = load(current_path)?;

    let mut row_failures = 0u32;
    let mut regressions = 0u32;
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.query == b.query) else {
            eprintln!(
                "FAIL Q{}: present in baseline, missing from current run",
                b.query
            );
            row_failures += 1;
            continue;
        };
        if c.rows != b.rows {
            eprintln!(
                "FAIL Q{}: row count drifted ({} baseline -> {} current)",
                b.query, b.rows, c.rows
            );
            row_failures += 1;
        }
        let ratio = if b.ms > 0.0 { c.ms / b.ms } else { f64::NAN };
        if ratio.is_finite() && ratio > threshold {
            eprintln!(
                "{} Q{}: latency regressed {:.2}x ({:.2} ms baseline -> {:.2} ms, \
                 threshold {:.2}x)",
                if latency_fails { "FAIL" } else { "WARN" },
                b.query,
                ratio,
                b.ms,
                c.ms,
                threshold
            );
            regressions += 1;
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.query == c.query) {
            eprintln!(
                "note Q{}: present in current run, not in baseline (unchecked)",
                c.query
            );
        }
    }

    eprintln!(
        "bench_check: {} queries compared, {} row-count failures, {} latency regressions",
        baseline.len(),
        row_failures,
        regressions
    );
    Ok(row_failures == 0 && (!latency_fails || regressions == 0))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
