//! `bench_check` — benchmark trajectory regression gate.
//!
//! Compares a freshly produced `hsqp --bench-out` file against a committed
//! baseline (e.g. `BENCH_tpch_sf001.json`):
//!
//! * **Row counts must match exactly.** The TPC-H generator is
//!   deterministic, so any drift means the engine changed its answer —
//!   always a failure.
//! * **Latency regressions beyond the threshold** (default +25% per query)
//!   are reported; whether they fail the run is selectable, because wall
//!   times on shared CI runners are noisy while row counts are not.
//!
//! Passing more than one current-run file enables best-of-N gating: each
//! query is compared at its *minimum* time across the runs. Contention on a
//! shared runner only ever inflates wall time, so the per-query minimum is
//! the best estimate of true speed — one quiet run out of N is enough to
//! clear the gate, while a real regression slows every run and still trips
//! it. Row counts must agree across all runs.
//!
//! With one or more `--baseline` flags instead of a positional baseline,
//! every positional file is a current run and the gate compares against
//! whichever offered baseline matches the runs' `(sf, nodes)` header —
//! so CI can offer every committed baseline and each bench leg is gated
//! by the one recorded at its own configuration. Runs that match no
//! offered baseline pass with a note (there is nothing to gate them on).
//!
//! ```bash
//! bench_check BENCH_tpch_sf001.json run1.json run2.json run3.json \
//!     --latency fail --threshold 1.5
//! bench_check --baseline BENCH_tpch_sf001.json --baseline BENCH_tpch_sf01.json \
//!     run.json --latency warn
//! ```

use std::process::ExitCode;

use hsqp::benchjson::{parse, Json};

const USAGE: &str = "\
bench_check — compare a bench run against a committed baseline

USAGE:
    bench_check <BASELINE.json> <CURRENT.json>... [OPTIONS]
    bench_check --baseline <B.json>... <CURRENT.json>... [OPTIONS]

Passing several CURRENT files gates each query on its best (minimum)
time across the runs — contention noise on shared runners is one-sided,
so min-of-N filters it out while real regressions, which slow every
run, still trip the gate. Row counts must agree across all runs.

OPTIONS:
    --baseline <PATH>      Offer a baseline (repeatable). The runs are
                           gated against the offered baseline whose
                           (sf, nodes) header matches theirs; runs that
                           match none pass with a note
    --latency <warn|fail>  What a per-query latency regression does
                           (default warn: report but exit 0; row-count
                           drift always fails)
    --threshold <FLOAT>    Latency regression threshold as a ratio
                           (default 1.25 = +25%)
    --min-ms <FLOAT>       Noise floor in milliseconds (default 0): skip
                           the latency comparison for a query when both
                           its baseline and current times are below this
                           — sub-millisecond queries on shared runners
                           are scheduling noise, not signal. Row counts
                           are still checked
    -h, --help             Show this help
";

/// One query's numbers from a bench file.
#[derive(Debug, Clone, Copy)]
struct Entry {
    query: u32,
    rows: u64,
    ms: f64,
}

/// The configuration a bench file was recorded at, used to pair runs with
/// the baseline that matches them in `--baseline` mode.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BenchConfig {
    sf: f64,
    nodes: u64,
}

fn load(path: &str) -> Result<(Vec<Entry>, Option<BenchConfig>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("hsqp-bench-v1") => {}
        Some(other) => return Err(format!("{path}: unsupported schema {other:?}")),
        None => return Err(format!("{path}: missing \"schema\" field")),
    }
    let config = match (
        doc.get("sf").and_then(Json::as_f64),
        doc.get("nodes").and_then(Json::as_f64),
    ) {
        (Some(sf), Some(nodes)) => Some(BenchConfig {
            sf,
            nodes: nodes as u64,
        }),
        _ => None,
    };
    let queries = doc
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing \"queries\" array"))?;
    let mut entries = Vec::with_capacity(queries.len());
    for q in queries {
        let field = |name: &str| {
            q.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: query entry missing numeric {name:?}"))
        };
        entries.push(Entry {
            query: field("query")? as u32,
            rows: field("rows")? as u64,
            ms: field("ms")?,
        });
    }
    Ok((entries, config))
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut offered: Vec<&str> = Vec::new();
    let mut latency_fails = false;
    let mut threshold = 1.25f64;
    let mut min_ms = 0.0f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            "--baseline" => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| "--baseline requires a path".to_string())?;
                offered.push(value);
                i += 2;
            }
            "--latency" => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| "--latency requires a value".to_string())?;
                latency_fails = match value.as_str() {
                    "warn" => false,
                    "fail" => true,
                    other => return Err(format!("--latency expects warn | fail, got {other:?}")),
                };
                i += 2;
            }
            "--threshold" => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| "--threshold requires a value".to_string())?;
                threshold = value
                    .parse()
                    .ok()
                    .filter(|&t: &f64| t.is_finite() && t > 1.0)
                    .ok_or_else(|| format!("--threshold must be a ratio > 1, got {value:?}"))?;
                i += 2;
            }
            "--min-ms" => {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| "--min-ms requires a value".to_string())?;
                min_ms = value
                    .parse()
                    .ok()
                    .filter(|&m: &f64| m.is_finite() && m >= 0.0)
                    .ok_or_else(|| {
                        format!("--min-ms must be a non-negative number, got {value:?}")
                    })?;
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag:?} (see --help)"));
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    let (explicit_baseline, current_paths): (Option<&str>, &[&str]) = if offered.is_empty() {
        let [baseline_path, current_paths @ ..] = &paths[..] else {
            return Err(format!(
                "expected at least two file arguments, got 0\n{USAGE}"
            ));
        };
        if current_paths.is_empty() {
            return Err(format!(
                "expected at least two file arguments, got 1\n{USAGE}"
            ));
        }
        (Some(*baseline_path), current_paths)
    } else {
        if paths.is_empty() {
            return Err(format!(
                "--baseline mode expects at least one current run\n{USAGE}"
            ));
        }
        (None, &paths[..])
    };

    let (mut current, current_cfg) = load(current_paths[0])?;
    // Best-of-N: keep each query's minimum time across runs (contention is
    // one-sided noise), but refuse any cross-run row-count disagreement.
    for path in &current_paths[1..] {
        let (entries, cfg) = load(path)?;
        if explicit_baseline.is_none() && cfg != current_cfg {
            return Err(format!(
                "{path}: (sf, nodes) header disagrees with {} — runs gated \
                 together must share one configuration",
                current_paths[0]
            ));
        }
        for extra in entries {
            match current.iter_mut().find(|c| c.query == extra.query) {
                Some(c) => {
                    if c.rows != extra.rows {
                        return Err(format!(
                            "Q{}: row counts disagree across current runs ({} vs {} in {path})",
                            extra.query, c.rows, extra.rows
                        ));
                    }
                    c.ms = c.ms.min(extra.ms);
                }
                None => current.push(extra),
            }
        }
    }

    // --baseline mode: gate against whichever offered baseline was
    // recorded at the runs' own (sf, nodes) configuration.
    let baseline_path = match explicit_baseline {
        Some(path) => path,
        None => {
            let cfg = current_cfg.ok_or_else(|| {
                format!(
                    "{}: carries no (sf, nodes) header to match --baseline against",
                    current_paths[0]
                )
            })?;
            let mut matching = Vec::new();
            for path in &offered {
                if load(path)?.1 == Some(cfg) {
                    matching.push(*path);
                }
            }
            match matching[..] {
                [path] => path,
                [] => {
                    eprintln!(
                        "bench_check: no offered baseline matches SF {} x {} nodes; \
                         nothing to gate this run against",
                        cfg.sf, cfg.nodes
                    );
                    return Ok(true);
                }
                _ => {
                    return Err(format!(
                        "multiple offered baselines match SF {} x {} nodes: {}",
                        cfg.sf,
                        cfg.nodes,
                        matching.join(", ")
                    ))
                }
            }
        }
    };
    let (baseline, _) = load(baseline_path)?;
    eprintln!("bench_check: gating against {baseline_path}");

    let mut row_failures = 0u32;
    let mut regressions = 0u32;
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.query == b.query) else {
            eprintln!(
                "FAIL Q{}: present in baseline, missing from current run",
                b.query
            );
            row_failures += 1;
            continue;
        };
        if c.rows != b.rows {
            eprintln!(
                "FAIL Q{}: row count drifted ({} baseline -> {} current)",
                b.query, b.rows, c.rows
            );
            row_failures += 1;
        }
        if b.ms < min_ms && c.ms < min_ms {
            // Both sides under the noise floor: a ratio between two
            // scheduler-jitter-sized numbers carries no information.
            continue;
        }
        let ratio = if b.ms > 0.0 { c.ms / b.ms } else { f64::NAN };
        if ratio.is_finite() && ratio > threshold {
            eprintln!(
                "{} Q{}: latency regressed {:.2}x ({:.2} ms baseline -> {:.2} ms, \
                 threshold {:.2}x)",
                if latency_fails { "FAIL" } else { "WARN" },
                b.query,
                ratio,
                b.ms,
                c.ms,
                threshold
            );
            regressions += 1;
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.query == c.query) {
            eprintln!(
                "note Q{}: present in current run, not in baseline (unchecked)",
                c.query
            );
        }
    }

    eprintln!(
        "bench_check: {} queries compared, {} row-count failures, {} latency regressions",
        baseline.len(),
        row_failures,
        regressions
    );
    Ok(row_failures == 0 && (!latency_fails || regressions == 0))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
