//! `hsqp-node` — one out-of-process database server.
//!
//! Binds a TCP listener, waits for an `hsqp --cluster` coordinator to
//! connect, joins the node mesh, and executes its SPMD share of every
//! query stage the coordinator ships. One process per cluster node:
//!
//! ```bash
//! hsqp-node --listen 127.0.0.1:7401 &
//! hsqp-node --listen 127.0.0.1:7402 &
//! hsqp --cluster 127.0.0.1:7401,127.0.0.1:7402 --sf 0.01
//! ```
//!
//! With `--listen 127.0.0.1:0` the OS picks a free port; the chosen
//! address is the single stdout line `hsqp-node listening on ADDR`, which
//! scripts and the integration tests parse. Diagnostics go to stderr. The
//! process exits when the coordinator sends a shutdown or disconnects.

use std::io::Write as _;
use std::process::ExitCode;

use hsqp::engine::remote::NodeServer;

const USAGE: &str = "\
hsqp-node — out-of-process cluster node for `hsqp --cluster`

USAGE:
    hsqp-node --listen <HOST:PORT>

OPTIONS:
    --listen <ADDR>   Address to listen on (port 0 = OS-assigned; the
                      bound address is printed to stdout)
    -h, --help        Show this help
";

fn run() -> Result<(), String> {
    let mut listen: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            "--listen" => {
                listen = Some(argv.get(i + 1).ok_or("--listen requires a value")?.clone());
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    let listen = listen.ok_or("--listen is required (see --help)")?;
    let server = NodeServer::bind(&listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("resolving listen address: {e}"))?;
    // The one stdout line; everything else is stderr. Flush explicitly so
    // a parent process piping stdout sees it before the blocking accept.
    println!("hsqp-node listening on {addr}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    server.run().map_err(|e| format!("node failed: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
