//! `hsqp` — end-to-end TPC-H driver.
//!
//! One command that exercises the whole stack in a single process:
//! generate TPC-H data at a given scale factor, start a simulated N-node
//! cluster (storage → tpch → numa → net → engine), run a set of the 22
//! distributed TPC-H queries through `NodeExec`, and print per-query
//! timings as JSON. CI's bench-smoke job runs this at SF 0.01 on 4 nodes
//! and archives the output next to future benchmark trajectories.
//!
//! ```bash
//! cargo run --release --bin hsqp -- --sf 0.01 --nodes 4 --output timings.json
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use hsqp::engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp::engine::planner::{Planner, PlannerConfig, TableStats};
use hsqp::engine::queries::{tpch_logical, tpch_query, Query, StageRole, ALL_QUERIES};
use hsqp::engine::QueryResult;
use hsqp::tpch::TpchDb;

const USAGE: &str = "\
hsqp — end-to-end TPC-H driver over the simulated cluster

USAGE:
    hsqp [OPTIONS]

OPTIONS:
    --sf <FLOAT>           TPC-H scale factor (default 0.01)
    --nodes <N>            Simulated servers in the cluster (default 4)
    --workers <N>          Worker threads per server (default 2)
    --queries <LIST>       Comma-separated query numbers, e.g. 1,3,6
                           (default: all 22)
    --plan-mode <M>        handwritten | builder (default handwritten);
                           builder plans queries through the logical-query
                           builder and distributed planner
    --explain              Print each stage's lowered physical plan
                           (exchange placement, broadcast vs repartition)
                           without generating data or executing; builder
                           mode plans from SF-derived cardinality
                           estimates, so choices near a threshold can
                           differ from a live run, which plans from
                           exact row counts
    --transport <T>        rdma | rdma-unscheduled | tcp (default rdma)
    --engine <E>           hybrid | classic (default hybrid)
    --message-kb <N>       Tuple bytes per network message in KiB (default 32)
    --output <PATH>        Also write the JSON report to PATH
    -h, --help             Show this help
";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanMode {
    Handwritten,
    Builder,
}

impl PlanMode {
    fn name(self) -> &'static str {
        match self {
            PlanMode::Handwritten => "handwritten",
            PlanMode::Builder => "builder",
        }
    }
}

struct Args {
    sf: f64,
    nodes: u16,
    workers: u16,
    queries: Option<Vec<u32>>,
    plan_mode: PlanMode,
    explain: bool,
    transport: String,
    engine: String,
    message_kb: usize,
    output: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sf: 0.01,
        nodes: 4,
        workers: 2,
        queries: None,
        plan_mode: PlanMode::Handwritten,
        explain: false,
        transport: "rdma".to_string(),
        engine: "hybrid".to_string(),
        message_kb: 32,
        output: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--explain" {
            args.explain = true;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--sf" => {
                args.sf = value
                    .parse()
                    .map_err(|_| format!("invalid --sf {value:?}"))?;
                if !args.sf.is_finite() || args.sf <= 0.0 {
                    return Err("--sf must be positive".into());
                }
            }
            "--nodes" => {
                args.nodes =
                    value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--nodes must be a positive integer, got {value:?}")
                    })?;
            }
            "--workers" => {
                args.workers = value.parse().ok().filter(|&w| w >= 1).ok_or_else(|| {
                    format!("--workers must be a positive integer, got {value:?}")
                })?;
            }
            "--queries" => {
                let list: Vec<u32> = value
                    .split(',')
                    .map(|q| {
                        q.trim()
                            .parse::<u32>()
                            .ok()
                            .filter(|q| (1..=22).contains(q))
                            .ok_or_else(|| format!("invalid query number {q:?} (valid: 1..=22)"))
                    })
                    .collect::<Result<_, _>>()?;
                if list.is_empty() {
                    return Err("--queries must name at least one query".into());
                }
                args.queries = Some(list);
            }
            "--plan-mode" => {
                args.plan_mode = match value.as_str() {
                    "handwritten" => PlanMode::Handwritten,
                    "builder" => PlanMode::Builder,
                    other => {
                        return Err(format!(
                            "unknown plan mode {other:?} (expected handwritten | builder)"
                        ))
                    }
                };
            }
            "--transport" => {
                args.transport = value.clone();
            }
            "--engine" => {
                args.engine = value.clone();
            }
            "--message-kb" => {
                args.message_kb = value.parse().ok().filter(|&kb| kb >= 1).ok_or_else(|| {
                    format!("--message-kb must be a positive integer (≥ 1 KiB), got {value:?}")
                })?;
            }
            "--output" => {
                args.output = Some(value.clone());
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
        i += 2;
    }
    Ok(args)
}

fn cluster_config(args: &Args) -> Result<ClusterConfig, String> {
    let transport = match args.transport.as_str() {
        "rdma" => Transport::rdma_scheduled(),
        "rdma-unscheduled" => Transport::rdma_unscheduled(),
        "tcp" => Transport::tcp(),
        other => return Err(format!("unknown transport {other:?}")),
    };
    let engine = match args.engine.as_str() {
        "hybrid" => EngineKind::Hybrid,
        "classic" => EngineKind::Classic,
        other => return Err(format!("unknown engine {other:?}")),
    };
    Ok(ClusterConfig {
        workers_per_node: args.workers,
        transport,
        engine,
        numa_cost_ns: 0.0,
        message_capacity: args.message_kb * 1024,
        ..ClusterConfig::paper(args.nodes)
    })
}

/// Minimal JSON string escaping for error messages embedded in the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Print each stage's lowered physical plan without executing anything
/// (no data generation, no cluster): exchange placement and broadcast vs
/// repartition choices are visible directly in the operator trees.
///
/// In builder mode, plans are lowered from SF-derived cardinality
/// estimates; a live run plans from the exact loaded row counts
/// (`Planner::for_cluster`), which can flip a broadcast/repartition
/// choice sitting near a threshold. Handwritten plans are fixed trees.
fn explain(args: &Args, queries: &[u32]) -> Result<(), String> {
    // Handwritten plans are fixed physical trees; only builder mode
    // involves the planner, whose choices here come from estimates.
    let planner = match args.plan_mode {
        PlanMode::Handwritten => None,
        PlanMode::Builder => {
            eprintln!(
                "note: --explain plans from SF-derived cardinality estimates; \
                 a live run plans from exact loaded row counts, which can \
                 flip choices near a threshold"
            );
            Some(Planner::new(PlannerConfig {
                stats: TableStats::for_scale_factor(args.sf),
                ..PlannerConfig::new(args.nodes)
            }))
        }
    };
    for &n in queries {
        let query: Query = match &planner {
            None => tpch_query(n).map_err(|e| format!("query {n}: {e}"))?,
            Some(planner) => {
                let logical = tpch_logical(n).map_err(|e| format!("query {n}: {e}"))?;
                planner
                    .plan_query(&logical)
                    .map_err(|e| format!("query {n}: {e}"))?
            }
        };
        println!(
            "== Q{n} ({} plans, {} nodes, SF {}) ==",
            args.plan_mode.name(),
            args.nodes,
            args.sf
        );
        let total = query.stages.len();
        for (i, stage) in query.stages.iter().enumerate() {
            let role = match &stage.role {
                StageRole::Params => " scalar parameters".to_string(),
                StageRole::Materialize(name) => format!(" materialize {name:?}"),
                StageRole::Result => " result".to_string(),
            };
            println!("-- stage {}/{total}:{role}", i + 1);
            print!("{}", stage.plan.explain());
        }
        println!();
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let cfg = cluster_config(&args)?;

    let queries: Vec<u32> = match &args.queries {
        Some(list) => list.clone(),
        None => ALL_QUERIES.to_vec(),
    };

    if args.explain {
        return explain(&args, &queries);
    }

    eprintln!(
        "generating TPC-H SF {} and starting {}-node cluster ({} transport, {} engine, {} plans)",
        args.sf,
        args.nodes,
        args.transport,
        args.engine,
        args.plan_mode.name()
    );
    let gen_started = Instant::now();
    let db = TpchDb::generate(args.sf);
    let gen_ms = gen_started.elapsed().as_secs_f64() * 1e3;

    let cluster = Cluster::start(cfg).map_err(|e| format!("cluster start failed: {e}"))?;
    let load_started = Instant::now();
    cluster
        .load_tpch_db(db)
        .map_err(|e| format!("load failed: {e}"))?;
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;

    let planner = Planner::for_cluster(&cluster);
    let mut lines = Vec::new();
    let mut total_ms = 0.0f64;
    let mut log_sum = 0.0f64;
    let mut failures = 0u32;
    for &n in &queries {
        let result: Result<QueryResult, _> = match args.plan_mode {
            PlanMode::Handwritten => {
                let query = tpch_query(n).map_err(|e| format!("query {n}: {e}"))?;
                cluster.run(&query)
            }
            PlanMode::Builder => {
                let logical = tpch_logical(n).map_err(|e| format!("query {n}: {e}"))?;
                planner
                    .plan_query(&logical)
                    .and_then(|query| cluster.run(&query))
            }
        };
        match result {
            Ok(result) => {
                let ms = result.elapsed.as_secs_f64() * 1e3;
                total_ms += ms;
                log_sum += ms.max(1e-6).ln();
                eprintln!(
                    "Q{n:<2} {ms:>10.2} ms  {:>8} rows  {:>12} bytes shuffled",
                    result.row_count(),
                    result.bytes_shuffled
                );
                lines.push(format!(
                    "    {{\"query\": {n}, \"ms\": {ms:.3}, \"rows\": {}, \
                     \"bytes_shuffled\": {}, \"messages_sent\": {}}}",
                    result.row_count(),
                    result.bytes_shuffled,
                    result.messages_sent
                ));
            }
            Err(e) => {
                failures += 1;
                eprintln!("Q{n:<2} FAILED: {e}");
                lines.push(format!(
                    "    {{\"query\": {n}, \"error\": \"{}\"}}",
                    json_escape(&e.to_string())
                ));
            }
        }
    }
    let geomean_ms = if queries.is_empty() || failures > 0 {
        f64::NAN
    } else {
        (log_sum / queries.len() as f64).exp()
    };
    cluster.shutdown();

    let mut report = String::new();
    report.push_str("{\n");
    let _ = writeln!(report, "  \"sf\": {},", args.sf);
    let _ = writeln!(report, "  \"nodes\": {},", args.nodes);
    let _ = writeln!(report, "  \"workers_per_node\": {},", args.workers);
    let _ = writeln!(
        report,
        "  \"transport\": \"{}\",",
        json_escape(&args.transport)
    );
    let _ = writeln!(report, "  \"engine\": \"{}\",", json_escape(&args.engine));
    let _ = writeln!(report, "  \"plan_mode\": \"{}\",", args.plan_mode.name());
    let _ = writeln!(report, "  \"generate_ms\": {gen_ms:.3},");
    let _ = writeln!(report, "  \"load_ms\": {load_ms:.3},");
    let _ = writeln!(report, "  \"total_ms\": {total_ms:.3},");
    if geomean_ms.is_finite() {
        let _ = writeln!(report, "  \"geomean_ms\": {geomean_ms:.3},");
    } else {
        let _ = writeln!(report, "  \"geomean_ms\": null,");
    }
    let _ = writeln!(report, "  \"failures\": {failures},");
    let _ = writeln!(report, "  \"queries\": [");
    report.push_str(&lines.join(",\n"));
    report.push_str("\n  ]\n}\n");

    println!("{report}");
    if let Some(path) = &args.output {
        std::fs::write(path, &report).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        return Err(format!("{failures} queries failed"));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
