//! `hsqp` — end-to-end TPC-H driver.
//!
//! One command that exercises the whole stack in a single process:
//! generate TPC-H data at a given scale factor, start a simulated N-node
//! cluster (storage → tpch → numa → net → engine), run a set of the 22
//! distributed TPC-H queries through `NodeExec`, and print per-query
//! timings as JSON. CI's bench-smoke job runs this at SF 0.01 on 4 nodes
//! and archives the output next to future benchmark trajectories.
//!
//! With `--clients N [--rounds R]` the driver switches to a closed-loop
//! multi-client throughput mode: N client threads each submit the query
//! set R times through the concurrent `Session::submit` path, and the
//! JSON report adds queries/hour plus per-query latency percentiles —
//! the first concurrency benchmark trajectory.
//!
//! With `--open-loop RATE` the driver switches to an *open-loop* serving
//! benchmark: arrivals are generated at a fixed offered load
//! (queries/hour, Poisson or uniform inter-arrival times) independent of
//! completions, optionally attributed round-robin to weighted tenants
//! (`--tenants gold:4,silver:1`), and the report records latency and
//! queue-wait percentiles overall and per tenant — the
//! latency-vs-offered-load methodology of the paper's serving evaluation.
//!
//! ```bash
//! cargo run --release --bin hsqp -- --sf 0.01 --nodes 4 --output timings.json
//! cargo run --release --bin hsqp -- --sf 0.01 --nodes 4 --clients 4 --rounds 3
//! cargo run --release --bin hsqp -- --sf 0.01 --open-loop 40000 --duration 10 \
//!     --tenants gold:4,silver:1
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hsqp::engine::cluster::{Cluster, ClusterConfig, EngineKind, ExprEngine, Transport};
use hsqp::engine::logical::LogicalQuery;
use hsqp::engine::planner::{Planner, PlannerConfig, TableStats};
use hsqp::engine::queries::{tpch_logical, tpch_query, Query, StageRole, ALL_QUERIES};
use hsqp::engine::remote::{ProcessCluster, ProcessClusterConfig, RemoteEngineConfig};
use hsqp::engine::serve::{parse_tenant_spec, ArrivalProcess, SubmitOptions, TenantConfig};
use hsqp::engine::stats::{FeedbackCache, StatsCatalog, StatsMode};
use hsqp::engine::vm::compile_stage;
use hsqp::engine::EngineError;
use hsqp::engine::{chrome_trace, QueryProfile, QueryResult};
use hsqp::storage::Schema;
use hsqp::tpch::{schema as tpch_schema, TpchDb, TpchTable};

const USAGE: &str = "\
hsqp — end-to-end TPC-H driver over the simulated cluster

USAGE:
    hsqp [OPTIONS]

OPTIONS:
    --sf <FLOAT>           TPC-H scale factor (default 0.01)
    --nodes <N>            Simulated servers in the cluster (default 4)
    --workers <N>          Worker threads per server (default 2)
    --queries <LIST>       Comma-separated query numbers, e.g. 1,3,6
                           (default: all 22)
    --plan-mode <M>        handwritten | builder (default handwritten);
                           builder plans queries through the logical-query
                           builder and distributed planner
    --stats <M>            off | static | feedback (default static); how
                           builder-mode planning sources estimates. off
                           reverts to the legacy flat heuristics; static
                           prices broadcast/repartition, pre-aggregation,
                           and CTE placement against the statistics
                           catalog; feedback additionally plans each stage
                           of a multi-stage query only after the previous
                           stage ran, correcting estimates with observed
                           cardinalities (remembered across queries in a
                           process-wide feedback cache). feedback requires
                           --plan-mode builder; handwritten plans are
                           fixed trees the flag cannot affect
    --explain              Print each stage's lowered physical plan
                           (exchange placement, broadcast vs repartition)
                           and, under the vm expression engine, the
                           compiled program for every filter / map / agg
                           input, without generating data or executing;
                           builder mode plans from SF-derived cardinality
                           estimates, so choices near a threshold can
                           differ from a live run, which plans from
                           exact row counts. Combined with --analyze,
                           queries execute and each one's plan + profile
                           are emitted as a single block on stderr
    --cluster <LIST>       Comma-separated hsqp-node addresses, e.g.
                           127.0.0.1:7401,127.0.0.1:7402. Runs the queries
                           on those out-of-process servers over real TCP
                           sockets instead of the in-process simulated
                           cluster; the node count is the list length
                           (--nodes is ignored) and node 0 gathers
                           results. Incompatible with --analyze,
                           --trace-out, --bench-out, --engine classic,
                           and --expr-engine ast
    --transport <T>        rdma | rdma-unscheduled | tcp (default rdma);
                           simulated-fabric modes, ignored with --cluster
    --engine <E>           hybrid | classic (default hybrid)
    --expr-engine <E>      vm | ast (default vm): run expressions on the
                           compiled vector VM, or on the tree-walking
                           AST interpreter retained as the differential
                           oracle
    --message-kb <N>       Tuple bytes per network message in KiB (default 32)
    --clients <N>          Closed-loop client threads (default 1). With
                           N > 1 (or --rounds > 1) the driver runs a
                           multi-client throughput benchmark over the
                           concurrent submission API and reports
                           queries/hour + latency percentiles
    --rounds <R>           Passes over the query set per client (default 1)
    --open-loop <RATE>     Open-loop serving benchmark: generate arrivals
                           at RATE queries/hour for --duration seconds,
                           independent of completions, and report latency
                           and queue-wait percentiles (overall and per
                           tenant). Queries still running at the window
                           end are cancelled (morsel-bounded). --clients
                           sets the concurrent execution slots
    --duration <S>         Open-loop measurement window in seconds
                           (default 10)
    --arrivals <A>         poisson | uniform inter-arrival times for
                           --open-loop (default poisson)
    --tenants <SPEC>       Comma-separated name:weight tenants, e.g.
                           gold:4,silver:1 (bare name = weight 1).
                           Open-loop arrivals are attributed round-robin
                           across them; the in-process dispatcher serves
                           their queues by weighted deficit round-robin
    --deadline-ms <N>      Per-query deadline for --open-loop submissions;
                           overdue queries are cancelled cooperatively
                           within one morsel
    --seed <N>             Arrival-process RNG seed (default 42)
    --output <PATH>        Also write the JSON report to PATH
    --analyze              EXPLAIN ANALYZE: after each query, print its
                           plan tree annotated with actual rows, wall
                           time, bytes shuffled, and per-node network
                           wait vs compute (serial mode only)
    --trace-out <PATH>     Write a Chrome trace-event JSON of all executed
                           queries (load in chrome://tracing or Perfetto;
                           serial mode only)
    --bench-out <PATH>     Write the serial run as a benchmark trajectory
                           file (compared against committed baselines by
                           the bench_check tool; serial mode only)
    --profile <on|off>     Per-query span profiling (default on); off
                           removes even the profiler's atomic-counter
                           overhead for baseline measurements
    --metrics              Print the cluster-wide metrics registry
                           (dispatcher, admission wait, per-link bytes)
                           after the run
    -h, --help             Show this help
";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanMode {
    Handwritten,
    Builder,
}

impl PlanMode {
    fn name(self) -> &'static str {
        match self {
            PlanMode::Handwritten => "handwritten",
            PlanMode::Builder => "builder",
        }
    }
}

struct Args {
    sf: f64,
    nodes: u16,
    workers: u16,
    cluster: Option<Vec<String>>,
    queries: Option<Vec<u32>>,
    plan_mode: PlanMode,
    stats: StatsMode,
    explain: bool,
    transport: String,
    engine: String,
    expr_engine: ExprEngine,
    message_kb: usize,
    clients: u16,
    rounds: u32,
    open_loop: Option<f64>,
    duration_s: f64,
    arrivals: ArrivalProcess,
    tenants: Vec<(String, TenantConfig)>,
    deadline_ms: Option<u64>,
    seed: u64,
    output: Option<String>,
    analyze: bool,
    trace_out: Option<String>,
    bench_out: Option<String>,
    profile: bool,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sf: 0.01,
        nodes: 4,
        workers: 2,
        cluster: None,
        queries: None,
        plan_mode: PlanMode::Handwritten,
        stats: StatsMode::Static,
        explain: false,
        transport: "rdma".to_string(),
        engine: "hybrid".to_string(),
        expr_engine: ExprEngine::Compiled,
        message_kb: 32,
        clients: 1,
        rounds: 1,
        open_loop: None,
        duration_s: 10.0,
        arrivals: ArrivalProcess::Poisson,
        tenants: Vec::new(),
        deadline_ms: None,
        seed: 42,
        output: None,
        analyze: false,
        trace_out: None,
        bench_out: None,
        profile: true,
        metrics: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--explain" {
            args.explain = true;
            i += 1;
            continue;
        }
        if flag == "--analyze" {
            args.analyze = true;
            i += 1;
            continue;
        }
        if flag == "--metrics" {
            args.metrics = true;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--sf" => {
                args.sf = value
                    .parse()
                    .map_err(|_| format!("invalid --sf {value:?}"))?;
                if !args.sf.is_finite() || args.sf <= 0.0 {
                    return Err("--sf must be positive".into());
                }
            }
            "--nodes" => {
                args.nodes =
                    value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--nodes must be a positive integer, got {value:?}")
                    })?;
            }
            "--workers" => {
                args.workers = value.parse().ok().filter(|&w| w >= 1).ok_or_else(|| {
                    format!("--workers must be a positive integer, got {value:?}")
                })?;
            }
            "--cluster" => {
                let addrs: Vec<String> = value
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect();
                if addrs.is_empty() {
                    return Err("--cluster must name at least one node address".into());
                }
                args.cluster = Some(addrs);
            }
            "--queries" => {
                let list: Vec<u32> = value
                    .split(',')
                    .map(|q| {
                        q.trim()
                            .parse::<u32>()
                            .ok()
                            .filter(|q| (1..=22).contains(q))
                            .ok_or_else(|| format!("invalid query number {q:?} (valid: 1..=22)"))
                    })
                    .collect::<Result<_, _>>()?;
                if list.is_empty() {
                    return Err("--queries must name at least one query".into());
                }
                args.queries = Some(list);
            }
            "--plan-mode" => {
                args.plan_mode = match value.as_str() {
                    "handwritten" => PlanMode::Handwritten,
                    "builder" => PlanMode::Builder,
                    other => {
                        return Err(format!(
                            "unknown plan mode {other:?} (expected handwritten | builder)"
                        ))
                    }
                };
            }
            "--stats" => {
                args.stats = StatsMode::parse(value).ok_or_else(|| {
                    format!("unknown stats mode {value:?} (expected off | static | feedback)")
                })?;
            }
            "--transport" => {
                args.transport = value.clone();
            }
            "--engine" => {
                args.engine = value.clone();
            }
            "--expr-engine" => {
                args.expr_engine = match value.as_str() {
                    "vm" => ExprEngine::Compiled,
                    "ast" => ExprEngine::Ast,
                    other => {
                        return Err(format!(
                            "unknown expression engine {other:?} (expected vm | ast)"
                        ))
                    }
                };
            }
            "--message-kb" => {
                args.message_kb = value.parse().ok().filter(|&kb| kb >= 1).ok_or_else(|| {
                    format!("--message-kb must be a positive integer (≥ 1 KiB), got {value:?}")
                })?;
            }
            "--clients" => {
                args.clients = value.parse().ok().filter(|&c| c >= 1).ok_or_else(|| {
                    format!("--clients must be a positive integer, got {value:?}")
                })?;
            }
            "--rounds" => {
                args.rounds =
                    value.parse().ok().filter(|&r| r >= 1).ok_or_else(|| {
                        format!("--rounds must be a positive integer, got {value:?}")
                    })?;
            }
            "--open-loop" => {
                let rate: f64 = value
                    .parse()
                    .map_err(|_| format!("invalid --open-loop rate {value:?}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err("--open-loop rate (queries/hour) must be positive".into());
                }
                args.open_loop = Some(rate);
            }
            "--duration" => {
                args.duration_s = value
                    .parse()
                    .ok()
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| format!("--duration must be positive seconds, got {value:?}"))?;
            }
            "--arrivals" => {
                args.arrivals = ArrivalProcess::parse(value).map_err(|e| e.to_string())?;
            }
            "--tenants" => {
                args.tenants = parse_tenant_spec(value).map_err(|e| e.to_string())?;
                if args.tenants.is_empty() {
                    return Err("--tenants must name at least one tenant".into());
                }
            }
            "--deadline-ms" => {
                args.deadline_ms =
                    Some(value.parse().ok().filter(|&ms| ms >= 1).ok_or_else(|| {
                        format!("--deadline-ms must be a positive integer, got {value:?}")
                    })?);
            }
            "--seed" => {
                args.seed = value
                    .parse()
                    .map_err(|_| format!("invalid --seed {value:?}"))?;
            }
            "--output" => {
                args.output = Some(value.clone());
            }
            "--trace-out" => {
                args.trace_out = Some(value.clone());
            }
            "--bench-out" => {
                args.bench_out = Some(value.clone());
            }
            "--profile" => {
                args.profile = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--profile expects on | off, got {other:?}")),
                };
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
        i += 2;
    }
    Ok(args)
}

fn cluster_config(args: &Args) -> Result<ClusterConfig, String> {
    let transport = match args.transport.as_str() {
        "rdma" => Transport::rdma_scheduled(),
        "rdma-unscheduled" => Transport::rdma_unscheduled(),
        "tcp" => Transport::tcp(),
        other => return Err(format!("unknown transport {other:?}")),
    };
    let engine = match args.engine.as_str() {
        "hybrid" => EngineKind::Hybrid,
        "classic" => EngineKind::Classic,
        other => return Err(format!("unknown engine {other:?}")),
    };
    Ok(ClusterConfig {
        workers_per_node: args.workers,
        transport,
        engine,
        expr_engine: args.expr_engine,
        numa_cost_ns: 0.0,
        message_capacity: args.message_kb * 1024,
        max_concurrent: args.clients,
        tenants: args.tenants.clone(),
        // --analyze and --trace-out need profiles even under --profile off.
        profiling: args.profile || args.analyze || args.trace_out.is_some(),
        ..ClusterConfig::paper(args.nodes)
    })
}

/// Minimal JSON string escaping for error messages embedded in the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The base-table schemas the expression compiler resolves scans against —
/// the same schemas `TpchDb::generate` produces, available without
/// generating any data.
fn base_schema(t: TpchTable) -> Option<Schema> {
    Some(match t {
        TpchTable::Part => tpch_schema::part(),
        TpchTable::Supplier => tpch_schema::supplier(),
        TpchTable::Partsupp => tpch_schema::partsupp(),
        TpchTable::Customer => tpch_schema::customer(),
        TpchTable::Orders => tpch_schema::orders(),
        TpchTable::Lineitem => tpch_schema::lineitem(),
        TpchTable::Nation => tpch_schema::nation(),
        TpchTable::Region => tpch_schema::region(),
    })
}

/// Render one query's full EXPLAIN block into a string: the banner, each
/// stage's operator tree, and — under the vm expression engine — the
/// compiled program disassembly per stage. Built as a single buffer so
/// callers write it with one syscall-ish print and nothing can interleave
/// into the middle of a block.
fn render_query_plan(args: &Args, n: u32, query: &Query, notes: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Q{n} ({} plans, {} nodes, SF {}, {} exprs) ==",
        args.plan_mode.name(),
        args.nodes,
        args.sf,
        match args.expr_engine {
            ExprEngine::Compiled => "vm",
            ExprEngine::Ast => "ast",
        }
    );
    let total = query.stages.len();
    let mut temps: HashMap<String, Schema> = HashMap::new();
    for (i, stage) in query.stages.iter().enumerate() {
        let role = match &stage.role {
            StageRole::Params => " scalar parameters".to_string(),
            StageRole::Materialize(name) => format!(" materialize {name:?}"),
            StageRole::Result => " result".to_string(),
        };
        // Builder-mode stages carry the planner's cardinality estimate
        // (and, in feedback mode, the observed cardinality that overrode
        // it); a profiled run (--analyze) prints the actuals next to it.
        let est = match (stage.estimated_rows, stage.feedback_rows) {
            (Some(e), Some(fb)) => format!("  [est ~{e:.0} rows · fb {fb:.0} rows]"),
            (Some(e), None) => format!("  [est ~{e:.0} rows]"),
            (None, _) => String::new(),
        };
        let _ = writeln!(out, "-- stage {}/{total}:{role}{est}", i + 1);
        // Cost-model decisions the planner made while lowering this stage
        // (broadcast vs repartition, pre-aggregation vs raw reshuffle,
        // CTE placement), with both priced alternatives.
        if let Some(stage_notes) = notes.get(i) {
            for note in stage_notes {
                let _ = writeln!(out, "   decision: {note}");
            }
        }
        match args.expr_engine {
            ExprEngine::Compiled => {
                let (compiled, schema) = compile_stage(&stage.plan, &&base_schema, &temps);
                out.push_str(&compiled.render(&stage.plan));
                if let StageRole::Materialize(name) = &stage.role {
                    if let Some(s) = schema {
                        temps.insert(name.clone(), s);
                    }
                }
            }
            ExprEngine::Ast => out.push_str(&stage.plan.explain()),
        }
    }
    out.push('\n');
    out
}

/// Print each stage's lowered physical plan without executing anything
/// (no data generation, no cluster): exchange placement, broadcast vs
/// repartition choices, and the compiled expression programs are visible
/// directly in the operator trees.
///
/// In builder mode, plans are lowered from SF-derived cardinality
/// estimates; a live run plans from the exact loaded row counts
/// (`Planner::for_cluster`), which can flip a broadcast/repartition
/// choice sitting near a threshold. Handwritten plans are fixed trees.
fn explain(args: &Args, queries: &[u32]) -> Result<(), String> {
    // Handwritten plans are fixed physical trees; only builder mode
    // involves the planner, whose choices here come from estimates.
    let planner = match args.plan_mode {
        PlanMode::Handwritten => None,
        PlanMode::Builder => {
            eprintln!(
                "note: --explain plans from SF-derived cardinality estimates; \
                 a live run plans from exact loaded row counts, which can \
                 flip choices near a threshold"
            );
            Some(Planner::new(PlannerConfig {
                stats: TableStats::for_scale_factor(args.sf),
                mode: args.stats,
                catalog: (args.stats != StatsMode::Off)
                    .then(|| Arc::new(StatsCatalog::declared_tpch(args.sf))),
                ..PlannerConfig::new(args.nodes)
            }))
        }
    };
    let mut out = String::new();
    for &n in queries {
        let (query, notes): (Query, Vec<Vec<String>>) = match &planner {
            None => (
                tpch_query(n).map_err(|e| format!("query {n}: {e}"))?,
                vec![],
            ),
            Some(planner) => {
                let logical = tpch_logical(n).map_err(|e| format!("query {n}: {e}"))?;
                planner
                    .plan_query_explained(&logical)
                    .map_err(|e| format!("query {n}: {e}"))?
            }
        };
        out.push_str(&render_query_plan(args, n, &query, &notes));
    }
    // One writer for the whole report: nothing else prints to stdout in
    // this mode, and stderr diagnostics cannot split a plan in half.
    print!("{out}");
    Ok(())
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// One client's observation of one query execution.
struct Observation {
    query: u32,
    ms: f64,
    /// Time the submission sat in the dispatcher queue before starting
    /// (zero on the remote backend, which has no server-side queue).
    queue_wait_ms: f64,
    rows: usize,
    bytes_shuffled: u64,
}

/// A query ready to execute: a fixed physical plan (with the cost-model
/// decision notes recorded while planning it), or — in feedback mode — a
/// logical query the backend re-plans stage-at-a-time on every execution.
enum Planned {
    Physical {
        query: Query,
        notes: Vec<Vec<String>>,
    },
    Adaptive(LogicalQuery),
}

/// Where queries execute: the in-process simulated cluster, or a set of
/// out-of-process `hsqp-node` servers reached over real TCP sockets.
enum Backend {
    Local(Cluster),
    Remote(ProcessCluster),
}

impl Backend {
    /// Run one planned query to completion, planning stage-at-a-time when
    /// it is adaptive. Both variants are safe to call from many client
    /// threads at once (the local path is submit + wait through the
    /// concurrent dispatcher; adaptive runs build a fresh per-execution
    /// [`QueryPlanner`](hsqp::engine::planner::QueryPlanner) sharing the
    /// process-wide feedback cache).
    fn run_planned(
        &self,
        planner: &Planner,
        n: u32,
        planned: &Planned,
        opts: &SubmitOptions,
    ) -> Result<QueryResult, EngineError> {
        match planned {
            Planned::Physical { query, .. } => match self {
                Backend::Local(cluster) => cluster.submit_with(query, opts)?.wait(),
                Backend::Remote(pc) => pc.run_with(query, opts),
            },
            Planned::Adaptive(logical) => {
                let qp = planner.begin_query(logical)?;
                match self {
                    Backend::Local(cluster) => cluster.submit_adaptive(qp, n, opts)?.wait(),
                    Backend::Remote(pc) => pc.run_adaptive(qp, opts),
                }
            }
        }
    }

    /// Build the distributed planner from the backend's exact loaded row
    /// counts (remote nodes report theirs at load time), running in the
    /// requested stats mode with the process-wide feedback cache attached.
    fn planner(&self, args: &Args, feedback: &Arc<FeedbackCache>) -> Planner {
        let mut planner = match self {
            Backend::Local(cluster) => Planner::for_cluster(cluster),
            Backend::Remote(pc) => {
                let mut stats = TableStats::for_scale_factor(args.sf);
                for t in TpchTable::ALL {
                    if let Some(rows) = pc.table_rows(t) {
                        stats.set_rows(t, rows as f64);
                    }
                }
                // The coordinator holds none of the data, so nothing can
                // be sampled here; plan against the spec-declared column
                // statistics at this scale factor instead.
                Planner::new(PlannerConfig {
                    stats,
                    catalog: Some(Arc::new(StatsCatalog::declared_tpch(args.sf))),
                    ..PlannerConfig::new(pc.nodes())
                })
            }
        };
        let cfg = planner.config_mut();
        cfg.mode = args.stats;
        if args.stats == StatsMode::Off {
            cfg.catalog = None;
            cfg.partitioned = false;
        }
        cfg.feedback = Some(Arc::clone(feedback));
        planner
    }

    /// Render the backend's post-run metrics for `--metrics`.
    fn metrics_render(&self) -> String {
        match self {
            Backend::Local(cluster) => cluster.metrics().render(),
            Backend::Remote(pc) => match pc.net_stats() {
                Ok((bs, br, ms, mr)) => format!(
                    "process cluster socket mesh: {bs} bytes sent, {br} bytes \
                     received, {ms} messages sent, {mr} messages received\n"
                ),
                Err(e) => format!("process cluster socket mesh: stats unavailable ({e})\n"),
            },
        }
    }

    fn shutdown(self) {
        match self {
            Backend::Local(cluster) => cluster.shutdown(),
            Backend::Remote(pc) => pc.shutdown(),
        }
    }
}

/// A started cluster with TPC-H loaded, plus the setup timings both run
/// modes report.
struct Bench {
    backend: Backend,
    gen_ms: f64,
    load_ms: f64,
}

/// Start whichever backend the flags select and load TPC-H into it
/// (shared by the serial and throughput modes).
fn start_loaded_backend(args: &Args, banner_suffix: &str) -> Result<Bench, String> {
    match &args.cluster {
        None => start_loaded_cluster(args, cluster_config(args)?, banner_suffix),
        Some(addrs) => start_remote_cluster(args, addrs, banner_suffix),
    }
}

/// Generate TPC-H at the requested scale factor, start the cluster, and
/// distribute the data (shared by the serial and throughput modes).
fn start_loaded_cluster(
    args: &Args,
    cfg: ClusterConfig,
    banner_suffix: &str,
) -> Result<Bench, String> {
    eprintln!(
        "generating TPC-H SF {} and starting {}-node cluster \
         ({} transport, {} engine, {} plans{banner_suffix})",
        args.sf,
        args.nodes,
        args.transport,
        args.engine,
        args.plan_mode.name(),
    );
    let gen_started = Instant::now();
    let db = TpchDb::generate(args.sf);
    let gen_ms = gen_started.elapsed().as_secs_f64() * 1e3;

    let cluster = Cluster::start(cfg).map_err(|e| format!("cluster start failed: {e}"))?;
    let load_started = Instant::now();
    cluster
        .load_tpch_db(db)
        .map_err(|e| format!("load failed: {e}"))?;
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;
    Ok(Bench {
        backend: Backend::Local(cluster),
        gen_ms,
        load_ms,
    })
}

/// Connect to the out-of-process `hsqp-node` servers and have each
/// generate its share of TPC-H locally (generation runs on the nodes, so
/// it is reported inside `load_ms` and `generate_ms` is zero).
fn start_remote_cluster(
    args: &Args,
    addrs: &[String],
    banner_suffix: &str,
) -> Result<Bench, String> {
    eprintln!(
        "connecting to {}-process cluster [{}] and loading TPC-H SF {} \
         ({} plans{banner_suffix})",
        addrs.len(),
        addrs.join(", "),
        args.sf,
        args.plan_mode.name(),
    );
    let cfg = ProcessClusterConfig {
        engine: RemoteEngineConfig {
            workers_per_node: args.workers,
            message_capacity: args.message_kb * 1024,
            ..RemoteEngineConfig::default()
        },
        ..ProcessClusterConfig::default()
    };
    let pc =
        ProcessCluster::connect(addrs, cfg).map_err(|e| format!("cluster connect failed: {e}"))?;
    let load_started = Instant::now();
    pc.load_tpch(args.sf)
        .map_err(|e| format!("load failed: {e}"))?;
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;
    Ok(Bench {
        backend: Backend::Remote(pc),
        gen_ms: 0.0,
        load_ms,
    })
}

/// Build each requested query once, in the selected plan mode: a fixed
/// physical plan, or the logical query itself when feedback-mode
/// execution will re-plan it stage-at-a-time.
fn plan_queries(
    args: &Args,
    planner: &Planner,
    queries: &[u32],
) -> Result<Vec<(u32, Planned)>, String> {
    queries
        .iter()
        .map(|&n| {
            let planned = match args.plan_mode {
                PlanMode::Handwritten => Planned::Physical {
                    query: tpch_query(n).map_err(|e| format!("query {n}: {e}"))?,
                    notes: Vec::new(),
                },
                PlanMode::Builder => {
                    let logical = tpch_logical(n).map_err(|e| format!("query {n}: {e}"))?;
                    if args.stats == StatsMode::Feedback {
                        Planned::Adaptive(logical)
                    } else {
                        let (query, notes) = planner
                            .plan_query_explained(&logical)
                            .map_err(|e| format!("query {n}: {e}"))?;
                        Planned::Physical { query, notes }
                    }
                }
            };
            Ok((n, planned))
        })
        .collect()
}

/// The JSON report fields shared by both run modes (configuration and
/// setup timings) — one writer so the two reports cannot drift.
fn report_header(args: &Args, gen_ms: f64, load_ms: f64) -> String {
    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"sf\": {},", args.sf);
    let _ = writeln!(report, "  \"nodes\": {},", args.nodes);
    let _ = writeln!(report, "  \"workers_per_node\": {},", args.workers);
    let _ = writeln!(
        report,
        "  \"transport\": \"{}\",",
        json_escape(&args.transport)
    );
    let _ = writeln!(report, "  \"engine\": \"{}\",", json_escape(&args.engine));
    let _ = writeln!(report, "  \"plan_mode\": \"{}\",", args.plan_mode.name());
    let _ = writeln!(report, "  \"generate_ms\": {gen_ms:.3},");
    let _ = writeln!(report, "  \"load_ms\": {load_ms:.3},");
    report
}

/// Print the report to stdout and, with `--output`, write it to a file.
fn emit_report(report: &str, output: &Option<String>) -> Result<(), String> {
    println!("{report}");
    if let Some(path) = output {
        std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Closed-loop multi-client throughput benchmark: `--clients` threads each
/// run `--rounds` passes over the query set through the concurrent
/// submission API, sharing one cluster whose dispatcher admits up to
/// `--clients` queries at once.
fn run_throughput(args: &Args, queries: &[u32]) -> Result<(), String> {
    let bench = start_loaded_backend(
        args,
        &format!(", {} clients x {} rounds", args.clients, args.rounds),
    )?;
    let backend = &bench.backend;

    // Plan every query once up front: all clients submit identical
    // physical plans, so row-count differences can only come from the
    // concurrent execution path. (In feedback mode each execution
    // re-plans adaptively against the shared cache instead.)
    let feedback = Arc::new(FeedbackCache::new());
    let planner = backend.planner(args, &feedback);
    let plans = plan_queries(args, &planner, queries)?;

    let wall_started = Instant::now();
    let client_results: Vec<(Vec<Observation>, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let plans = &plans;
                let planner = &planner;
                scope.spawn(move || {
                    let mut obs = Vec::new();
                    let mut errors = Vec::new();
                    for _ in 0..args.rounds {
                        for (n, query) in plans {
                            let started = Instant::now();
                            match backend.run_planned(planner, *n, query, &SubmitOptions::default())
                            {
                                Ok(result) => obs.push(Observation {
                                    query: *n,
                                    ms: started.elapsed().as_secs_f64() * 1e3,
                                    queue_wait_ms: result.queue_wait.as_secs_f64() * 1e3,
                                    rows: result.row_count(),
                                    bytes_shuffled: result.bytes_shuffled,
                                }),
                                Err(e) => errors.push(format!("Q{n}: {e}")),
                            }
                        }
                    }
                    (obs, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_ms = wall_started.elapsed().as_secs_f64() * 1e3;
    if args.metrics {
        eprint!("{}", backend.metrics_render());
    }
    bench.backend.shutdown();

    let mut failures: Vec<String> = Vec::new();
    let mut all: Vec<Observation> = Vec::new();
    for (obs, errors) in client_results {
        all.extend(obs);
        failures.extend(errors);
    }

    // Per-query digest; row counts must agree across every client and
    // round — a mismatch means concurrent execution corrupted a result.
    let mut lines = Vec::new();
    for &n in queries {
        let of_q: Vec<&Observation> = all.iter().filter(|o| o.query == n).collect();
        if of_q.is_empty() {
            continue;
        }
        let rows = of_q[0].rows;
        if let Some(bad) = of_q.iter().find(|o| o.rows != rows) {
            failures.push(format!(
                "Q{n}: row counts diverged across clients ({rows} vs {})",
                bad.rows
            ));
        }
        let mut ms: Vec<f64> = of_q.iter().map(|o| o.ms).collect();
        ms.sort_by(f64::total_cmp);
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        let mut waits: Vec<f64> = of_q.iter().map(|o| o.queue_wait_ms).collect();
        waits.sort_by(f64::total_cmp);
        let bytes = of_q.iter().map(|o| o.bytes_shuffled).max().unwrap_or(0);
        eprintln!(
            "Q{n:<2} {mean:>10.2} ms mean  {:>10.2} ms p99  {:>8.2} ms queue p50  \
             {rows:>8} rows  x{}",
            percentile(&ms, 0.99),
            percentile(&waits, 0.5),
            ms.len()
        );
        lines.push(format!(
            "    {{\"query\": {n}, \"rows\": {rows}, \"ms\": {}, \"ms_p50\": {}, \
             \"ms_p99\": {}, \"queue_wait_ms_p50\": {}, \"queue_wait_ms_p99\": {}, \
             \"executions\": {}, \"bytes_shuffled\": {bytes}}}",
            json_f64(mean),
            json_f64(percentile(&ms, 0.5)),
            json_f64(percentile(&ms, 0.99)),
            json_f64(percentile(&waits, 0.5)),
            json_f64(percentile(&waits, 0.99)),
            ms.len()
        ));
    }
    for f in &failures {
        lines.push(format!("    {{\"error\": \"{}\"}}", json_escape(f)));
        eprintln!("FAILED: {f}");
    }

    let mut latencies: Vec<f64> = all.iter().map(|o| o.ms).collect();
    latencies.sort_by(f64::total_cmp);
    let mut queue_waits: Vec<f64> = all.iter().map(|o| o.queue_wait_ms).collect();
    queue_waits.sort_by(f64::total_cmp);
    let queries_per_hour = if wall_ms > 0.0 {
        all.len() as f64 * 3_600_000.0 / wall_ms
    } else {
        f64::NAN
    };

    let mut report = report_header(args, bench.gen_ms, bench.load_ms);
    let _ = writeln!(report, "  \"clients\": {},", args.clients);
    let _ = writeln!(report, "  \"rounds\": {},", args.rounds);
    let _ = writeln!(report, "  \"failures\": {},", failures.len());
    let _ = writeln!(report, "  \"throughput\": {{");
    let _ = writeln!(report, "    \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(report, "    \"total_queries\": {},", all.len());
    let _ = writeln!(
        report,
        "    \"queries_per_hour\": {},",
        json_f64(queries_per_hour)
    );
    let _ = writeln!(report, "    \"latency_ms\": {{");
    let _ = writeln!(
        report,
        "      \"p50\": {},",
        json_f64(percentile(&latencies, 0.5))
    );
    let _ = writeln!(
        report,
        "      \"p90\": {},",
        json_f64(percentile(&latencies, 0.9))
    );
    let _ = writeln!(
        report,
        "      \"p99\": {},",
        json_f64(percentile(&latencies, 0.99))
    );
    let _ = writeln!(
        report,
        "      \"max\": {}",
        json_f64(latencies.last().copied().unwrap_or(f64::NAN))
    );
    let _ = writeln!(report, "    }},");
    let _ = writeln!(report, "    \"queue_wait_ms\": {{");
    let _ = writeln!(
        report,
        "      \"p50\": {},",
        json_f64(percentile(&queue_waits, 0.5))
    );
    let _ = writeln!(
        report,
        "      \"p99\": {},",
        json_f64(percentile(&queue_waits, 0.99))
    );
    let _ = writeln!(
        report,
        "      \"max\": {}",
        json_f64(queue_waits.last().copied().unwrap_or(f64::NAN))
    );
    let _ = writeln!(report, "    }}");
    let _ = writeln!(report, "  }},");
    let _ = writeln!(report, "  \"queries\": [");
    report.push_str(&lines.join(",\n"));
    report.push_str("\n  ]\n}\n");

    eprintln!(
        "{} queries in {:.0} ms -> {:.0} queries/hour",
        all.len(),
        wall_ms,
        queries_per_hour
    );
    emit_report(&report, &args.output)?;
    if !failures.is_empty() {
        return Err(format!("{} executions failed", failures.len()));
    }
    Ok(())
}

/// What became of one open-loop arrival.
enum ArrivalOutcome {
    /// Finished inside the window; latency is arrival-to-completion.
    Completed {
        latency_ms: f64,
        queue_wait_ms: f64,
        rows: usize,
    },
    /// Cancelled at the window end or by its deadline.
    Cancelled,
    /// Rejected at admission (tenant over `max_queued`).
    Rejected,
    /// A genuine execution error.
    Failed(String),
}

struct ArrivalRecord {
    /// Index into the tenant list.
    tenant: usize,
    query: u32,
    outcome: ArrivalOutcome,
}

/// Open-loop driver over the in-process cluster: submissions go through
/// the tenant-aware dispatcher (weighted-fair queues, admission caps),
/// so queue-wait numbers come from the engine itself.
fn open_loop_local(
    args: &Args,
    cluster: &Cluster,
    planner: &Planner,
    plans: &[(u32, Planned)],
    tenants: &[(String, TenantConfig)],
    offsets: &[Duration],
    window: Duration,
) -> Vec<ArrivalRecord> {
    let start = Instant::now();
    let mut pending = Vec::new();
    let mut records = Vec::new();
    for (i, &off) in offsets.iter().enumerate() {
        let due = start + off;
        if let Some(gap) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(gap);
        }
        let t = i % tenants.len();
        let (qn, query) = &plans[i % plans.len()];
        let mut opts = SubmitOptions::tenant(&tenants[t].0);
        if let Some(ms) = args.deadline_ms {
            opts = opts.with_deadline(Duration::from_millis(ms));
        }
        let submitted = match query {
            Planned::Physical { query, .. } => cluster.submit_with(query, &opts),
            Planned::Adaptive(logical) => planner
                .begin_query(logical)
                .and_then(|qp| cluster.submit_adaptive(qp, *qn, &opts)),
        };
        match submitted {
            Ok(handle) => pending.push((t, *qn, handle)),
            Err(EngineError::Admission(_)) => records.push(ArrivalRecord {
                tenant: t,
                query: *qn,
                outcome: ArrivalOutcome::Rejected,
            }),
            Err(e) => records.push(ArrivalRecord {
                tenant: t,
                query: *qn,
                outcome: ArrivalOutcome::Failed(e.to_string()),
            }),
        }
    }
    // Hold the window open to its full length, then cancel whatever is
    // still queued or running — open loop measures the window, not the
    // drain.
    let window_end = start + window;
    if let Some(rest) = window_end.checked_duration_since(Instant::now()) {
        std::thread::sleep(rest);
    }
    // Cancel everything first (a no-op CAS on already-finished queries),
    // *then* collect: waiting on handles one at a time would let the
    // dispatcher keep completing the not-yet-cancelled tail after the
    // window, skewing the per-tenant completion counts.
    for (_, _, handle) in &pending {
        handle.cancel();
    }
    for (t, qn, handle) in pending {
        let outcome = match handle.wait() {
            Ok(r) => ArrivalOutcome::Completed {
                latency_ms: r.elapsed.as_secs_f64() * 1e3,
                queue_wait_ms: r.queue_wait.as_secs_f64() * 1e3,
                rows: r.row_count(),
            },
            Err(EngineError::Cancelled) | Err(EngineError::DeadlineExceeded) => {
                ArrivalOutcome::Cancelled
            }
            Err(e) => ArrivalOutcome::Failed(e.to_string()),
        };
        records.push(ArrivalRecord {
            tenant: t,
            query: qn,
            outcome,
        });
    }
    records
}

/// Open-loop driver over the out-of-process cluster: the coordinator has
/// no server-side queue, so `--clients` worker threads emulate the
/// execution slots and queue wait is measured as pickup minus arrival.
fn open_loop_remote(
    args: &Args,
    pc: &ProcessCluster,
    planner: &Planner,
    plans: &[(u32, Planned)],
    tenants: &[(String, TenantConfig)],
    offsets: &[Duration],
    window: Duration,
) -> Vec<ArrivalRecord> {
    let start = Instant::now();
    let window_end = start + window;
    let next = AtomicUsize::new(0);
    let records: Mutex<Vec<ArrivalRecord>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..args.clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= offsets.len() {
                    break;
                }
                let due = start + offsets[i];
                if let Some(gap) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(gap);
                }
                let t = i % tenants.len();
                let (qn, query) = &plans[i % plans.len()];
                let picked_up = Instant::now();
                let outcome = if picked_up >= window_end {
                    // Still waiting for a slot when the window closed.
                    ArrivalOutcome::Cancelled
                } else {
                    let mut opts = SubmitOptions::tenant(&tenants[t].0);
                    if let Some(ms) = args.deadline_ms {
                        opts = opts.with_deadline(Duration::from_millis(ms));
                    }
                    let result = match query {
                        Planned::Physical { query, .. } => pc.run_with(query, &opts),
                        Planned::Adaptive(logical) => planner
                            .begin_query(logical)
                            .and_then(|qp| pc.run_adaptive(qp, &opts)),
                    };
                    match result {
                        Ok(r) => ArrivalOutcome::Completed {
                            latency_ms: due.elapsed().as_secs_f64() * 1e3,
                            queue_wait_ms: picked_up.duration_since(due).as_secs_f64() * 1e3,
                            rows: r.row_count(),
                        },
                        Err(EngineError::Cancelled) | Err(EngineError::DeadlineExceeded) => {
                            ArrivalOutcome::Cancelled
                        }
                        Err(e) => ArrivalOutcome::Failed(e.to_string()),
                    }
                };
                records.lock().expect("records lock").push(ArrivalRecord {
                    tenant: t,
                    query: *qn,
                    outcome,
                });
            });
        }
    });
    records.into_inner().expect("records lock")
}

/// Render `{p50, p90, p99, max}` percentiles of an unsorted millisecond
/// sample as a JSON object.
fn json_percentiles(samples: &mut [f64]) -> String {
    samples.sort_by(f64::total_cmp);
    format!(
        "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        json_f64(percentile(samples, 0.5)),
        json_f64(percentile(samples, 0.9)),
        json_f64(percentile(samples, 0.99)),
        json_f64(samples.last().copied().unwrap_or(f64::NAN))
    )
}

/// Open-loop serving benchmark: arrivals at a fixed offered load
/// (independent of completions), attributed round-robin to the configured
/// tenants, reported as latency / queue-wait distributions overall and
/// per tenant ("hsqp-openloop-v1").
fn run_open_loop(args: &Args, queries: &[u32], rate: f64) -> Result<(), String> {
    let tenants: Vec<(String, TenantConfig)> = if args.tenants.is_empty() {
        vec![("default".to_string(), TenantConfig::default())]
    } else {
        args.tenants.clone()
    };
    let window = Duration::from_secs_f64(args.duration_s);
    let offsets = args.arrivals.offsets(rate, window, args.seed);
    let arrivals_name = match args.arrivals {
        ArrivalProcess::Poisson => "poisson",
        ArrivalProcess::Uniform => "uniform",
    };

    let bench = start_loaded_backend(
        args,
        &format!(
            ", open-loop {rate} q/h x {}s, {} slots",
            args.duration_s, args.clients
        ),
    )?;
    let backend = &bench.backend;
    let feedback = Arc::new(FeedbackCache::new());
    let planner = backend.planner(args, &feedback);
    let plans = plan_queries(args, &planner, queries)?;

    eprintln!(
        "open-loop: {} {arrivals_name} arrivals over {}s (seed {}), tenants [{}]",
        offsets.len(),
        args.duration_s,
        args.seed,
        tenants
            .iter()
            .map(|(n, c)| format!("{n}:{}", c.weight))
            .collect::<Vec<_>>()
            .join(", "),
    );

    let records = match backend {
        Backend::Local(cluster) => {
            open_loop_local(args, cluster, &planner, &plans, &tenants, &offsets, window)
        }
        Backend::Remote(pc) => {
            open_loop_remote(args, pc, &planner, &plans, &tenants, &offsets, window)
        }
    };
    if args.metrics {
        eprint!("{}", backend.metrics_render());
    }
    bench.backend.shutdown();

    // Aggregate overall, per tenant, and per query. Row counts of the
    // same query must agree across every completion — concurrent serving
    // must not change results.
    let mut failures: Vec<String> = Vec::new();
    let mut latencies = Vec::new();
    let mut waits = Vec::new();
    let mut counts = [0usize; 4]; // completed, cancelled, rejected, failed
    let mut per_tenant: Vec<(usize, Vec<f64>, Vec<f64>, [usize; 4])> = tenants
        .iter()
        .enumerate()
        .map(|(i, _)| (i, Vec::new(), Vec::new(), [0usize; 4]))
        .collect();
    let mut rows_by_query: HashMap<u32, (usize, usize)> = HashMap::new(); // rows, executions
    for rec in &records {
        let slot = &mut per_tenant[rec.tenant];
        match &rec.outcome {
            ArrivalOutcome::Completed {
                latency_ms,
                queue_wait_ms,
                rows,
            } => {
                counts[0] += 1;
                slot.3[0] += 1;
                latencies.push(*latency_ms);
                waits.push(*queue_wait_ms);
                slot.1.push(*latency_ms);
                slot.2.push(*queue_wait_ms);
                let entry = rows_by_query.entry(rec.query).or_insert((*rows, 0));
                if entry.0 != *rows {
                    failures.push(format!(
                        "Q{}: row counts diverged across executions ({} vs {})",
                        rec.query, entry.0, rows
                    ));
                }
                entry.1 += 1;
            }
            ArrivalOutcome::Cancelled => {
                counts[1] += 1;
                slot.3[1] += 1;
            }
            ArrivalOutcome::Rejected => {
                counts[2] += 1;
                slot.3[2] += 1;
            }
            ArrivalOutcome::Failed(msg) => {
                counts[3] += 1;
                slot.3[3] += 1;
                failures.push(format!("Q{}: {msg}", rec.query));
            }
        }
    }

    let mut report = report_header(args, bench.gen_ms, bench.load_ms);
    report.insert_str(2, "  \"schema\": \"hsqp-openloop-v1\",\n");
    let _ = writeln!(report, "  \"offered_rate_per_hour\": {rate},");
    let _ = writeln!(report, "  \"duration_s\": {},", args.duration_s);
    let _ = writeln!(report, "  \"arrivals\": \"{arrivals_name}\",");
    let _ = writeln!(report, "  \"seed\": {},", args.seed);
    let _ = writeln!(report, "  \"clients\": {},", args.clients);
    let _ = writeln!(
        report,
        "  \"deadline_ms\": {},",
        args.deadline_ms
            .map_or("null".to_string(), |ms| ms.to_string())
    );
    let _ = writeln!(report, "  \"submitted\": {},", records.len());
    let _ = writeln!(report, "  \"completed\": {},", counts[0]);
    let _ = writeln!(report, "  \"cancelled\": {},", counts[1]);
    let _ = writeln!(report, "  \"rejected\": {},", counts[2]);
    let _ = writeln!(report, "  \"failed\": {},", counts[3]);
    let _ = writeln!(
        report,
        "  \"latency_ms\": {},",
        json_percentiles(&mut latencies)
    );
    let _ = writeln!(
        report,
        "  \"queue_wait_ms\": {},",
        json_percentiles(&mut waits)
    );
    let _ = writeln!(report, "  \"tenants\": [");
    let tenant_lines: Vec<String> = per_tenant
        .iter_mut()
        .map(|(i, lat, wait, c)| {
            let (name, cfg) = &tenants[*i];
            eprintln!(
                "tenant {name:<10} weight {:<3} {:>5} completed  {:>5} cancelled  \
                 {:>5} rejected  {:>3} failed",
                cfg.weight, c[0], c[1], c[2], c[3]
            );
            format!(
                "    {{\"tenant\": \"{}\", \"weight\": {}, \"completed\": {}, \
                 \"cancelled\": {}, \"rejected\": {}, \"failed\": {}, \
                 \"latency_ms\": {}, \"queue_wait_ms\": {}}}",
                json_escape(name),
                cfg.weight,
                c[0],
                c[1],
                c[2],
                c[3],
                json_percentiles(lat),
                json_percentiles(wait)
            )
        })
        .collect();
    report.push_str(&tenant_lines.join(",\n"));
    let _ = writeln!(report, "\n  ],");
    let _ = writeln!(report, "  \"failures\": {},", failures.len());
    let _ = writeln!(report, "  \"queries\": [");
    let mut query_lines: Vec<String> = Vec::new();
    for &n in queries {
        if let Some((rows, execs)) = rows_by_query.get(&n) {
            query_lines.push(format!(
                "    {{\"query\": {n}, \"rows\": {rows}, \"executions\": {execs}}}"
            ));
        }
    }
    report.push_str(&query_lines.join(",\n"));
    report.push_str("\n  ]\n}\n");

    for f in &failures {
        eprintln!("FAILED: {f}");
    }
    eprintln!(
        "{} arrivals: {} completed, {} cancelled at window end, {} rejected, {} failed",
        records.len(),
        counts[0],
        counts[1],
        counts[2],
        counts[3]
    );
    emit_report(&report, &args.output)?;
    if !failures.is_empty() {
        return Err(format!("{} open-loop failures", failures.len()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args = parse_args()?;

    if let Some(addrs) = &args.cluster {
        // Out-of-process mode: the profiler's spans, the trajectory file,
        // and the alternative engines live on the in-process nodes only.
        if args.analyze || args.trace_out.is_some() || args.bench_out.is_some() {
            return Err(
                "--analyze, --trace-out, and --bench-out need the in-process \
                 cluster (drop --cluster)"
                    .into(),
            );
        }
        if args.engine != "hybrid" {
            return Err("--cluster nodes always run the hybrid engine".into());
        }
        if args.expr_engine != ExprEngine::Compiled {
            return Err("--cluster nodes always run the vm expression engine".into());
        }
        // The report reflects reality: real sockets, node count from the
        // address list.
        args.nodes = addrs.len() as u16;
        args.transport = "socket".to_string();
    } else {
        // Validate the simulated-fabric flags even in modes that do not
        // start a cluster, so typos fail fast.
        cluster_config(&args)?;
    }

    if args.stats == StatsMode::Feedback && args.plan_mode == PlanMode::Handwritten {
        return Err(
            "--stats feedback re-plans queries from observed cardinalities, \
             which needs --plan-mode builder (handwritten plans are fixed trees)"
                .into(),
        );
    }

    let queries: Vec<u32> = match &args.queries {
        Some(list) => list.clone(),
        None => ALL_QUERIES.to_vec(),
    };

    // --explain alone inspects plans without executing; together with
    // --analyze the queries run and each plan + profile is emitted as one
    // buffered block (serial mode enforces the latter below).
    if args.explain && !args.analyze {
        return explain(&args, &queries);
    }

    if let Some(rate) = args.open_loop {
        if args.analyze || args.trace_out.is_some() || args.bench_out.is_some() {
            return Err(
                "--analyze, --trace-out, and --bench-out need the serial mode \
                 (drop --open-loop)"
                    .into(),
            );
        }
        if args.rounds > 1 {
            return Err("--rounds applies to the closed-loop mode, not --open-loop".into());
        }
        return run_open_loop(&args, &queries, rate);
    }

    if args.clients > 1 || args.rounds > 1 {
        if args.analyze || args.trace_out.is_some() || args.bench_out.is_some() {
            return Err(
                "--analyze, --trace-out, and --bench-out need the serial mode \
                 (--clients 1, --rounds 1)"
                    .into(),
            );
        }
        return run_throughput(&args, &queries);
    }

    let bench = start_loaded_backend(&args, "")?;
    let backend = &bench.backend;

    let feedback = Arc::new(FeedbackCache::new());
    let planner = backend.planner(&args, &feedback);
    let plans = plan_queries(&args, &planner, &queries)?;
    let mut lines = Vec::new();
    let mut bench_lines = Vec::new();
    let mut profiles: Vec<QueryProfile> = Vec::new();
    let mut total_ms = 0.0f64;
    let mut log_sum = 0.0f64;
    let mut failures = 0u32;
    for (n, query) in &plans {
        let n = *n;
        let result: Result<QueryResult, _> =
            backend.run_planned(&planner, n, query, &SubmitOptions::default());
        match result {
            Ok(result) => {
                let ms = result.elapsed.as_secs_f64() * 1e3;
                total_ms += ms;
                log_sum += ms.max(1e-6).ln();
                eprintln!(
                    "Q{n:<2} {ms:>10.2} ms  {:>8} rows  {:>12} bytes shuffled",
                    result.row_count(),
                    result.bytes_shuffled
                );
                lines.push(format!(
                    "    {{\"query\": {n}, \"ms\": {ms:.3}, \"rows\": {}, \
                     \"bytes_shuffled\": {}, \"messages_sent\": {}}}",
                    result.row_count(),
                    result.bytes_shuffled,
                    result.messages_sent
                ));
                let net_wait_ms = result
                    .profile
                    .as_ref()
                    .map_or(0.0, |p| p.net_wait().as_secs_f64() * 1e3);
                bench_lines.push(format!(
                    "    {{\"query\": {n}, \"rows\": {}, \"ms\": {ms:.3}, \
                     \"bytes_shuffled\": {}, \"net_wait_ms\": {net_wait_ms:.3}}}",
                    result.row_count(),
                    result.bytes_shuffled
                ));
                if let Some(profile) = result.profile {
                    if args.analyze {
                        // One buffered write per query: with --explain the
                        // plan (and compiled programs) lead the profile in
                        // the same block, so concurrent stderr lines can
                        // never interleave into the middle of either.
                        let mut block = String::new();
                        if args.explain {
                            match query {
                                Planned::Physical { query, notes } => {
                                    block.push_str(&render_query_plan(&args, n, query, notes));
                                }
                                // Re-planned after the run, so the printed
                                // estimates include the feedback
                                // corrections this execution just recorded.
                                Planned::Adaptive(logical) => {
                                    match planner.plan_query_explained(logical) {
                                        Ok((q, notes)) => {
                                            block.push_str(&render_query_plan(&args, n, &q, &notes))
                                        }
                                        Err(e) => {
                                            let _ = writeln!(
                                                block,
                                                "== Q{n}: replan for explain failed: {e}"
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        block.push_str(&profile.render());
                        eprint!("{block}");
                    }
                    if args.trace_out.is_some() {
                        profiles.push(profile);
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("Q{n:<2} FAILED: {e}");
                lines.push(format!(
                    "    {{\"query\": {n}, \"error\": \"{}\"}}",
                    json_escape(&e.to_string())
                ));
            }
        }
    }
    let geomean_ms = if queries.is_empty() || failures > 0 {
        f64::NAN
    } else {
        (log_sum / queries.len() as f64).exp()
    };
    if args.metrics {
        eprint!("{}", backend.metrics_render());
    }
    bench.backend.shutdown();

    if let Some(path) = &args.trace_out {
        let trace = chrome_trace(&profiles);
        std::fs::write(path, trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({} queries traced)", profiles.len());
    }
    if let Some(path) = &args.bench_out {
        let mut out = String::from("{\n  \"schema\": \"hsqp-bench-v1\",\n");
        let _ = writeln!(out, "  \"sf\": {},", args.sf);
        let _ = writeln!(out, "  \"nodes\": {},", args.nodes);
        let _ = writeln!(out, "  \"workers_per_node\": {},", args.workers);
        let _ = writeln!(
            out,
            "  \"transport\": \"{}\",",
            json_escape(&args.transport)
        );
        let _ = writeln!(out, "  \"engine\": \"{}\",", json_escape(&args.engine));
        let _ = writeln!(out, "  \"plan_mode\": \"{}\",", args.plan_mode.name());
        let _ = writeln!(out, "  \"queries\": [");
        out.push_str(&bench_lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let mut report = report_header(&args, bench.gen_ms, bench.load_ms);
    let _ = writeln!(report, "  \"total_ms\": {total_ms:.3},");
    if geomean_ms.is_finite() {
        let _ = writeln!(report, "  \"geomean_ms\": {geomean_ms:.3},");
    } else {
        let _ = writeln!(report, "  \"geomean_ms\": null,");
    }
    let _ = writeln!(report, "  \"failures\": {failures},");
    let _ = writeln!(report, "  \"queries\": [");
    report.push_str(&lines.join(",\n"));
    report.push_str("\n  ]\n}\n");

    emit_report(&report, &args.output)?;
    if failures > 0 {
        return Err(format!("{failures} queries failed"));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
