//! `hsqp` — end-to-end TPC-H driver.
//!
//! One command that exercises the whole stack in a single process:
//! generate TPC-H data at a given scale factor, start a simulated N-node
//! cluster (storage → tpch → numa → net → engine), run a set of the 22
//! distributed TPC-H queries through `NodeExec`, and print per-query
//! timings as JSON. CI's bench-smoke job runs this at SF 0.01 on 4 nodes
//! and archives the output next to future benchmark trajectories.
//!
//! With `--clients N [--rounds R]` the driver switches to a closed-loop
//! multi-client throughput mode: N client threads each submit the query
//! set R times through the concurrent `Session::submit` path, and the
//! JSON report adds queries/hour plus per-query latency percentiles —
//! the first concurrency benchmark trajectory.
//!
//! ```bash
//! cargo run --release --bin hsqp -- --sf 0.01 --nodes 4 --output timings.json
//! cargo run --release --bin hsqp -- --sf 0.01 --nodes 4 --clients 4 --rounds 3
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use hsqp::engine::cluster::{Cluster, ClusterConfig, EngineKind, ExprEngine, Transport};
use hsqp::engine::planner::{Planner, PlannerConfig, TableStats};
use hsqp::engine::queries::{tpch_logical, tpch_query, Query, StageRole, ALL_QUERIES};
use hsqp::engine::remote::{ProcessCluster, ProcessClusterConfig, RemoteEngineConfig};
use hsqp::engine::vm::compile_stage;
use hsqp::engine::EngineError;
use hsqp::engine::{chrome_trace, QueryProfile, QueryResult};
use hsqp::storage::Schema;
use hsqp::tpch::{schema as tpch_schema, TpchDb, TpchTable};

const USAGE: &str = "\
hsqp — end-to-end TPC-H driver over the simulated cluster

USAGE:
    hsqp [OPTIONS]

OPTIONS:
    --sf <FLOAT>           TPC-H scale factor (default 0.01)
    --nodes <N>            Simulated servers in the cluster (default 4)
    --workers <N>          Worker threads per server (default 2)
    --queries <LIST>       Comma-separated query numbers, e.g. 1,3,6
                           (default: all 22)
    --plan-mode <M>        handwritten | builder (default handwritten);
                           builder plans queries through the logical-query
                           builder and distributed planner
    --explain              Print each stage's lowered physical plan
                           (exchange placement, broadcast vs repartition)
                           and, under the vm expression engine, the
                           compiled program for every filter / map / agg
                           input, without generating data or executing;
                           builder mode plans from SF-derived cardinality
                           estimates, so choices near a threshold can
                           differ from a live run, which plans from
                           exact row counts. Combined with --analyze,
                           queries execute and each one's plan + profile
                           are emitted as a single block on stderr
    --cluster <LIST>       Comma-separated hsqp-node addresses, e.g.
                           127.0.0.1:7401,127.0.0.1:7402. Runs the queries
                           on those out-of-process servers over real TCP
                           sockets instead of the in-process simulated
                           cluster; the node count is the list length
                           (--nodes is ignored) and node 0 gathers
                           results. Incompatible with --analyze,
                           --trace-out, --bench-out, --engine classic,
                           and --expr-engine ast
    --transport <T>        rdma | rdma-unscheduled | tcp (default rdma);
                           simulated-fabric modes, ignored with --cluster
    --engine <E>           hybrid | classic (default hybrid)
    --expr-engine <E>      vm | ast (default vm): run expressions on the
                           compiled vector VM, or on the tree-walking
                           AST interpreter retained as the differential
                           oracle
    --message-kb <N>       Tuple bytes per network message in KiB (default 32)
    --clients <N>          Closed-loop client threads (default 1). With
                           N > 1 (or --rounds > 1) the driver runs a
                           multi-client throughput benchmark over the
                           concurrent submission API and reports
                           queries/hour + latency percentiles
    --rounds <R>           Passes over the query set per client (default 1)
    --output <PATH>        Also write the JSON report to PATH
    --analyze              EXPLAIN ANALYZE: after each query, print its
                           plan tree annotated with actual rows, wall
                           time, bytes shuffled, and per-node network
                           wait vs compute (serial mode only)
    --trace-out <PATH>     Write a Chrome trace-event JSON of all executed
                           queries (load in chrome://tracing or Perfetto;
                           serial mode only)
    --bench-out <PATH>     Write the serial run as a benchmark trajectory
                           file (compared against committed baselines by
                           the bench_check tool; serial mode only)
    --profile <on|off>     Per-query span profiling (default on); off
                           removes even the profiler's atomic-counter
                           overhead for baseline measurements
    --metrics              Print the cluster-wide metrics registry
                           (dispatcher, admission wait, per-link bytes)
                           after the run
    -h, --help             Show this help
";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanMode {
    Handwritten,
    Builder,
}

impl PlanMode {
    fn name(self) -> &'static str {
        match self {
            PlanMode::Handwritten => "handwritten",
            PlanMode::Builder => "builder",
        }
    }
}

struct Args {
    sf: f64,
    nodes: u16,
    workers: u16,
    cluster: Option<Vec<String>>,
    queries: Option<Vec<u32>>,
    plan_mode: PlanMode,
    explain: bool,
    transport: String,
    engine: String,
    expr_engine: ExprEngine,
    message_kb: usize,
    clients: u16,
    rounds: u32,
    output: Option<String>,
    analyze: bool,
    trace_out: Option<String>,
    bench_out: Option<String>,
    profile: bool,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sf: 0.01,
        nodes: 4,
        workers: 2,
        cluster: None,
        queries: None,
        plan_mode: PlanMode::Handwritten,
        explain: false,
        transport: "rdma".to_string(),
        engine: "hybrid".to_string(),
        expr_engine: ExprEngine::Compiled,
        message_kb: 32,
        clients: 1,
        rounds: 1,
        output: None,
        analyze: false,
        trace_out: None,
        bench_out: None,
        profile: true,
        metrics: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--explain" {
            args.explain = true;
            i += 1;
            continue;
        }
        if flag == "--analyze" {
            args.analyze = true;
            i += 1;
            continue;
        }
        if flag == "--metrics" {
            args.metrics = true;
            i += 1;
            continue;
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--sf" => {
                args.sf = value
                    .parse()
                    .map_err(|_| format!("invalid --sf {value:?}"))?;
                if !args.sf.is_finite() || args.sf <= 0.0 {
                    return Err("--sf must be positive".into());
                }
            }
            "--nodes" => {
                args.nodes =
                    value.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--nodes must be a positive integer, got {value:?}")
                    })?;
            }
            "--workers" => {
                args.workers = value.parse().ok().filter(|&w| w >= 1).ok_or_else(|| {
                    format!("--workers must be a positive integer, got {value:?}")
                })?;
            }
            "--cluster" => {
                let addrs: Vec<String> = value
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect();
                if addrs.is_empty() {
                    return Err("--cluster must name at least one node address".into());
                }
                args.cluster = Some(addrs);
            }
            "--queries" => {
                let list: Vec<u32> = value
                    .split(',')
                    .map(|q| {
                        q.trim()
                            .parse::<u32>()
                            .ok()
                            .filter(|q| (1..=22).contains(q))
                            .ok_or_else(|| format!("invalid query number {q:?} (valid: 1..=22)"))
                    })
                    .collect::<Result<_, _>>()?;
                if list.is_empty() {
                    return Err("--queries must name at least one query".into());
                }
                args.queries = Some(list);
            }
            "--plan-mode" => {
                args.plan_mode = match value.as_str() {
                    "handwritten" => PlanMode::Handwritten,
                    "builder" => PlanMode::Builder,
                    other => {
                        return Err(format!(
                            "unknown plan mode {other:?} (expected handwritten | builder)"
                        ))
                    }
                };
            }
            "--transport" => {
                args.transport = value.clone();
            }
            "--engine" => {
                args.engine = value.clone();
            }
            "--expr-engine" => {
                args.expr_engine = match value.as_str() {
                    "vm" => ExprEngine::Compiled,
                    "ast" => ExprEngine::Ast,
                    other => {
                        return Err(format!(
                            "unknown expression engine {other:?} (expected vm | ast)"
                        ))
                    }
                };
            }
            "--message-kb" => {
                args.message_kb = value.parse().ok().filter(|&kb| kb >= 1).ok_or_else(|| {
                    format!("--message-kb must be a positive integer (≥ 1 KiB), got {value:?}")
                })?;
            }
            "--clients" => {
                args.clients = value.parse().ok().filter(|&c| c >= 1).ok_or_else(|| {
                    format!("--clients must be a positive integer, got {value:?}")
                })?;
            }
            "--rounds" => {
                args.rounds =
                    value.parse().ok().filter(|&r| r >= 1).ok_or_else(|| {
                        format!("--rounds must be a positive integer, got {value:?}")
                    })?;
            }
            "--output" => {
                args.output = Some(value.clone());
            }
            "--trace-out" => {
                args.trace_out = Some(value.clone());
            }
            "--bench-out" => {
                args.bench_out = Some(value.clone());
            }
            "--profile" => {
                args.profile = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--profile expects on | off, got {other:?}")),
                };
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
        i += 2;
    }
    Ok(args)
}

fn cluster_config(args: &Args) -> Result<ClusterConfig, String> {
    let transport = match args.transport.as_str() {
        "rdma" => Transport::rdma_scheduled(),
        "rdma-unscheduled" => Transport::rdma_unscheduled(),
        "tcp" => Transport::tcp(),
        other => return Err(format!("unknown transport {other:?}")),
    };
    let engine = match args.engine.as_str() {
        "hybrid" => EngineKind::Hybrid,
        "classic" => EngineKind::Classic,
        other => return Err(format!("unknown engine {other:?}")),
    };
    Ok(ClusterConfig {
        workers_per_node: args.workers,
        transport,
        engine,
        expr_engine: args.expr_engine,
        numa_cost_ns: 0.0,
        message_capacity: args.message_kb * 1024,
        max_concurrent: args.clients,
        // --analyze and --trace-out need profiles even under --profile off.
        profiling: args.profile || args.analyze || args.trace_out.is_some(),
        ..ClusterConfig::paper(args.nodes)
    })
}

/// Minimal JSON string escaping for error messages embedded in the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The base-table schemas the expression compiler resolves scans against —
/// the same schemas `TpchDb::generate` produces, available without
/// generating any data.
fn base_schema(t: TpchTable) -> Option<Schema> {
    Some(match t {
        TpchTable::Part => tpch_schema::part(),
        TpchTable::Supplier => tpch_schema::supplier(),
        TpchTable::Partsupp => tpch_schema::partsupp(),
        TpchTable::Customer => tpch_schema::customer(),
        TpchTable::Orders => tpch_schema::orders(),
        TpchTable::Lineitem => tpch_schema::lineitem(),
        TpchTable::Nation => tpch_schema::nation(),
        TpchTable::Region => tpch_schema::region(),
    })
}

/// Render one query's full EXPLAIN block into a string: the banner, each
/// stage's operator tree, and — under the vm expression engine — the
/// compiled program disassembly per stage. Built as a single buffer so
/// callers write it with one syscall-ish print and nothing can interleave
/// into the middle of a block.
fn render_query_plan(args: &Args, n: u32, query: &Query) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Q{n} ({} plans, {} nodes, SF {}, {} exprs) ==",
        args.plan_mode.name(),
        args.nodes,
        args.sf,
        match args.expr_engine {
            ExprEngine::Compiled => "vm",
            ExprEngine::Ast => "ast",
        }
    );
    let total = query.stages.len();
    let mut temps: HashMap<String, Schema> = HashMap::new();
    for (i, stage) in query.stages.iter().enumerate() {
        let role = match &stage.role {
            StageRole::Params => " scalar parameters".to_string(),
            StageRole::Materialize(name) => format!(" materialize {name:?}"),
            StageRole::Result => " result".to_string(),
        };
        // Builder-mode stages carry the planner's cardinality estimate;
        // a profiled run (--analyze) prints the actuals next to it.
        let est = match stage.estimated_rows {
            Some(e) => format!("  [est ~{e:.0} rows]"),
            None => String::new(),
        };
        let _ = writeln!(out, "-- stage {}/{total}:{role}{est}", i + 1);
        match args.expr_engine {
            ExprEngine::Compiled => {
                let (compiled, schema) = compile_stage(&stage.plan, &&base_schema, &temps);
                out.push_str(&compiled.render(&stage.plan));
                if let StageRole::Materialize(name) = &stage.role {
                    if let Some(s) = schema {
                        temps.insert(name.clone(), s);
                    }
                }
            }
            ExprEngine::Ast => out.push_str(&stage.plan.explain()),
        }
    }
    out.push('\n');
    out
}

/// Print each stage's lowered physical plan without executing anything
/// (no data generation, no cluster): exchange placement, broadcast vs
/// repartition choices, and the compiled expression programs are visible
/// directly in the operator trees.
///
/// In builder mode, plans are lowered from SF-derived cardinality
/// estimates; a live run plans from the exact loaded row counts
/// (`Planner::for_cluster`), which can flip a broadcast/repartition
/// choice sitting near a threshold. Handwritten plans are fixed trees.
fn explain(args: &Args, queries: &[u32]) -> Result<(), String> {
    // Handwritten plans are fixed physical trees; only builder mode
    // involves the planner, whose choices here come from estimates.
    let planner = match args.plan_mode {
        PlanMode::Handwritten => None,
        PlanMode::Builder => {
            eprintln!(
                "note: --explain plans from SF-derived cardinality estimates; \
                 a live run plans from exact loaded row counts, which can \
                 flip choices near a threshold"
            );
            Some(Planner::new(PlannerConfig {
                stats: TableStats::for_scale_factor(args.sf),
                ..PlannerConfig::new(args.nodes)
            }))
        }
    };
    let mut out = String::new();
    for &n in queries {
        let query: Query = match &planner {
            None => tpch_query(n).map_err(|e| format!("query {n}: {e}"))?,
            Some(planner) => {
                let logical = tpch_logical(n).map_err(|e| format!("query {n}: {e}"))?;
                planner
                    .plan_query(&logical)
                    .map_err(|e| format!("query {n}: {e}"))?
            }
        };
        out.push_str(&render_query_plan(args, n, &query));
    }
    // One writer for the whole report: nothing else prints to stdout in
    // this mode, and stderr diagnostics cannot split a plan in half.
    print!("{out}");
    Ok(())
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// One client's observation of one query execution.
struct Observation {
    query: u32,
    ms: f64,
    rows: usize,
    bytes_shuffled: u64,
}

/// Where queries execute: the in-process simulated cluster, or a set of
/// out-of-process `hsqp-node` servers reached over real TCP sockets.
enum Backend {
    Local(Cluster),
    Remote(ProcessCluster),
}

impl Backend {
    /// Run one multi-stage query to completion. Both variants are safe to
    /// call from many client threads at once (the local path is
    /// submit + wait through the concurrent dispatcher).
    fn run(&self, query: &Query) -> Result<QueryResult, EngineError> {
        match self {
            Backend::Local(cluster) => cluster.run(query),
            Backend::Remote(pc) => pc.run(query),
        }
    }

    /// Build the distributed planner from the backend's exact loaded row
    /// counts (remote nodes report theirs at load time).
    fn planner(&self, sf: f64) -> Planner {
        match self {
            Backend::Local(cluster) => Planner::for_cluster(cluster),
            Backend::Remote(pc) => {
                let mut stats = TableStats::for_scale_factor(sf);
                for t in TpchTable::ALL {
                    if let Some(rows) = pc.table_rows(t) {
                        stats.set_rows(t, rows as f64);
                    }
                }
                Planner::new(PlannerConfig {
                    stats,
                    ..PlannerConfig::new(pc.nodes())
                })
            }
        }
    }

    /// Render the backend's post-run metrics for `--metrics`.
    fn metrics_render(&self) -> String {
        match self {
            Backend::Local(cluster) => cluster.metrics().render(),
            Backend::Remote(pc) => match pc.net_stats() {
                Ok((bs, br, ms, mr)) => format!(
                    "process cluster socket mesh: {bs} bytes sent, {br} bytes \
                     received, {ms} messages sent, {mr} messages received\n"
                ),
                Err(e) => format!("process cluster socket mesh: stats unavailable ({e})\n"),
            },
        }
    }

    fn shutdown(self) {
        match self {
            Backend::Local(cluster) => cluster.shutdown(),
            Backend::Remote(pc) => pc.shutdown(),
        }
    }
}

/// A started cluster with TPC-H loaded, plus the setup timings both run
/// modes report.
struct Bench {
    backend: Backend,
    gen_ms: f64,
    load_ms: f64,
}

/// Start whichever backend the flags select and load TPC-H into it
/// (shared by the serial and throughput modes).
fn start_loaded_backend(args: &Args, banner_suffix: &str) -> Result<Bench, String> {
    match &args.cluster {
        None => start_loaded_cluster(args, cluster_config(args)?, banner_suffix),
        Some(addrs) => start_remote_cluster(args, addrs, banner_suffix),
    }
}

/// Generate TPC-H at the requested scale factor, start the cluster, and
/// distribute the data (shared by the serial and throughput modes).
fn start_loaded_cluster(
    args: &Args,
    cfg: ClusterConfig,
    banner_suffix: &str,
) -> Result<Bench, String> {
    eprintln!(
        "generating TPC-H SF {} and starting {}-node cluster \
         ({} transport, {} engine, {} plans{banner_suffix})",
        args.sf,
        args.nodes,
        args.transport,
        args.engine,
        args.plan_mode.name(),
    );
    let gen_started = Instant::now();
    let db = TpchDb::generate(args.sf);
    let gen_ms = gen_started.elapsed().as_secs_f64() * 1e3;

    let cluster = Cluster::start(cfg).map_err(|e| format!("cluster start failed: {e}"))?;
    let load_started = Instant::now();
    cluster
        .load_tpch_db(db)
        .map_err(|e| format!("load failed: {e}"))?;
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;
    Ok(Bench {
        backend: Backend::Local(cluster),
        gen_ms,
        load_ms,
    })
}

/// Connect to the out-of-process `hsqp-node` servers and have each
/// generate its share of TPC-H locally (generation runs on the nodes, so
/// it is reported inside `load_ms` and `generate_ms` is zero).
fn start_remote_cluster(
    args: &Args,
    addrs: &[String],
    banner_suffix: &str,
) -> Result<Bench, String> {
    eprintln!(
        "connecting to {}-process cluster [{}] and loading TPC-H SF {} \
         ({} plans{banner_suffix})",
        addrs.len(),
        addrs.join(", "),
        args.sf,
        args.plan_mode.name(),
    );
    let cfg = ProcessClusterConfig {
        engine: RemoteEngineConfig {
            workers_per_node: args.workers,
            message_capacity: args.message_kb * 1024,
            ..RemoteEngineConfig::default()
        },
        ..ProcessClusterConfig::default()
    };
    let pc =
        ProcessCluster::connect(addrs, cfg).map_err(|e| format!("cluster connect failed: {e}"))?;
    let load_started = Instant::now();
    pc.load_tpch(args.sf)
        .map_err(|e| format!("load failed: {e}"))?;
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;
    Ok(Bench {
        backend: Backend::Remote(pc),
        gen_ms: 0.0,
        load_ms,
    })
}

/// Build the physical plan for each requested query once, in the selected
/// plan mode.
fn plan_queries(
    args: &Args,
    planner: &Planner,
    queries: &[u32],
) -> Result<Vec<(u32, Query)>, String> {
    queries
        .iter()
        .map(|&n| {
            let query = match args.plan_mode {
                PlanMode::Handwritten => tpch_query(n).map_err(|e| format!("query {n}: {e}"))?,
                PlanMode::Builder => {
                    let logical = tpch_logical(n).map_err(|e| format!("query {n}: {e}"))?;
                    planner
                        .plan_query(&logical)
                        .map_err(|e| format!("query {n}: {e}"))?
                }
            };
            Ok((n, query))
        })
        .collect()
}

/// The JSON report fields shared by both run modes (configuration and
/// setup timings) — one writer so the two reports cannot drift.
fn report_header(args: &Args, gen_ms: f64, load_ms: f64) -> String {
    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"sf\": {},", args.sf);
    let _ = writeln!(report, "  \"nodes\": {},", args.nodes);
    let _ = writeln!(report, "  \"workers_per_node\": {},", args.workers);
    let _ = writeln!(
        report,
        "  \"transport\": \"{}\",",
        json_escape(&args.transport)
    );
    let _ = writeln!(report, "  \"engine\": \"{}\",", json_escape(&args.engine));
    let _ = writeln!(report, "  \"plan_mode\": \"{}\",", args.plan_mode.name());
    let _ = writeln!(report, "  \"generate_ms\": {gen_ms:.3},");
    let _ = writeln!(report, "  \"load_ms\": {load_ms:.3},");
    report
}

/// Print the report to stdout and, with `--output`, write it to a file.
fn emit_report(report: &str, output: &Option<String>) -> Result<(), String> {
    println!("{report}");
    if let Some(path) = output {
        std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Closed-loop multi-client throughput benchmark: `--clients` threads each
/// run `--rounds` passes over the query set through the concurrent
/// submission API, sharing one cluster whose dispatcher admits up to
/// `--clients` queries at once.
fn run_throughput(args: &Args, queries: &[u32]) -> Result<(), String> {
    let bench = start_loaded_backend(
        args,
        &format!(", {} clients x {} rounds", args.clients, args.rounds),
    )?;
    let backend = &bench.backend;

    // Plan every query once up front: all clients submit identical
    // physical plans, so row-count differences can only come from the
    // concurrent execution path.
    let planner = backend.planner(args.sf);
    let plans = plan_queries(args, &planner, queries)?;

    let wall_started = Instant::now();
    let client_results: Vec<(Vec<Observation>, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let plans = &plans;
                scope.spawn(move || {
                    let mut obs = Vec::new();
                    let mut errors = Vec::new();
                    for _ in 0..args.rounds {
                        for (n, query) in plans {
                            let started = Instant::now();
                            match backend.run(query) {
                                Ok(result) => obs.push(Observation {
                                    query: *n,
                                    ms: started.elapsed().as_secs_f64() * 1e3,
                                    rows: result.row_count(),
                                    bytes_shuffled: result.bytes_shuffled,
                                }),
                                Err(e) => errors.push(format!("Q{n}: {e}")),
                            }
                        }
                    }
                    (obs, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_ms = wall_started.elapsed().as_secs_f64() * 1e3;
    if args.metrics {
        eprint!("{}", backend.metrics_render());
    }
    bench.backend.shutdown();

    let mut failures: Vec<String> = Vec::new();
    let mut all: Vec<Observation> = Vec::new();
    for (obs, errors) in client_results {
        all.extend(obs);
        failures.extend(errors);
    }

    // Per-query digest; row counts must agree across every client and
    // round — a mismatch means concurrent execution corrupted a result.
    let mut lines = Vec::new();
    for &n in queries {
        let of_q: Vec<&Observation> = all.iter().filter(|o| o.query == n).collect();
        if of_q.is_empty() {
            continue;
        }
        let rows = of_q[0].rows;
        if let Some(bad) = of_q.iter().find(|o| o.rows != rows) {
            failures.push(format!(
                "Q{n}: row counts diverged across clients ({rows} vs {})",
                bad.rows
            ));
        }
        let mut ms: Vec<f64> = of_q.iter().map(|o| o.ms).collect();
        ms.sort_by(f64::total_cmp);
        let mean = ms.iter().sum::<f64>() / ms.len() as f64;
        let bytes = of_q.iter().map(|o| o.bytes_shuffled).max().unwrap_or(0);
        eprintln!(
            "Q{n:<2} {mean:>10.2} ms mean  {:>10.2} ms p99  {rows:>8} rows  x{}",
            percentile(&ms, 0.99),
            ms.len()
        );
        lines.push(format!(
            "    {{\"query\": {n}, \"rows\": {rows}, \"ms\": {}, \"ms_p50\": {}, \
             \"ms_p99\": {}, \"executions\": {}, \"bytes_shuffled\": {bytes}}}",
            json_f64(mean),
            json_f64(percentile(&ms, 0.5)),
            json_f64(percentile(&ms, 0.99)),
            ms.len()
        ));
    }
    for f in &failures {
        lines.push(format!("    {{\"error\": \"{}\"}}", json_escape(f)));
        eprintln!("FAILED: {f}");
    }

    let mut latencies: Vec<f64> = all.iter().map(|o| o.ms).collect();
    latencies.sort_by(f64::total_cmp);
    let queries_per_hour = if wall_ms > 0.0 {
        all.len() as f64 * 3_600_000.0 / wall_ms
    } else {
        f64::NAN
    };

    let mut report = report_header(args, bench.gen_ms, bench.load_ms);
    let _ = writeln!(report, "  \"clients\": {},", args.clients);
    let _ = writeln!(report, "  \"rounds\": {},", args.rounds);
    let _ = writeln!(report, "  \"failures\": {},", failures.len());
    let _ = writeln!(report, "  \"throughput\": {{");
    let _ = writeln!(report, "    \"wall_ms\": {wall_ms:.3},");
    let _ = writeln!(report, "    \"total_queries\": {},", all.len());
    let _ = writeln!(
        report,
        "    \"queries_per_hour\": {},",
        json_f64(queries_per_hour)
    );
    let _ = writeln!(report, "    \"latency_ms\": {{");
    let _ = writeln!(
        report,
        "      \"p50\": {},",
        json_f64(percentile(&latencies, 0.5))
    );
    let _ = writeln!(
        report,
        "      \"p90\": {},",
        json_f64(percentile(&latencies, 0.9))
    );
    let _ = writeln!(
        report,
        "      \"p99\": {},",
        json_f64(percentile(&latencies, 0.99))
    );
    let _ = writeln!(
        report,
        "      \"max\": {}",
        json_f64(latencies.last().copied().unwrap_or(f64::NAN))
    );
    let _ = writeln!(report, "    }}");
    let _ = writeln!(report, "  }},");
    let _ = writeln!(report, "  \"queries\": [");
    report.push_str(&lines.join(",\n"));
    report.push_str("\n  ]\n}\n");

    eprintln!(
        "{} queries in {:.0} ms -> {:.0} queries/hour",
        all.len(),
        wall_ms,
        queries_per_hour
    );
    emit_report(&report, &args.output)?;
    if !failures.is_empty() {
        return Err(format!("{} executions failed", failures.len()));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args = parse_args()?;

    if let Some(addrs) = &args.cluster {
        // Out-of-process mode: the profiler's spans, the trajectory file,
        // and the alternative engines live on the in-process nodes only.
        if args.analyze || args.trace_out.is_some() || args.bench_out.is_some() {
            return Err(
                "--analyze, --trace-out, and --bench-out need the in-process \
                 cluster (drop --cluster)"
                    .into(),
            );
        }
        if args.engine != "hybrid" {
            return Err("--cluster nodes always run the hybrid engine".into());
        }
        if args.expr_engine != ExprEngine::Compiled {
            return Err("--cluster nodes always run the vm expression engine".into());
        }
        // The report reflects reality: real sockets, node count from the
        // address list.
        args.nodes = addrs.len() as u16;
        args.transport = "socket".to_string();
    } else {
        // Validate the simulated-fabric flags even in modes that do not
        // start a cluster, so typos fail fast.
        cluster_config(&args)?;
    }

    let queries: Vec<u32> = match &args.queries {
        Some(list) => list.clone(),
        None => ALL_QUERIES.to_vec(),
    };

    // --explain alone inspects plans without executing; together with
    // --analyze the queries run and each plan + profile is emitted as one
    // buffered block (serial mode enforces the latter below).
    if args.explain && !args.analyze {
        return explain(&args, &queries);
    }

    if args.clients > 1 || args.rounds > 1 {
        if args.analyze || args.trace_out.is_some() || args.bench_out.is_some() {
            return Err(
                "--analyze, --trace-out, and --bench-out need the serial mode \
                 (--clients 1, --rounds 1)"
                    .into(),
            );
        }
        return run_throughput(&args, &queries);
    }

    let bench = start_loaded_backend(&args, "")?;
    let backend = &bench.backend;

    let planner = backend.planner(args.sf);
    let plans = plan_queries(&args, &planner, &queries)?;
    let mut lines = Vec::new();
    let mut bench_lines = Vec::new();
    let mut profiles: Vec<QueryProfile> = Vec::new();
    let mut total_ms = 0.0f64;
    let mut log_sum = 0.0f64;
    let mut failures = 0u32;
    for (n, query) in &plans {
        let n = *n;
        let result: Result<QueryResult, _> = backend.run(query);
        match result {
            Ok(result) => {
                let ms = result.elapsed.as_secs_f64() * 1e3;
                total_ms += ms;
                log_sum += ms.max(1e-6).ln();
                eprintln!(
                    "Q{n:<2} {ms:>10.2} ms  {:>8} rows  {:>12} bytes shuffled",
                    result.row_count(),
                    result.bytes_shuffled
                );
                lines.push(format!(
                    "    {{\"query\": {n}, \"ms\": {ms:.3}, \"rows\": {}, \
                     \"bytes_shuffled\": {}, \"messages_sent\": {}}}",
                    result.row_count(),
                    result.bytes_shuffled,
                    result.messages_sent
                ));
                let net_wait_ms = result
                    .profile
                    .as_ref()
                    .map_or(0.0, |p| p.net_wait().as_secs_f64() * 1e3);
                bench_lines.push(format!(
                    "    {{\"query\": {n}, \"rows\": {}, \"ms\": {ms:.3}, \
                     \"bytes_shuffled\": {}, \"net_wait_ms\": {net_wait_ms:.3}}}",
                    result.row_count(),
                    result.bytes_shuffled
                ));
                if let Some(profile) = result.profile {
                    if args.analyze {
                        // One buffered write per query: with --explain the
                        // plan (and compiled programs) lead the profile in
                        // the same block, so concurrent stderr lines can
                        // never interleave into the middle of either.
                        let mut block = String::new();
                        if args.explain {
                            block.push_str(&render_query_plan(&args, n, query));
                        }
                        block.push_str(&profile.render());
                        eprint!("{block}");
                    }
                    if args.trace_out.is_some() {
                        profiles.push(profile);
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("Q{n:<2} FAILED: {e}");
                lines.push(format!(
                    "    {{\"query\": {n}, \"error\": \"{}\"}}",
                    json_escape(&e.to_string())
                ));
            }
        }
    }
    let geomean_ms = if queries.is_empty() || failures > 0 {
        f64::NAN
    } else {
        (log_sum / queries.len() as f64).exp()
    };
    if args.metrics {
        eprint!("{}", backend.metrics_render());
    }
    bench.backend.shutdown();

    if let Some(path) = &args.trace_out {
        let trace = chrome_trace(&profiles);
        std::fs::write(path, trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({} queries traced)", profiles.len());
    }
    if let Some(path) = &args.bench_out {
        let mut out = String::from("{\n  \"schema\": \"hsqp-bench-v1\",\n");
        let _ = writeln!(out, "  \"sf\": {},", args.sf);
        let _ = writeln!(out, "  \"nodes\": {},", args.nodes);
        let _ = writeln!(out, "  \"workers_per_node\": {},", args.workers);
        let _ = writeln!(
            out,
            "  \"transport\": \"{}\",",
            json_escape(&args.transport)
        );
        let _ = writeln!(out, "  \"engine\": \"{}\",", json_escape(&args.engine));
        let _ = writeln!(out, "  \"plan_mode\": \"{}\",", args.plan_mode.name());
        let _ = writeln!(out, "  \"queries\": [");
        out.push_str(&bench_lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    let mut report = report_header(&args, bench.gen_ms, bench.load_ms);
    let _ = writeln!(report, "  \"total_ms\": {total_ms:.3},");
    if geomean_ms.is_finite() {
        let _ = writeln!(report, "  \"geomean_ms\": {geomean_ms:.3},");
    } else {
        let _ = writeln!(report, "  \"geomean_ms\": null,");
    }
    let _ = writeln!(report, "  \"failures\": {failures},");
    let _ = writeln!(report, "  \"queries\": [");
    report.push_str(&lines.join(",\n"));
    report.push_str("\n  ]\n}\n");

    emit_report(&report, &args.output)?;
    if failures > 0 {
        return Err(format!("{failures} queries failed"));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
