//! # hsqp — High-Speed Query Processing over High-Speed Networks
//!
//! Umbrella crate re-exporting the full reproduction of Rödiger et al.,
//! "High-Speed Query Processing over High-Speed Networks" (PVLDB 9(4), 2015).
//!
//! The system consists of:
//!
//! * [`numa`] — simulated NUMA topology and remote-access cost model,
//! * [`net`] — the calibrated software network fabric with TCP and RDMA
//!   endpoint models plus low-latency round-robin network scheduling,
//! * [`storage`] — columnar in-memory storage with morsel iteration,
//! * [`tpch`] — a deterministic TPC-H-shaped data generator,
//! * [`engine`] — the distributed query engine itself: hybrid parallelism,
//!   decoupled exchange operators, the RDMA-based communication multiplexer,
//!   the logical plan builder + distributed planner, and physical plans for
//!   all 22 TPC-H queries.
//!
//! ## Quickstart
//!
//! The programmable entry point is a [`Session`](engine::session::Session)
//! running [`LogicalPlan`](engine::logical::LogicalPlan)s — the planner
//! places exchanges, picks broadcast vs repartition joins, and inserts
//! pre-aggregation:
//!
//! ```
//! use hsqp::engine::expr::{col, lit};
//! use hsqp::engine::logical::LogicalPlan;
//! use hsqp::engine::plan::{AggFunc, AggSpec};
//! use hsqp::engine::session::Session;
//! use hsqp::tpch::TpchTable;
//!
//! let session = Session::builder().nodes(2).tpch(0.001).build().unwrap();
//! let plan = LogicalPlan::scan(TpchTable::Lineitem)
//!     .aggregate(
//!         &["l_returnflag"],
//!         vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")],
//!     );
//! let result = session.run(&plan).unwrap();
//! assert!(result.row_count() > 0);
//! session.shutdown();
//! ```
//!
//! The hand-written distributed plans remain available as the oracle:
//!
//! ```
//! use hsqp::engine::cluster::{Cluster, ClusterConfig};
//! use hsqp::engine::queries;
//!
//! // A 2-node simulated cluster over the RDMA transport.
//! let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
//! cluster.load_tpch(0.001).unwrap();
//! let result = cluster.run(&queries::tpch_query(1).unwrap()).unwrap();
//! assert!(result.row_count() > 0);
//! cluster.shutdown();
//! ```

pub mod benchjson;

pub use hsqp_engine as engine;
pub use hsqp_net as net;
pub use hsqp_numa as numa;
pub use hsqp_storage as storage;
pub use hsqp_tpch as tpch;
