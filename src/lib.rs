//! # hsqp — High-Speed Query Processing over High-Speed Networks
//!
//! Umbrella crate re-exporting the full reproduction of Rödiger et al.,
//! "High-Speed Query Processing over High-Speed Networks" (PVLDB 9(4), 2015).
//!
//! The system consists of:
//!
//! * [`numa`] — simulated NUMA topology and remote-access cost model,
//! * [`net`] — the calibrated software network fabric with TCP and RDMA
//!   endpoint models plus low-latency round-robin network scheduling,
//! * [`storage`] — columnar in-memory storage with morsel iteration,
//! * [`tpch`] — a deterministic TPC-H-shaped data generator,
//! * [`engine`] — the distributed query engine itself: hybrid parallelism,
//!   decoupled exchange operators, the RDMA-based communication multiplexer,
//!   and physical plans for all 22 TPC-H queries.
//!
//! ## Quickstart
//!
//! ```
//! use hsqp::engine::cluster::{Cluster, ClusterConfig};
//! use hsqp::engine::queries;
//!
//! // A 2-node simulated cluster over the RDMA transport.
//! let cluster = Cluster::start(ClusterConfig::quick(2)).unwrap();
//! cluster.load_tpch(0.001).unwrap();
//! let result = cluster.run(&queries::tpch_query(1).unwrap()).unwrap();
//! assert!(result.row_count() > 0);
//! cluster.shutdown();
//! ```

pub use hsqp_engine as engine;
pub use hsqp_net as net;
pub use hsqp_numa as numa;
pub use hsqp_storage as storage;
pub use hsqp_tpch as tpch;
