//! Criterion micro benchmarks for the design choices DESIGN.md calls out:
//! the schema-specialized wire format, CRC32 partitioning, message-pool
//! reuse vs per-message memory-region registration, join probing,
//! aggregation, and LIKE matching.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use hsqp_engine::exchange::MessagePool;
use hsqp_engine::expr::{col, lit, LikeMatcher};
use hsqp_engine::local::MorselDriver;
use hsqp_engine::ops::{aggregate, probe_join, JoinTable};
use hsqp_engine::plan::{AggFunc, AggPhase, AggSpec, JoinKind};
use hsqp_engine::wire::{RowDeserializer, RowSerializer};
use hsqp_net::{Fabric, FabricConfig, NodeId, RdmaConfig, RdmaNetwork};
use hsqp_numa::{AllocPolicy, SocketId, Topology};
use hsqp_storage::placement::crc32_i64;
use hsqp_tpch::{TpchDb, TpchTable};

fn lineitem() -> hsqp_storage::Table {
    TpchDb::generate(0.01).table(TpchTable::Lineitem).clone()
}

fn bench_wire(c: &mut Criterion) {
    let t = lineitem();
    let ser = RowSerializer::new(t.schema());
    let de = RowDeserializer::new(t.schema());
    let rows = t.rows().min(10_000);
    let mut buf = Vec::new();
    ser.serialize_range(&t, 0..rows, &mut buf);

    let mut g = c.benchmark_group("wire_format");
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("serialize_10k_lineitems", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            ser.serialize_range(&t, 0..rows, &mut out);
            out
        })
    });
    g.bench_function("deserialize_10k_lineitems", |b| {
        b.iter(|| de.deserialize(&buf))
    });
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let keys: Vec<i64> = (0..100_000).collect();
    let mut g = c.benchmark_group("partitioning");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("crc32_bucket_6way", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| crc32_i64(k) as usize % 6)
                .fold(0usize, |a, b| a.wrapping_add(b))
        })
    });
    g.finish();
}

fn bench_message_pool(c: &mut Criterion) {
    let fabric = Arc::new(Fabric::new(1, FabricConfig::qdr()));
    let topo = Topology::uniform(2);
    let mut g = c.benchmark_group("message_pool");
    g.bench_function("pooled_reuse", |b| {
        let pool = MessagePool::new(Arc::clone(&fabric), NodeId(0), 1, 64 * 1024);
        // Warm the pool so every take is a reuse (no registration).
        let (_, s) = pool.take(AllocPolicy::NumaAware, SocketId(0), &topo);
        pool.recycle(s);
        b.iter(|| {
            let (buf, s) = pool.take(AllocPolicy::NumaAware, SocketId(0), &topo);
            pool.recycle(s);
            buf
        })
    });
    g.bench_function("fresh_registration", |b| {
        let net = RdmaNetwork::new(Arc::clone(&fabric), RdmaConfig::default());
        let ep = net.endpoint(NodeId(0));
        b.iter(|| ep.register(vec![0u8; 64 * 1024]))
    });
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let db = TpchDb::generate(0.01);
    let orders = db.table(TpchTable::Orders).clone();
    let li = db.table(TpchTable::Lineitem).clone();
    let driver = MorselDriver::new(1, &Topology::uniform(1), 16_384, true);
    let key = orders.schema().index_of("o_orderkey");
    let probe_key = li.schema().index_of("l_orderkey");

    let mut g = c.benchmark_group("hash_join");
    g.sample_size(20);
    g.throughput(Throughput::Elements(li.rows() as u64));
    g.bench_function("build_orders", |b| {
        b.iter_batched(
            || orders.clone(),
            |o| JoinTable::build(o, &[key]),
            BatchSize::LargeInput,
        )
    });
    let jt = JoinTable::build(orders, &[key]);
    g.bench_function("probe_lineitem", |b| {
        b.iter(|| probe_join(&li, &jt, &[probe_key], JoinKind::Inner, &driver, None))
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let li = lineitem();
    let driver = MorselDriver::new(1, &Topology::uniform(1), 16_384, true);
    let rf = li.schema().index_of("l_returnflag");
    let ls = li.schema().index_of("l_linestatus");
    let aggs = vec![
        AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
        AggSpec::new(AggFunc::Count, lit(1), "cnt"),
    ];
    let mut g = c.benchmark_group("aggregation");
    g.sample_size(20);
    g.throughput(Throughput::Elements(li.rows() as u64));
    g.bench_function("group_by_flag_status", |b| {
        b.iter(|| aggregate(&li, &[rf, ls], &aggs, AggPhase::Single, &driver, &[]))
    });
    // Pre-aggregation ablation: the partial phase over the same input.
    g.bench_function("partial_preaggregation", |b| {
        b.iter(|| aggregate(&li, &[rf, ls], &aggs, AggPhase::Partial, &driver, &[]))
    });
    g.finish();
}

fn bench_like(c: &mut Criterion) {
    let texts: Vec<String> = (0..10_000)
        .map(|i| format!("blithely special packages {i} sleep furious requests"))
        .collect();
    let m = LikeMatcher::new("%special%requests%");
    let mut g = c.benchmark_group("like");
    g.throughput(Throughput::Elements(texts.len() as u64));
    g.bench_function("contains_two_parts", |b| {
        b.iter(|| texts.iter().filter(|t| m.matches(t)).count())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_partitioning,
    bench_message_pool,
    bench_join,
    bench_aggregation,
    bench_like
);
criterion_main!(benches);
