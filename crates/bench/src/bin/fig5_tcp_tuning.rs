//! Figure 5 — tuning TCP for analytical workloads (one stream, 512 KB
//! messages) against default RDMA, unidirectional and bidirectional.

use std::sync::Arc;
use std::time::Instant;

use hsqp_net::{Fabric, FabricConfig, NodeId, RdmaConfig, RdmaNetwork, TcpConfig, TcpNetwork};

const SIZE: usize = 512 * 1024;
const MESSAGES: usize = 200;

fn tcp_throughput(cfg: TcpConfig, bidirectional: bool) -> f64 {
    let fabric = Arc::new(Fabric::new(2, FabricConfig::qdr()));
    let net = TcpNetwork::new(Arc::clone(&fabric), cfg);
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    let payload = vec![7u8; SIZE];
    let start = Instant::now();
    // One network thread per node (the paper's single-stream setup): the
    // thread both sends its share and drains what arrived.
    let pb = payload.clone();
    let h = std::thread::spawn(move || {
        let mut received = 0;
        let mut sent = 0;
        // Keep going until this side has both sent and received everything.
        while received < MESSAGES || (bidirectional && sent < MESSAGES) {
            if bidirectional && sent < MESSAGES {
                b.send(NodeId(0), &pb);
                sent += 1;
            }
            while let Some(_m) = b.recv_timeout(std::time::Duration::ZERO) {
                received += 1;
            }
            if received < MESSAGES
                && (!bidirectional || sent >= MESSAGES)
                && b.recv_timeout(std::time::Duration::from_millis(1))
                    .is_some()
            {
                received += 1;
            }
        }
    });
    let mut received = 0;
    for _ in 0..MESSAGES {
        a.send(NodeId(1), &payload);
        if bidirectional {
            while a.recv_timeout(std::time::Duration::ZERO).is_some() {
                received += 1;
            }
        }
    }
    if bidirectional {
        while received < MESSAGES {
            if a.recv().1.len() == SIZE {
                received += 1;
            }
        }
    }
    h.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();
    // Per-direction throughput.
    (MESSAGES * SIZE) as f64 / elapsed / 1e9
}

fn rdma_throughput(bidirectional: bool) -> f64 {
    let fabric = Arc::new(Fabric::new(2, FabricConfig::qdr()));
    let net = RdmaNetwork::new(Arc::clone(&fabric), RdmaConfig::default());
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    a.post_recvs(1 << 20);
    b.post_recvs(1 << 20);
    let region = a.register(vec![7u8; SIZE]);
    let region_b = b.register(vec![9u8; SIZE]);
    let start = Instant::now();
    let h = std::thread::spawn(move || {
        let mut received = 0;
        let mut sent = 0;
        while received < MESSAGES || (bidirectional && sent < MESSAGES) {
            if bidirectional && sent < MESSAGES {
                b.post_send_bytes(NodeId(0), region_b.bytes().clone());
                sent += 1;
            }
            while b.poll_completion().is_some() {
                received += 1;
            }
            std::thread::yield_now();
        }
    });
    for _ in 0..MESSAGES {
        a.post_send_bytes(NodeId(1), region.bytes().clone());
    }
    let mut received = 0;
    while bidirectional && received < MESSAGES {
        a.wait_completion();
        received += 1;
    }
    h.join().unwrap();
    (MESSAGES * SIZE) as f64 / start.elapsed().as_secs_f64() / 1e9
}

fn main() {
    hsqp_bench::banner(
        "Figure 5",
        "tuning TCP for analytical workloads (one stream, 512 KB messages)",
    );
    let configs: [(&str, Option<TcpConfig>); 5] = [
        ("TCP w/o offload", Some(TcpConfig::without_offload())),
        ("default TCP", Some(TcpConfig::default_tcp())),
        ("TCP 64k MTU", Some(TcpConfig::connected_64k())),
        ("TCP interrupts", Some(TcpConfig::tuned())),
        ("default RDMA", None),
    ];
    let paper = [
        (0.37, 0.69),
        (0.93, 1.58),
        (1.51, 2.27),
        (2.17, 3.57),
        (3.41, 3.59),
    ];
    let mut rows = Vec::new();
    for ((name, cfg), (p_bi, p_uni)) in configs.into_iter().zip(paper) {
        eprintln!("running {name} ...");
        let (bi, uni) = match cfg {
            Some(c) => (tcp_throughput(c, true), tcp_throughput(c, false)),
            None => (rdma_throughput(true), rdma_throughput(false)),
        };
        rows.push(vec![
            name.to_string(),
            format!("{bi:.2}"),
            format!("{p_bi:.2}"),
            format!("{uni:.2}"),
            format!("{p_uni:.2}"),
        ]);
    }
    hsqp_bench::print_table(
        &[
            "configuration",
            "bidir GB/s",
            "paper",
            "unidir GB/s",
            "paper",
        ],
        &rows,
    );
}
