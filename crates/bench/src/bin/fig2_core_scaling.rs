//! Figure 2 — hybrid parallelism vs classic exchange operators when the
//! number of cores per server grows (fixed 3-server cluster).

use hsqp_bench::{corrected_time, run_suite, FAST_SUITE};
use hsqp_engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;
const NODES: u16 = 3;

fn suite_time(engine: EngineKind, workers: u16, db: &TpchDb) -> std::time::Duration {
    let cfg = ClusterConfig {
        workers_per_node: workers,
        engine,
        // The paper's Figure 2 isolates the exchange model; classic mode
        // additionally loses network scheduling in their engine.
        transport: if engine == EngineKind::Classic {
            Transport::rdma_unscheduled()
        } else {
            Transport::rdma_scheduled()
        },
        ..ClusterConfig::paper(NODES)
    };
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let r = run_suite(&cluster, &FAST_SUITE);
    cluster.shutdown();
    r.total()
}

fn main() {
    hsqp_bench::banner(
        "Figure 2",
        "hybrid parallelism scales with cores; classic exchange does not",
    );
    let db = TpchDb::generate(SF);
    println!("scale factor {SF}, {NODES} servers, query subset {FAST_SUITE:?}\n");

    let base_hybrid = suite_time(EngineKind::Hybrid, 1, &db);
    let base_classic = suite_time(EngineKind::Classic, 1, &db);

    let mut rows = Vec::new();
    for workers in [1u16, 2, 4, 8] {
        let h = suite_time(EngineKind::Hybrid, workers, &db);
        let c = suite_time(EngineKind::Classic, workers, &db);
        let hc = corrected_time(h, base_hybrid, u64::from(workers));
        let cc = corrected_time(c, base_classic, u64::from(workers));
        rows.push(vec![
            workers.to_string(),
            format!("{:.2}x", base_hybrid.as_secs_f64() / hc.as_secs_f64()),
            format!("{:.2}x", base_classic.as_secs_f64() / cc.as_secs_f64()),
        ]);
    }
    hsqp_bench::print_table(&["cores/server", "hybrid", "classic exchange"], &rows);
    println!();
    println!("paper @20 cores: hybrid ~12x, classic exchange ~4x");
    println!("(speed-ups use the single-core compute correction, see DESIGN.md)");
}
