//! Figure 4 / §2.1.1 — memory-bus traffic: classic I/O vs data direct I/O.
//!
//! The paper measured (with Intel PCM) 1.03× sender reads / 1.02× receiver
//! writes with DDIO active, vs 2.11× reads (sender) and 1.5×/2.33×
//! (receiver) when the network thread runs NUIOA-remote. We transfer a
//! fixed volume through the TCP model in both placements and report the
//! same amplification factors from the fabric's memory-bus accounting.

use std::sync::Arc;

use hsqp_net::{Fabric, FabricConfig, NodeId, TcpConfig, TcpNetwork};

const MESSAGES: usize = 64;
const SIZE: usize = 512 * 1024;

fn amplification(numa_local: bool) -> (f64, f64, f64, f64) {
    let fabric = Arc::new(Fabric::new(2, FabricConfig::qdr()));
    let cfg = TcpConfig {
        numa_local_nic: numa_local,
        ..TcpConfig::tuned()
    };
    let net = TcpNetwork::new(Arc::clone(&fabric), cfg);
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    let payload = vec![0xABu8; SIZE];
    let h = std::thread::spawn(move || {
        for _ in 0..MESSAGES {
            b.recv();
        }
    });
    for _ in 0..MESSAGES {
        a.send(NodeId(1), &payload);
    }
    h.join().unwrap();
    let volume = (MESSAGES * SIZE) as f64;
    let s = fabric.stats(NodeId(0));
    let r = fabric.stats(NodeId(1));
    (
        s.membus_read_bytes() as f64 / volume,
        s.membus_write_bytes() as f64 / volume,
        r.membus_read_bytes() as f64 / volume,
        r.membus_write_bytes() as f64 / volume,
    )
}

fn main() {
    hsqp_bench::banner(
        "Figure 4 / §2.1.1",
        "memory-bus trips: classic I/O vs data direct I/O (NUIOA pinning)",
    );
    println!("model: classic I/O needs 3 memory trips per side, DDIO needs 1");
    println!();
    let (ddio_sr, ddio_sw, ddio_rr, ddio_rw) = amplification(true);
    let (cls_sr, cls_sw, cls_rr, cls_rw) = amplification(false);
    hsqp_bench::print_table(
        &[
            "network thread",
            "send read x",
            "send write x",
            "recv read x",
            "recv write x",
        ],
        &[
            vec![
                "NUIOA-local (DDIO)".into(),
                format!("{ddio_sr:.2}"),
                format!("{ddio_sw:.2}"),
                format!("{ddio_rr:.2}"),
                format!("{ddio_rw:.2}"),
            ],
            vec![
                "NUIOA-remote".into(),
                format!("{cls_sr:.2}"),
                format!("{cls_sw:.2}"),
                format!("{cls_rr:.2}"),
                format!("{cls_rw:.2}"),
            ],
        ],
    );
    println!();
    println!("paper (measured with Intel PCM): local 1.03x read / 1.02x write;");
    println!("remote 2.11x sender read, 1.5x recv read, 2.33x recv write");
}
