//! Figure 10(b) — all-to-all vs round-robin network scheduling throughput
//! for 2–8 servers (each server transmits 512 KB messages to every other).

use std::sync::Arc;
use std::time::Instant;

use hsqp_net::{Fabric, FabricConfig, NetScheduler, NodeId, RdmaConfig, RdmaNetwork, Schedule};

const SIZE: usize = 512 * 1024;
/// Messages each server sends to each other server.
const PER_TARGET: usize = 30;
/// Messages per target before re-synchronizing (the paper uses 8).
const BATCH: usize = 8;

fn run(nodes: u16, scheduled: bool) -> f64 {
    let fabric = Arc::new(Fabric::new(nodes, FabricConfig::qdr()));
    let net = RdmaNetwork::new(Arc::clone(&fabric), RdmaConfig::default());
    let scheduler = NetScheduler::new(nodes as usize);
    let schedule = Schedule::new(nodes);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for node in 0..nodes {
            let ep = net.endpoint(NodeId(node));
            ep.post_recvs(1 << 20);
            let scheduler = Arc::clone(&scheduler);
            scope.spawn(move || {
                let me = NodeId(node);
                let region = ep.register(vec![node as u8; SIZE]);
                let total_in = PER_TARGET * (nodes as usize - 1);
                let mut received = 0;
                if scheduled {
                    // Contention-free phases: one target per phase, BATCH
                    // messages, inline synchronization between batches.
                    let mut sent_per_phase = vec![0usize; nodes as usize];
                    let mut done_sending = false;
                    while !done_sending {
                        done_sending = true;
                        for phase in 1..nodes {
                            let target = schedule.target(me, phase);
                            let sent = &mut sent_per_phase[phase as usize];
                            let n = BATCH.min(PER_TARGET - *sent);
                            for _ in 0..n {
                                ep.post_send_bytes(target, region.bytes().clone());
                            }
                            *sent += n;
                            if *sent < PER_TARGET {
                                done_sending = false;
                            }
                            scheduler.sync();
                        }
                    }
                    scheduler.leave();
                } else {
                    // Uncoordinated all-to-all: blast every target at once.
                    for _ in 0..PER_TARGET {
                        for phase in 1..nodes {
                            let target = schedule.target(me, phase);
                            ep.post_send_bytes(target, region.bytes().clone());
                        }
                    }
                    scheduler.leave();
                }
                while received < total_in {
                    ep.wait_completion();
                    received += 1;
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    // Per-node send throughput in GB/s.
    (PER_TARGET * (nodes as usize - 1) * SIZE) as f64 / elapsed / 1e9
}

fn main() {
    hsqp_bench::banner(
        "Figure 10(b)",
        "round-robin scheduling avoids switch contention (2-8 servers)",
    );
    let mut rows = Vec::new();
    for nodes in 2..=8u16 {
        let all2all = run(nodes, false);
        let rr = run(nodes, true);
        rows.push(vec![
            nodes.to_string(),
            format!("{all2all:.2}"),
            format!("{rr:.2}"),
            format!("{:+.0}%", (rr / all2all - 1.0) * 100.0),
        ]);
    }
    hsqp_bench::print_table(
        &["servers", "all-to-all GB/s", "round-robin GB/s", "gain"],
        &rows,
    );
    println!();
    println!("paper: round-robin improves throughput by up to 40% at 8 servers");
}
