//! Table 1 — comparison of network data-link standards.

use hsqp_net::LinkSpec;

fn main() {
    hsqp_bench::banner("Table 1", "network data link standards");
    let rows: Vec<Vec<String>> = LinkSpec::TABLE1
        .iter()
        .map(|l| {
            vec![
                l.name().to_string(),
                format!("{:.3}", l.gb_per_sec()),
                format!("{:.1}", l.latency().as_secs_f64() * 1e6),
                l.year().to_string(),
                format!("{:.0}x", l.speedup_over(&LinkSpec::GBE)),
            ]
        })
        .collect();
    hsqp_bench::print_table(
        &["link", "GB/s", "latency µs", "introduced", "vs GbE"],
        &rows,
    );
}
