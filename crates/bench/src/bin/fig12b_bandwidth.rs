//! Figure 12(b) — impact of the network bandwidth (GbE → SDR → DDR → QDR)
//! on TPC-H performance for the RDMA engine vs the TCP engine.

use hsqp_bench::{run_suite, FAST_SUITE};
use hsqp_engine::cluster::{Cluster, ClusterConfig, Transport};
use hsqp_net::LinkSpec;
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;
const NODES: u16 = 4;

fn qph(link: LinkSpec, transport: Transport, db: &TpchDb) -> f64 {
    let cfg = ClusterConfig {
        link: hsqp_bench::rescaled_link(link),
        transport,
        ..ClusterConfig::paper(NODES)
    };
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let r = run_suite(&cluster, &FAST_SUITE);
    cluster.shutdown();
    r.queries_per_hour()
}

fn main() {
    hsqp_bench::banner(
        "Figure 12(b)",
        "speed-up over GbE as link bandwidth grows, RDMA vs TCP engine",
    );
    let db = TpchDb::generate(SF);
    let links = [
        LinkSpec::GBE,
        LinkSpec::IB_4X_SDR,
        LinkSpec::IB_4X_DDR,
        LinkSpec::IB_4X_QDR,
    ];
    let rdma: Vec<f64> = links
        .iter()
        .map(|&l| qph(l, Transport::rdma_scheduled(), &db))
        .collect();
    let tcp: Vec<f64> = links
        .iter()
        .map(|&l| qph(l, Transport::tcp(), &db))
        .collect();
    let rows: Vec<Vec<String>> = links
        .iter()
        .enumerate()
        .map(|(i, l)| {
            vec![
                l.name().to_string(),
                format!("{:.1}x", rdma[i] / rdma[0]),
                format!("{:.1}x", tcp[i] / tcp[0]),
            ]
        })
        .collect();
    hsqp_bench::print_table(&["link", "HyPer (RDMA)", "HyPer (TCP)"], &rows);
    println!();
    println!("paper @QDR: RDMA engine 12x over GbE, TCP engine ~4x, MemSQL 1.2x");
}
