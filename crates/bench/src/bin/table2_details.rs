//! Table 2 — detailed per-query runtimes, shuffle volume, packet counts,
//! geometric mean and queries/hour, chunked vs partitioned placement.

use hsqp_bench::{ms, run_suite};
use hsqp_engine::cluster::{Cluster, ClusterConfig};
use hsqp_engine::queries::ALL_QUERIES;
use hsqp_storage::placement::Placement;
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;
const NODES: u16 = 4;

fn main() {
    hsqp_bench::banner(
        "Table 2",
        "detailed TPC-H run: runtimes, packets, shuffle volume per placement",
    );
    let db = TpchDb::generate(SF);
    println!("scale factor {SF}, {NODES} servers, RDMA + scheduling\n");

    let mut results = Vec::new();
    for placement in [Placement::Chunked, Placement::Partitioned] {
        let cfg = ClusterConfig {
            placement,
            ..ClusterConfig::paper(NODES)
        };
        let cluster = Cluster::start(cfg).expect("cluster");
        cluster.load_tpch_db(db.clone()).expect("load");
        results.push(run_suite(&cluster, &ALL_QUERIES));
        cluster.shutdown();
    }
    let (chunked, partitioned) = (&results[0], &results[1]);

    let rows: Vec<Vec<String>> = ALL_QUERIES
        .iter()
        .enumerate()
        .map(|(i, q)| {
            vec![
                format!("Q{q}"),
                ms(chunked.per_query[i].1),
                ms(partitioned.per_query[i].1),
            ]
        })
        .collect();
    hsqp_bench::print_table(&["query", "chunked ms", "partitioned ms"], &rows);
    println!();
    hsqp_bench::print_table(
        &["metric", "chunked", "partitioned"],
        &[
            vec![
                "messages sent".into(),
                chunked.messages.to_string(),
                partitioned.messages.to_string(),
            ],
            vec![
                "data shuffled MB".into(),
                format!("{:.1}", chunked.bytes_shuffled as f64 / 1e6),
                format!("{:.1}", partitioned.bytes_shuffled as f64 / 1e6),
            ],
            vec![
                "total time s".into(),
                format!("{:.2}", chunked.total().as_secs_f64()),
                format!("{:.2}", partitioned.total().as_secs_f64()),
            ],
            vec![
                "geometric mean s".into(),
                format!("{:.4}", chunked.geometric_mean()),
                format!("{:.4}", partitioned.geometric_mean()),
            ],
            vec![
                "queries/hour".into(),
                format!("{:.0}", chunked.queries_per_hour()),
                format!("{:.0}", partitioned.queries_per_hour()),
            ],
        ],
    );
    println!();
    println!("paper @SF100: chunked 27.95 GB shuffled / 4.92 s total;");
    println!("partitioned 8.88 GB / 3.82 s (partitioning avoids shuffles)");
}
