//! Figure 10(c) — message size vs scheduled throughput (6 servers,
//! synchronization every 8 messages): the data per phase must amortize the
//! synchronization cost; the paper picks 512 KB.

use std::sync::Arc;
use std::time::Instant;

use hsqp_net::{Fabric, FabricConfig, NetScheduler, NodeId, RdmaConfig, RdmaNetwork, Schedule};

const NODES: u16 = 6;
/// Bytes each node ships per target (message count = volume / size).
const VOLUME_PER_TARGET: usize = 8 * 1024 * 1024;
const BATCH: usize = 8;

fn run(size: usize) -> f64 {
    let per_target = (VOLUME_PER_TARGET / size).max(1);
    let fabric = Arc::new(Fabric::new(NODES, FabricConfig::qdr()));
    let net = RdmaNetwork::new(Arc::clone(&fabric), RdmaConfig::default());
    let scheduler = NetScheduler::new(NODES as usize);
    let schedule = Schedule::new(NODES);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for node in 0..NODES {
            let ep = net.endpoint(NodeId(node));
            ep.post_recvs(1 << 24);
            let scheduler = Arc::clone(&scheduler);
            scope.spawn(move || {
                let me = NodeId(node);
                let region = ep.register(vec![1u8; size]);
                let total_in = per_target * (NODES as usize - 1);
                let mut received = 0;
                let mut sent_per_phase = vec![0usize; NODES as usize];
                let mut done = false;
                while !done {
                    done = true;
                    for phase in 1..NODES {
                        let target = schedule.target(me, phase);
                        let sent = &mut sent_per_phase[phase as usize];
                        let n = BATCH.min(per_target - *sent);
                        for _ in 0..n {
                            ep.post_send_bytes(target, region.bytes().clone());
                        }
                        *sent += n;
                        if *sent < per_target {
                            done = false;
                        }
                        scheduler.sync();
                    }
                }
                scheduler.leave();
                while received < total_in {
                    ep.wait_completion();
                    received += 1;
                }
            });
        }
    });
    (per_target * (NODES as usize - 1) * size) as f64 / start.elapsed().as_secs_f64() / 1e9
}

fn main() {
    hsqp_bench::banner(
        "Figure 10(c)",
        "message size vs throughput with sync every 8 messages (6 servers)",
    );
    let sizes = [
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        4 << 20,
    ];
    let mut rows = Vec::new();
    for size in sizes {
        let gbps = run(size);
        rows.push(vec![
            if size >= 1 << 20 {
                format!("{} MB", size >> 20)
            } else {
                format!("{} KB", size >> 10)
            },
            format!("{gbps:.2}"),
        ]);
    }
    hsqp_bench::print_table(&["message size", "GB/s per node"], &rows);
    println!();
    println!("paper: 512 KB messages or larger hide the synchronization cost");
}
