//! §4.2.2 — impact of network scheduling per transport: scheduling helps
//! GbE massively, helps RDMA, and does nothing for CPU-bound TCP/IB.

use hsqp_bench::{run_suite, FAST_SUITE};
use hsqp_engine::cluster::{Cluster, ClusterConfig, Transport};
use hsqp_net::{CompletionMode, LinkSpec, TcpConfig};
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;
const NODES: u16 = 4;

fn total(link: LinkSpec, transport: Transport, db: &TpchDb) -> f64 {
    let cfg = ClusterConfig {
        link: hsqp_bench::rescaled_link(link),
        transport,
        ..ClusterConfig::paper(NODES)
    };
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let r = run_suite(&cluster, &FAST_SUITE);
    cluster.shutdown();
    r.total().as_secs_f64()
}

fn main() {
    hsqp_bench::banner("§4.2.2", "network scheduling impact on TPC-H per transport");
    let db = TpchDb::generate(SF);
    let tcp = |scheduling| Transport::Tcp {
        config: TcpConfig::tuned(),
        scheduling,
    };
    let rdma = |scheduling| Transport::Rdma {
        scheduling,
        completion: CompletionMode::Event,
    };
    let cases: [(&str, LinkSpec, Transport, Transport); 3] = [
        ("RDMA (QDR)", LinkSpec::IB_4X_QDR, rdma(false), rdma(true)),
        ("TCP (QDR)", LinkSpec::IB_4X_QDR, tcp(false), tcp(true)),
        ("TCP (GbE)", LinkSpec::GBE, tcp(false), tcp(true)),
    ];
    let mut rows = Vec::new();
    for (name, link, off, on) in cases {
        let t_off = total(link, off, &db);
        let t_on = total(link, on, &db);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", t_off * 1e3),
            format!("{:.0}", t_on * 1e3),
            format!("{:+.1}%", (t_off / t_on - 1.0) * 100.0),
        ]);
    }
    hsqp_bench::print_table(
        &["transport", "unscheduled ms", "scheduled ms", "improvement"],
        &rows,
    );
    println!();
    println!("paper: +230% on GbE, +12.2% on RDMA, ~0% on TCP/IB (CPU-bound)");
}
