//! Figure 9 — impact of NUMA-aware message allocation on a 4-socket
//! server: NUMA-aware vs interleaved vs single-socket buffer placement.

use hsqp_bench::{run_suite, FAST_SUITE};
use hsqp_engine::cluster::{Cluster, ClusterConfig};
use hsqp_numa::AllocPolicy;
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;

fn qph(policy: AllocPolicy, db: &TpchDb) -> f64 {
    let cfg = ClusterConfig {
        sockets: 4,
        workers_per_node: 4,
        // Amplified QPI penalty: laptop-scale shuffles are orders of
        // magnitude smaller than the paper's, so the per-byte stall is
        // raised to keep the Figure 9 ratios visible (see DESIGN.md).
        numa_cost_ns: 25.0,
        alloc_policy: policy,
        link: hsqp_bench::rescaled_link(hsqp_net::LinkSpec::IB_4X_QDR),
        ..ClusterConfig::paper(2)
    };
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let r = run_suite(&cluster, &FAST_SUITE);
    cluster.shutdown();
    r.queries_per_hour()
}

fn main() {
    hsqp_bench::banner(
        "Figure 9",
        "NUMA-aware message allocation on a 4-socket server (queries/hour)",
    );
    let db = TpchDb::generate(SF);
    let aware = qph(AllocPolicy::NumaAware, &db);
    let inter = qph(AllocPolicy::Interleaved, &db);
    let single = qph(AllocPolicy::SingleSocket, &db);
    hsqp_bench::print_table(
        &["allocation policy", "queries/hour", "vs NUMA-aware"],
        &[
            vec!["NUMA-aware".into(), format!("{aware:.0}"), "100%".into()],
            vec![
                "interleaved".into(),
                format!("{inter:.0}"),
                format!("{:.0}%", inter / aware * 100.0),
            ],
            vec![
                "one socket".into(),
                format!("{single:.0}"),
                format!("{:.0}%", single / aware * 100.0),
            ],
        ],
    );
    println!();
    println!("paper: interleaved -17%, single socket -52% vs NUMA-aware");
}
