//! Figure 3 — TPC-H speed-up when adding servers, for RDMA + scheduling,
//! TCP over InfiniBand, and TCP over Gigabit Ethernet (fixed data volume).

use hsqp_bench::{corrected_time, run_suite};
use hsqp_engine::cluster::{Cluster, ClusterConfig};
use hsqp_engine::queries::ALL_QUERIES;
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;

fn suite_time(cfg: ClusterConfig, db: &TpchDb) -> std::time::Duration {
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let r = run_suite(&cluster, &ALL_QUERIES);
    cluster.shutdown();
    r.total()
}

fn main() {
    hsqp_bench::banner(
        "Figure 3",
        "speed-up vs number of servers for three network stacks (TPC-H)",
    );
    let db = TpchDb::generate(SF);
    println!("scale factor {SF}, all 22 queries, workers/node = 2,");
    println!("link bandwidths rescaled 1/32 (see DESIGN.md)\n");

    let mut single_cfg = ClusterConfig::paper(1);
    single_cfg.workers_per_node = 2;
    single_cfg.link = hsqp_bench::rescaled_link(single_cfg.link);
    let single = suite_time(single_cfg, &db);
    println!(
        "single-server baseline: {:.0} ms\n",
        single.as_secs_f64() * 1e3
    );

    let variants: [(&str, fn(u16) -> ClusterConfig); 3] = [
        ("RDMA + scheduling", ClusterConfig::paper),
        ("TCP (InfiniBand)", ClusterConfig::tcp_infiniband),
        ("TCP (GbE)", ClusterConfig::tcp_gbe),
    ];

    let mut rows = Vec::new();
    for nodes in [1u16, 2, 3, 4, 6] {
        let mut row = vec![nodes.to_string()];
        for (_, make) in &variants {
            let mut cfg = make(nodes);
            cfg.workers_per_node = 2;
            cfg.link = hsqp_bench::rescaled_link(cfg.link);
            let t = suite_time(cfg, &db);
            let corrected = corrected_time(t, single, u64::from(nodes));
            row.push(format!(
                "{:.2}x",
                single.as_secs_f64() / corrected.as_secs_f64()
            ));
        }
        rows.push(row);
    }
    hsqp_bench::print_table(&["servers", "RDMA+sched", "TCP/IB", "TCP/GbE"], &rows);
    println!();
    println!("paper @6 servers: RDMA+sched 3.5x, TCP/IB ~1x, TCP/GbE ~0.16x");
    println!("(speed-ups use the single-core compute correction, see DESIGN.md)");
}
