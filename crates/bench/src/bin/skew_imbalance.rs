//! §3.1 — attribute-value skew vs the number of parallel units.
//!
//! The classic exchange model splits the hash space into n·t partitions
//! with static ownership; hybrid parallelism has only n partitions and
//! steals work within a server. Part 1 reproduces the paper's imbalance
//! arithmetic (Zipf z = 0.84 "more than doubles" the overloaded unit's
//! input at 240 units but adds "a mere 2.8 %" at 6); part 2 measures actual
//! runtimes of a skewed shuffle under both engines.

use hsqp_engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp_engine::expr::lit;
use hsqp_engine::plan::{AggFunc, AggSpec, Plan, SortKey};
use hsqp_storage::placement::chunk_split;
use hsqp_storage::{Column, Field, Schema, Table};
use hsqp_tpch::gen::TpchDb;
use hsqp_tpch::skew::{imbalance, ZipfGenerator};
use hsqp_tpch::TpchTable;

const Z: f64 = 0.84;
const KEYS: usize = 20_000;

fn skewed_lineitem(rows: usize) -> Table {
    let zipf = ZipfGenerator::new(KEYS, Z);
    let keys = zipf.sample_many(rows, 99);
    let schema = Schema::new(vec![
        Field::new("l_orderkey", hsqp_storage::DataType::Int64),
        Field::new("l_quantity", hsqp_storage::DataType::Int64),
    ]);
    Table::new(
        schema,
        vec![
            Column::I64(keys.iter().map(|&k| k as i64).collect(), None),
            Column::I64(vec![1; rows], None),
        ],
    )
}

fn unit_imbalance(cluster: &Cluster, nodes: u16, engine: EngineKind) -> f64 {
    // Parallel units: whole servers under hybrid parallelism (any worker
    // consumes any message), individual workers under classic exchange
    // (static bucket ownership).
    let mut loads: Vec<u64> = Vec::new();
    for node in 0..nodes {
        let per_worker = cluster.node_ctx(node).consume_loads.lock().clone();
        match engine {
            EngineKind::Hybrid => loads.push(per_worker.iter().sum()),
            EngineKind::Classic => loads.extend(per_worker),
        }
    }
    let fair = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    *loads.iter().max().expect("loads") as f64 / fair
}

fn shuffle_time(engine: EngineKind, nodes: u16, workers: u16, table: &Table) -> (f64, f64) {
    let cfg = ClusterConfig {
        engine,
        workers_per_node: workers,
        transport: Transport::rdma_unscheduled(),
        ..ClusterConfig::paper(nodes)
    };
    let cluster = Cluster::start(cfg).expect("cluster");
    // Only lineitem matters for this micro-plan; load a tiny db for the rest.
    cluster.load_tpch_db(TpchDb::generate(0.001)).expect("load");
    cluster
        .load_table(TpchTable::Lineitem, chunk_split(table, nodes as usize))
        .expect("load skewed");
    let plan = Plan::scan(TpchTable::Lineitem)
        .repartition(&["l_orderkey"])
        .aggregate(
            &["l_orderkey"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")],
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "groups")])
        .gather()
        .sort(vec![SortKey::asc("groups")], Some(1));
    let r = cluster.run_plan(&plan).expect("run");
    let imbalance = unit_imbalance(&cluster, nodes, engine);
    cluster.shutdown();
    (r.elapsed.as_secs_f64(), imbalance)
}

fn main() {
    hsqp_bench::banner(
        "§3.1 skew",
        "parallel-unit count vs skew sensitivity (Zipf z = 0.84)",
    );

    println!("part 1: hash-partition imbalance (max unit load / fair share)\n");
    let zipf = ZipfGenerator::new(KEYS, Z);
    let keys = zipf.sample_many(600_000, 7);
    let mut rows = Vec::new();
    for units in [6usize, 12, 60, 240] {
        let f = imbalance(&keys, units);
        rows.push(vec![
            units.to_string(),
            format!("{f:.2}x"),
            format!("{:+.1}%", (f - 1.0) * 100.0),
        ]);
    }
    hsqp_bench::print_table(&["parallel units", "overload", "extra input"], &rows);
    println!("\npaper: 240 units more than double the overloaded unit's input;");
    println!("6 units add a mere 2.8%\n");

    println!("part 2: measured skewed-shuffle input imbalance, 3 servers x 8 workers\n");
    let table = skewed_lineitem(400_000);
    let (hybrid_t, hybrid_imb) = shuffle_time(EngineKind::Hybrid, 3, 8, &table);
    let (classic_t, classic_imb) = shuffle_time(EngineKind::Classic, 3, 8, &table);
    hsqp_bench::print_table(
        &["engine", "units", "time ms", "busiest unit load"],
        &[
            vec![
                "hybrid (stealing)".into(),
                "3".into(),
                format!("{:.1}", hybrid_t * 1e3),
                format!("{hybrid_imb:.2}x fair share"),
            ],
            vec![
                "classic exchange".into(),
                "24".into(),
                format!("{:.1}", classic_t * 1e3),
                format!("{classic_imb:.2}x fair share"),
            ],
        ],
    );
    println!();
    println!("on multi-core hosts the classic engine's overloaded unit becomes");
    println!("the critical path; its load factor is the slowdown bound");
}
