//! Figure 11 — scalability of the individual TPC-H queries for the three
//! query-execution engines (RDMA + scheduling, TCP/InfiniBand, TCP/GbE).

use std::time::Duration;

use hsqp_bench::corrected_time;
use hsqp_engine::cluster::{Cluster, ClusterConfig};
use hsqp_engine::queries::{tpch_query, ALL_QUERIES};
use hsqp_tpch::TpchDb;

const SF: f64 = 0.005;
const SIZES: [u16; 3] = [1, 3, 6];

fn per_query(cfg: ClusterConfig, db: &TpchDb) -> Vec<Duration> {
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let times = ALL_QUERIES
        .iter()
        .map(|&n| {
            let q = tpch_query(n).expect("query");
            cluster.run(&q).expect("run").elapsed
        })
        .collect();
    cluster.shutdown();
    times
}

fn main() {
    hsqp_bench::banner(
        "Figure 11",
        "per-query speed-up vs cluster size for three engines (SF fixed)",
    );
    let db = TpchDb::generate(SF);
    println!("scale factor {SF}; cells are speed-up over 1 server\n");

    let baseline = per_query(ClusterConfig::paper(1), &db);

    let engines: [(&str, fn(u16) -> ClusterConfig); 3] = [
        ("RDMA+sched", ClusterConfig::paper),
        ("TCP/IB", ClusterConfig::tcp_infiniband),
        ("TCP/GbE", ClusterConfig::tcp_gbe),
    ];

    for (name, make) in engines {
        println!("engine: {name}");
        let mut columns: Vec<Vec<Duration>> = Vec::new();
        for &n in &SIZES[1..] {
            let mut cfg = make(n);
            cfg.workers_per_node = 2;
            columns.push(per_query(cfg, &db));
        }
        let rows: Vec<Vec<String>> = ALL_QUERIES
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let mut row = vec![format!("Q{q}")];
                row.push(format!("{:.0}", baseline[i].as_secs_f64() * 1e3));
                for (col, &n) in columns.iter().zip(&SIZES[1..]) {
                    let corrected = corrected_time(col[i], baseline[i], u64::from(n));
                    row.push(format!(
                        "{:.2}x",
                        baseline[i].as_secs_f64() / corrected.as_secs_f64()
                    ));
                }
                row
            })
            .collect();
        hsqp_bench::print_table(&["query", "1-node ms", "3 nodes", "6 nodes"], &rows);
        println!();
    }
    println!("paper: only RDMA+scheduling improves all queries (3.5x overall @6);");
    println!("GbE collapses except Q1/Q6; TCP/IB hovers near single-server.");
}
