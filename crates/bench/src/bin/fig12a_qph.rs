//! Figure 12(a) — queries per hour across distributed SQL engines.
//!
//! The paper compares HyPer against Spark SQL, Impala, MemSQL, and
//! Vectorwise Vortex — closed or unavailable systems. Per the substitution
//! rule, the comparison axis becomes our own engine variants, which span
//! the same design space the external systems occupy: slow-network TCP
//! engines at the bottom, tuned TCP in the middle, the paper's RDMA +
//! scheduling engine (chunked and partitioned placement) on top.

use hsqp_bench::{run_suite, FAST_SUITE};
use hsqp_engine::cluster::{Cluster, ClusterConfig, EngineKind, Transport};
use hsqp_storage::placement::Placement;
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;
const NODES: u16 = 4;

fn qph(mut cfg: ClusterConfig, db: &TpchDb) -> f64 {
    cfg.link = hsqp_bench::rescaled_link(cfg.link);
    let cluster = Cluster::start(cfg).expect("cluster");
    cluster.load_tpch_db(db.clone()).expect("load");
    let r = run_suite(&cluster, &FAST_SUITE);
    cluster.shutdown();
    r.queries_per_hour()
}

fn main() {
    hsqp_bench::banner(
        "Figure 12(a)",
        "queries/hour per engine variant (substituted comparison axis)",
    );
    let db = TpchDb::generate(SF);
    let variants: Vec<(&str, ClusterConfig)> = vec![
        (
            "classic exchange, TCP/GbE",
            ClusterConfig {
                engine: EngineKind::Classic,
                ..ClusterConfig::tcp_gbe(NODES)
            },
        ),
        ("hybrid, TCP/GbE", ClusterConfig::tcp_gbe(NODES)),
        ("hybrid, TCP/IB", ClusterConfig::tcp_infiniband(NODES)),
        (
            "hybrid, RDMA unscheduled",
            ClusterConfig {
                transport: Transport::rdma_unscheduled(),
                ..ClusterConfig::paper(NODES)
            },
        ),
        (
            "hybrid, RDMA + scheduling (chunked)",
            ClusterConfig::paper(NODES),
        ),
        (
            "hybrid, RDMA + scheduling (partitioned)",
            ClusterConfig {
                placement: Placement::Partitioned,
                ..ClusterConfig::paper(NODES)
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut baseline = None;
    for (name, cfg) in variants {
        let q = qph(cfg, &db);
        let b = *baseline.get_or_insert(q);
        rows.push(vec![
            name.to_string(),
            format!("{q:.0}"),
            format!("{:.1}x", q / b),
        ]);
    }
    hsqp_bench::print_table(&["engine variant", "queries/hour", "vs slowest"], &rows);
    println!();
    println!("paper: Spark 77, Impala 123, MemSQL 544, Vectorwise 3856,");
    println!("       HyPer chunked 16090, HyPer partitioned 20739 qph");
}
