//! Figure 6(c) ablation — pre-aggregation before the exchange vs shuffling
//! raw tuples: Q1's eight aggregates over two tiny group keys shrink the
//! shuffle from the full lineitem scan to a handful of partial rows.

use hsqp_engine::cluster::{Cluster, ClusterConfig};
use hsqp_engine::queries::{q1_no_preagg, tpch_query};
use hsqp_tpch::TpchDb;

const SF: f64 = 0.01;
const NODES: u16 = 4;

fn main() {
    hsqp_bench::banner(
        "Figure 6(c) ablation",
        "pre-aggregation vs raw shuffle for TPC-H Q1",
    );
    let cluster = Cluster::start(ClusterConfig::paper(NODES)).expect("cluster");
    cluster.load_tpch_db(TpchDb::generate(SF)).expect("load");

    let with = cluster.run(&tpch_query(1).expect("q1")).expect("run");
    let without = cluster.run(&q1_no_preagg()).expect("run");
    hsqp_bench::print_table(
        &["plan", "time ms", "bytes shuffled", "messages"],
        &[
            vec![
                "pre-aggregation (paper)".into(),
                hsqp_bench::ms(with.elapsed),
                with.bytes_shuffled.to_string(),
                with.messages_sent.to_string(),
            ],
            vec![
                "raw shuffle".into(),
                hsqp_bench::ms(without.elapsed),
                without.bytes_shuffled.to_string(),
                without.messages_sent.to_string(),
            ],
        ],
    );
    cluster.shutdown();
}
