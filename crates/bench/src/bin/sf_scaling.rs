//! §4.3.3 — scaling to larger inputs: a 3× scale factor should cost ~3×
//! (the paper measured 3.1× for HyPer from SF 100 to SF 300).

use hsqp_bench::{run_suite, FAST_SUITE};
use hsqp_engine::cluster::{Cluster, ClusterConfig};
use hsqp_tpch::TpchDb;

const NODES: u16 = 3;

fn total(sf: f64) -> f64 {
    let cluster = Cluster::start(ClusterConfig::paper(NODES)).expect("cluster");
    cluster.load_tpch_db(TpchDb::generate(sf)).expect("load");
    let r = run_suite(&cluster, &FAST_SUITE);
    cluster.shutdown();
    r.total().as_secs_f64()
}

fn main() {
    hsqp_bench::banner("§4.3.3", "larger scale factor: SF x vs SF 3x");
    let base = 0.005;
    let t1 = total(base);
    let t3 = total(base * 3.0);
    hsqp_bench::print_table(
        &["scale factor", "total ms", "vs base"],
        &[
            vec![format!("{base}"), format!("{:.0}", t1 * 1e3), "1.0x".into()],
            vec![
                format!("{}", base * 3.0),
                format!("{:.0}", t3 * 1e3),
                format!("{:.1}x", t3 / t1),
            ],
        ],
    );
    println!();
    println!("paper: HyPer 3.1x for 3x the data (12 s vs 3.8 s)");
}
