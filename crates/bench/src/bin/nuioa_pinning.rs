//! §2.1.1 / §2.1.2 — NUIOA: pinning the network thread to the NIC-local
//! socket enables DDIO, cutting memory-bus traffic and raising throughput.

use std::sync::Arc;
use std::time::Instant;

use hsqp_net::{Fabric, FabricConfig, NodeId, TcpConfig, TcpNetwork};

const SIZE: usize = 512 * 1024;
const MESSAGES: usize = 150;

fn run(numa_local: bool) -> (f64, f64, f64) {
    let fabric = Arc::new(Fabric::new(2, FabricConfig::qdr()));
    let cfg = TcpConfig {
        numa_local_nic: numa_local,
        ..TcpConfig::tuned()
    };
    let net = TcpNetwork::new(Arc::clone(&fabric), cfg);
    let a = net.endpoint(NodeId(0));
    let b = net.endpoint(NodeId(1));
    let payload = vec![3u8; SIZE];
    let start = Instant::now();
    let h = std::thread::spawn(move || {
        for _ in 0..MESSAGES {
            b.recv();
        }
    });
    for _ in 0..MESSAGES {
        a.send(NodeId(1), &payload);
    }
    h.join().unwrap();
    let gbps = (MESSAGES * SIZE) as f64 / start.elapsed().as_secs_f64() / 1e9;
    let volume = (MESSAGES * SIZE) as f64;
    let reads = fabric.stats(NodeId(0)).membus_read_bytes() as f64 / volume;
    let writes = fabric.stats(NodeId(1)).membus_write_bytes() as f64 / volume;
    (gbps, reads, writes)
}

fn main() {
    hsqp_bench::banner(
        "§2.1.1/§2.1.2 NUIOA",
        "network thread pinned NUIOA-local vs remote (TCP, 512 KB stream)",
    );
    let (local_gbps, local_r, local_w) = run(true);
    let (remote_gbps, remote_r, remote_w) = run(false);
    hsqp_bench::print_table(
        &[
            "network thread",
            "GB/s",
            "sender reads x",
            "receiver writes x",
        ],
        &[
            vec![
                "NUIOA-local".into(),
                format!("{local_gbps:.2}"),
                format!("{local_r:.2}"),
                format!("{local_w:.2}"),
            ],
            vec![
                "NUIOA-remote".into(),
                format!("{remote_gbps:.2}"),
                format!("{remote_r:.2}"),
                format!("{remote_w:.2}"),
            ],
        ],
    );
    println!();
    println!(
        "paper: local pinning improves throughput 6-15%; DDIO only active on \
         the NUIOA-local socket (1.03x vs 2.11x sender reads)"
    );
}
