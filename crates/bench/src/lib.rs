//! # hsqp-bench — experiment harnesses
//!
//! Shared helpers for the figure/table binaries (`src/bin/`) and Criterion
//! micro benches (`benches/`). Every binary regenerates one table or figure
//! of the paper; `EXPERIMENTS.md` at the repository root records paper-vs-
//! measured values.

use std::time::Duration;

use hsqp_engine::cluster::{Cluster, QueryResult};
use hsqp_engine::queries::tpch_query;

/// Result of running a query suite on one cluster configuration.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Per-query wall-clock times, in query-number order.
    pub per_query: Vec<(u32, Duration)>,
    /// Bytes shuffled across the whole suite.
    pub bytes_shuffled: u64,
    /// Messages sent across the whole suite.
    pub messages: u64,
}

impl SuiteResult {
    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.per_query.iter().map(|(_, d)| *d).sum()
    }

    /// Geometric mean of per-query seconds.
    pub fn geometric_mean(&self) -> f64 {
        let log_sum: f64 = self
            .per_query
            .iter()
            .map(|(_, d)| d.as_secs_f64().max(1e-9).ln())
            .sum();
        (log_sum / self.per_query.len() as f64).exp()
    }

    /// Queries per hour, extrapolated from this suite.
    pub fn queries_per_hour(&self) -> f64 {
        self.per_query.len() as f64 * 3600.0 / self.total().as_secs_f64()
    }
}

/// Run TPC-H queries `numbers` on `cluster` and collect timings.
///
/// # Panics
/// Panics when a query fails — harnesses should fail loudly.
pub fn run_suite(cluster: &Cluster, numbers: &[u32]) -> SuiteResult {
    let before_bytes = cluster.fabric().total_bytes_sent();
    let mut per_query = Vec::with_capacity(numbers.len());
    let mut messages = 0;
    for &n in numbers {
        let q = tpch_query(n).expect("valid query number");
        let r: QueryResult = cluster.run(&q).expect("query execution");
        per_query.push((n, r.elapsed));
        messages += r.messages_sent;
    }
    SuiteResult {
        per_query,
        bytes_shuffled: cluster.fabric().total_bytes_sent() - before_bytes,
        messages,
    }
}

/// A fast, shuffle-heavy query subset used where running all 22 would blow
/// the harness budget (scans, repartition joins, broadcasts, aggregations).
pub const FAST_SUITE: [u32; 8] = [1, 3, 4, 5, 6, 10, 12, 14];

/// Format a duration as milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a fixed-width text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Print the harness banner.
pub fn banner(what: &str, paper_ref: &str) {
    println!("== {what} ==");
    println!("   reproduces: {paper_ref}");
    println!();
}

/// Ideal-parallel-compute correction for constrained hosts.
///
/// The simulated cluster's nodes are threads; on a host with fewer cores
/// than simulated parallel units, a fixed-size workload cannot show wall-
/// clock speed-up because compute serializes. The harness therefore reports
///
/// `t_corrected(u) = t_single / u + max(0, t_measured(u) − t_single)`
///
/// i.e. the single-unit compute time divided ideally across `u` parallel
/// units plus the *measured* distribution overhead (network waits, protocol
/// CPU, switch contention, serialization) which the simulation does expose.
/// On hosts with ≥ nodes × workers cores the raw wall times can be used
/// directly; every harness prints both. See DESIGN.md, "Single-core hosts".
pub fn corrected_time(t_measured: Duration, t_single: Duration, units: u64) -> Duration {
    let overhead = t_measured.saturating_sub(t_single);
    Duration::from_secs_f64(t_single.as_secs_f64() / units as f64) + overhead
}

/// Rebalance a link's bandwidth for laptop-scale runs.
///
/// The paper's servers scan with 20 cores (~10 GB/s of processing) against
/// 4 GB/s links — compute:network ≈ 2.5:1 per byte. A single host core
/// processes ~0.3 GB/s, so at the paper's link rates the network is ~32×
/// too fast relative to compute and every transport looks the same. The
/// engine-level harnesses therefore scale all link bandwidths down by
/// [`LINK_RESCALE`] (keeping every ratio from Table 1 intact), which
/// restores the paper's compute:network balance. Latencies are unchanged.
pub fn rescaled_link(link: hsqp_net::LinkSpec) -> hsqp_net::LinkSpec {
    hsqp_net::LinkSpec::custom(link.bytes_per_sec() * LINK_RESCALE, link.latency())
}

/// See [`rescaled_link`].
pub const LINK_RESCALE: f64 = 1.0 / 32.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_times() {
        let s = SuiteResult {
            per_query: vec![
                (1, Duration::from_millis(100)),
                (2, Duration::from_millis(100)),
            ],
            bytes_shuffled: 0,
            messages: 0,
        };
        assert!((s.geometric_mean() - 0.1).abs() < 1e-9);
        assert_eq!(s.total(), Duration::from_millis(200));
        assert!((s.queries_per_hour() - 36_000.0).abs() < 1.0);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }
}
