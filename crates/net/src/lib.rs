//! # hsqp-net — calibrated software network fabric
//!
//! The paper evaluates query processing on a 6-server InfiniBand 4×QDR
//! cluster. No such hardware is available to this reproduction, so this
//! crate provides a **calibrated software fabric** that exercises the same
//! code paths and exposes the same trade-offs:
//!
//! * [`link::LinkSpec`] — the data-link standards of Table 1 (GbE and
//!   InfiniBand SDR/DDR/QDR/FDR/EDR) with their bandwidths and latencies.
//! * [`fabric::Fabric`] — wire-time pacing via virtual-clock reservations on
//!   egress/ingress ports, plus a switch-contention model (credit starvation
//!   under uncoordinated all-to-all traffic, §3.2.3).
//! * [`tcp`] — a TCP/IPoIB endpoint model: real buffer copies, checksum
//!   passes (data touching), per-packet kernel overhead, interrupt
//!   coalescing, datagram vs connected mode, and DDIO/NUIOA memory-bus-trip
//!   accounting (§2.1).
//! * [`rdma`] — an ibverbs-style endpoint model: registered memory regions,
//!   send/receive work queues, completion queues with polling or event-based
//!   notification, zero-copy payload hand-off, and low-latency inline sends
//!   (§2.2).
//! * [`sched`] — application-level round-robin network scheduling with
//!   low-latency synchronization barriers (§3.2.3, Figure 10).
//! * [`stats`] — per-node accounting of bytes, messages, packets, CPU time
//!   spent on networking, and memory-bus trips (Figures 4 and 5).
//!
//! All CPU costs in the models are *actually spent* as busy-wait time on the
//! calling thread, so the receiver-bound behaviour of TCP and the almost-free
//! behaviour of RDMA emerge in wall-clock measurements, just like they do in
//! the paper.

pub mod fabric;
pub mod link;
pub mod rdma;
pub mod sched;
pub mod socket;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use fabric::{Fabric, FabricConfig, NodeId};
pub use link::LinkSpec;
pub use rdma::{CompletionMode, RdmaConfig, RdmaEndpoint, RdmaNetwork};
pub use sched::{NetScheduler, Schedule};
pub use socket::{SocketConfig, SocketTransport};
pub use stats::{NetStats, QueryId, QueryNetStats, QueryStatsRegistry};
pub use tcp::{IpoibMode, TcpConfig, TcpEndpoint, TcpNetwork};
pub use transport::{Transport, TransportEvent};
