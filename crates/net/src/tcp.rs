//! TCP over IPoIB endpoint model (§2.1).
//!
//! TCP's socket interface copies message data between application and socket
//! buffers, touches every byte for checksums (unless offloaded), spends
//! kernel time per MTU-sized packet, and handles interrupts from the NIC.
//! These costs make the *receiver CPU* the bottleneck long before the wire
//! saturates — the central finding of §2.1. The model spends those costs as
//! real busy-work on the calling threads, with constants calibrated to the
//! measured ladder of Figure 5:
//!
//! | configuration                        | bidir GB/s | unidir GB/s |
//! |--------------------------------------|-----------:|------------:|
//! | datagram, no offload                 | 0.37       | 0.69        |
//! | datagram + offload (default TCP)     | 0.93       | 1.58        |
//! | connected, 64 k MTU                  | 1.51       | 2.27        |
//! | + IRQ on separate core               | 2.17       | 3.57        |
//!
//! Memory-bus traffic follows the DDIO study of §2.1.1: with DDIO active
//! (network thread on the NUIOA-local socket) the paper measured 1.03×/1.02×
//! read/write amplification; on the remote socket 2.11× send-side reads and
//! 1.5×/2.33× receive-side amplification. We account exactly those factors.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::fabric::{Fabric, NodeId};

/// IPoIB transport mode (RFC 4391/4392 vs RFC 4755).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpoibMode {
    /// Datagram mode: MTU ≤ 2044 bytes, TCP offloading available.
    Datagram,
    /// Connected mode: MTU ≤ 65 520 bytes, no offloading.
    Connected,
}

impl IpoibMode {
    /// Largest MTU the mode supports.
    pub fn max_mtu(self) -> usize {
        match self {
            IpoibMode::Datagram => 2044,
            IpoibMode::Connected => 65_520,
        }
    }
}

/// Tuning knobs for the TCP endpoint model.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// IPoIB transport mode.
    pub mode: IpoibMode,
    /// Maximum transmission unit in bytes.
    pub mtu: usize,
    /// Checksum offloading to the NIC (datagram mode only).
    pub offload: bool,
    /// Pin the interrupt handler to a different core than the network
    /// thread. Uses a second core but removes IRQ/protocol serialization.
    pub irq_separate_core: bool,
    /// Network thread runs on the NUIOA-local socket, enabling DDIO.
    pub numa_local_nic: bool,
}

/// Calibrated per-byte cost of the socket-buffer copy.
const COPY_NS_PER_BYTE: f64 = 0.12;
/// Calibrated per-byte cost of checksumming (data touching).
const CHECKSUM_NS_PER_BYTE: f64 = 0.10;
/// Kernel protocol processing per wire packet.
const KERNEL_NS_PER_PACKET: f64 = 1100.0;
/// Cost of one interrupt event.
const IRQ_EVENT_NS: f64 = 1200.0;
/// Packets per interrupt when the NIC coalesces (offload enabled).
const IRQ_COALESCE: u64 = 64;
/// Receiver slowdown when IRQ handler shares the network thread's core.
const IRQ_SHARED_CORE_FACTOR: f64 = 2.0;
/// Throughput penalty for running the network thread NUIOA-remotely.
const NUIOA_REMOTE_FACTOR: f64 = 1.12;

impl TcpConfig {
    /// Default TCP as shipped: datagram mode, 2044-byte MTU, offload on,
    /// IRQ handler sharing the network thread's core (Figure 5 "default TCP").
    pub fn default_tcp() -> Self {
        Self {
            mode: IpoibMode::Datagram,
            mtu: 2044,
            offload: true,
            irq_separate_core: false,
            numa_local_nic: true,
        }
    }

    /// Datagram mode with offloading disabled ("TCP w/o offload").
    pub fn without_offload() -> Self {
        Self {
            offload: false,
            ..Self::default_tcp()
        }
    }

    /// Connected mode with the 65 520-byte MTU ("TCP 64k MTU").
    pub fn connected_64k() -> Self {
        Self {
            mode: IpoibMode::Connected,
            mtu: 65_520,
            offload: false,
            irq_separate_core: false,
            numa_local_nic: true,
        }
    }

    /// The paper's best TCP configuration: connected mode, 64 k MTU, IRQ
    /// handler pinned to a different core ("TCP interrupts").
    pub fn tuned() -> Self {
        Self {
            irq_separate_core: true,
            ..Self::connected_64k()
        }
    }

    /// Validate invariants (MTU bounds, offload availability).
    ///
    /// # Panics
    /// Panics when the MTU exceeds the mode's maximum, the MTU is zero, or
    /// offloading is requested in connected mode.
    pub fn validate(&self) {
        assert!(self.mtu > 0, "MTU must be positive");
        assert!(
            self.mtu <= self.mode.max_mtu(),
            "MTU {} exceeds {:?} maximum {}",
            self.mtu,
            self.mode,
            self.mode.max_mtu()
        );
        if self.offload {
            assert_eq!(
                self.mode,
                IpoibMode::Datagram,
                "TCP offloading is only available in datagram mode"
            );
        }
    }

    /// Number of wire packets for a message of `bytes`.
    pub fn packets(&self, bytes: usize) -> u64 {
        (bytes as u64).div_ceil(self.mtu as u64).max(1)
    }

    fn numa_factor(&self) -> f64 {
        if self.numa_local_nic {
            1.0
        } else {
            NUIOA_REMOTE_FACTOR
        }
    }

    /// Modeled sender-side CPU time for one message.
    pub fn sender_cpu(&self, bytes: usize) -> Duration {
        let m = bytes as f64;
        let copy = m * COPY_NS_PER_BYTE;
        let checksum = if self.offload {
            0.0
        } else {
            m * CHECKSUM_NS_PER_BYTE
        };
        let kernel = self.packets(bytes) as f64 * KERNEL_NS_PER_PACKET;
        Duration::from_nanos(((copy + checksum + kernel) * self.numa_factor()) as u64)
    }

    /// Modeled receiver-side CPU time for one message.
    pub fn receiver_cpu(&self, bytes: usize) -> Duration {
        let m = bytes as f64;
        let copy = m * COPY_NS_PER_BYTE;
        let checksum = if self.offload {
            0.0
        } else {
            m * CHECKSUM_NS_PER_BYTE
        };
        let events = if self.offload {
            self.packets(bytes).div_ceil(IRQ_COALESCE)
        } else {
            self.packets(bytes)
        };
        let irq = events as f64 * IRQ_EVENT_NS;
        let mut total = copy + checksum + irq;
        if !self.irq_separate_core {
            total *= IRQ_SHARED_CORE_FACTOR;
        }
        Duration::from_nanos((total * self.numa_factor()) as u64)
    }

    /// Memory-bus trips at the sender as (read, write) byte amplification.
    fn sender_membus(&self, bytes: u64) -> (u64, u64) {
        if self.numa_local_nic {
            // DDIO active: measured 1.03× reads, no extra writes.
            ((bytes as f64 * 1.03) as u64, 0)
        } else {
            ((bytes as f64 * 2.11) as u64, bytes)
        }
    }

    /// Memory-bus trips at the receiver as (read, write) amplification.
    fn receiver_membus(&self, bytes: u64) -> (u64, u64) {
        if self.numa_local_nic {
            (0, (bytes as f64 * 1.02) as u64)
        } else {
            ((bytes as f64 * 1.5) as u64, (bytes as f64 * 2.33) as u64)
        }
    }
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self::default_tcp()
    }
}

/// A message travelling through a socket: the socket-buffer copy plus its
/// wire delivery time.
struct SocketDatagram {
    src: NodeId,
    data: Vec<u8>,
    delivery: f64,
}

/// Full-mesh TCP network over a [`Fabric`].
pub struct TcpNetwork {
    fabric: Arc<Fabric>,
    cfg: TcpConfig,
    inboxes: Vec<(Sender<SocketDatagram>, Receiver<SocketDatagram>)>,
}

impl TcpNetwork {
    /// Build a TCP network for every node of `fabric`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`TcpConfig::validate`]).
    pub fn new(fabric: Arc<Fabric>, cfg: TcpConfig) -> Self {
        cfg.validate();
        let inboxes = (0..fabric.nodes()).map(|_| unbounded()).collect();
        Self {
            fabric,
            cfg,
            inboxes,
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Endpoint handle for `node`.
    pub fn endpoint(&self, node: NodeId) -> TcpEndpoint {
        TcpEndpoint {
            node,
            cfg: self.cfg,
            fabric: Arc::clone(&self.fabric),
            inbox: self.inboxes[node.idx()].1.clone(),
            peers: self.inboxes.iter().map(|(tx, _)| tx.clone()).collect(),
        }
    }
}

/// One node's TCP endpoint. Send and receive perform the modeled protocol
/// work on the calling thread (the "network thread").
pub struct TcpEndpoint {
    node: NodeId,
    cfg: TcpConfig,
    fabric: Arc<Fabric>,
    inbox: Receiver<SocketDatagram>,
    peers: Vec<Sender<SocketDatagram>>,
}

impl TcpEndpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Send `data` to `dst`, paying copy/checksum/kernel costs here and
    /// reserving wire time on the fabric.
    pub fn send(&self, dst: NodeId, data: &[u8]) {
        // Application buffer → socket buffer: the copy TCP cannot avoid.
        let socket_buf = data.to_vec();
        self.fabric
            .charge_send_cpu(self.node, self.cfg.sender_cpu(data.len()));
        let (r, w) = self.cfg.sender_membus(data.len() as u64);
        self.fabric.record_membus(self.node, r, w);
        let packets = self.cfg.packets(data.len());
        let delivery = self.fabric.reserve(self.node, dst, data.len(), packets);
        // Channel send only fails when all endpoints of the peer were
        // dropped; treat that like a closed connection and drop the packet.
        let _ = self.peers[dst.idx()].send(SocketDatagram {
            src: self.node,
            data: socket_buf,
            delivery,
        });
    }

    /// Receive the next message from any peer, blocking until one arrives.
    /// Pays receive-side protocol costs and the socket→application copy.
    pub fn recv(&self) -> (NodeId, Vec<u8>) {
        let dgram = self.inbox.recv().expect("tcp network torn down");
        self.finish_receive(dgram)
    }

    /// Receive with a timeout; `None` when nothing arrived in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, Vec<u8>)> {
        match self.inbox.recv_timeout(timeout) {
            Ok(dgram) => Some(self.finish_receive(dgram)),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn finish_receive(&self, dgram: SocketDatagram) -> (NodeId, Vec<u8>) {
        self.fabric.wait_until(dgram.delivery);
        self.fabric
            .charge_recv_cpu(self.node, self.cfg.receiver_cpu(dgram.data.len()));
        let (r, w) = self.cfg.receiver_membus(dgram.data.len() as u64);
        self.fabric.record_membus(self.node, r, w);
        self.fabric.record_delivery(self.node, dgram.data.len());
        // Socket buffer → application buffer: the receive-side copy.
        let app_buf = dgram.data.clone();
        (dgram.src, app_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::link::LinkSpec;

    fn qdr_fabric(nodes: u16) -> Arc<Fabric> {
        Arc::new(Fabric::new(nodes, FabricConfig::qdr()))
    }

    #[test]
    fn config_presets_validate() {
        TcpConfig::default_tcp().validate();
        TcpConfig::without_offload().validate();
        TcpConfig::connected_64k().validate();
        TcpConfig::tuned().validate();
    }

    #[test]
    #[should_panic(expected = "only available in datagram mode")]
    fn offload_rejected_in_connected_mode() {
        TcpConfig {
            mode: IpoibMode::Connected,
            mtu: 65_520,
            offload: true,
            irq_separate_core: false,
            numa_local_nic: true,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn datagram_mtu_capped() {
        TcpConfig {
            mtu: 9000,
            ..TcpConfig::default_tcp()
        }
        .validate();
    }

    #[test]
    fn packet_counts() {
        let c = TcpConfig::default_tcp();
        assert_eq!(c.packets(1), 1);
        assert_eq!(c.packets(2044), 1);
        assert_eq!(c.packets(2045), 2);
        assert_eq!(c.packets(512 * 1024), 257);
        let big = TcpConfig::connected_64k();
        assert_eq!(big.packets(512 * 1024), 9);
    }

    #[test]
    fn tuning_ladder_orders_cpu_costs() {
        // Receiver CPU per 512 KB message must strictly fall along the
        // tuning ladder of Figure 5.
        let m = 512 * 1024;
        let no_offload = TcpConfig::without_offload();
        let default_tcp = TcpConfig::default_tcp();
        let connected = TcpConfig::connected_64k();
        let tuned = TcpConfig::tuned();
        let total = |c: &TcpConfig| c.sender_cpu(m) + c.receiver_cpu(m);
        assert!(total(&no_offload) > total(&default_tcp));
        assert!(total(&default_tcp) > total(&connected));
        assert!(total(&connected) > total(&tuned));
    }

    #[test]
    fn nuioa_remote_is_slower_and_dirtier() {
        let local = TcpConfig::default_tcp();
        let remote = TcpConfig {
            numa_local_nic: false,
            ..local
        };
        assert!(remote.sender_cpu(1 << 20) > local.sender_cpu(1 << 20));
        assert!(remote.sender_membus(1000).0 > local.sender_membus(1000).0);
        // DDIO removes sender-side writes entirely.
        assert_eq!(local.sender_membus(1000).1, 0);
        assert!(remote.sender_membus(1000).1 > 0);
    }

    #[test]
    fn roundtrip_delivers_payload() {
        let fabric = qdr_fabric(2);
        let net = TcpNetwork::new(Arc::clone(&fabric), TcpConfig::tuned());
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expected = payload.clone();
        let h = std::thread::spawn(move || b.recv());
        a.send(NodeId(1), &payload);
        let (src, got) = h.join().unwrap();
        assert_eq!(src, NodeId(0));
        assert_eq!(got, expected);
        assert_eq!(fabric.stats(NodeId(0)).messages_sent(), 1);
        assert_eq!(fabric.stats(NodeId(1)).messages_received(), 1);
    }

    #[test]
    fn recv_timeout_expires_when_quiet() {
        let net = TcpNetwork::new(qdr_fabric(2), TcpConfig::default_tcp());
        let a = net.endpoint(NodeId(0));
        assert!(a.recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn slow_link_dominates_delivery_time() {
        // On GbE a 1 MB transfer takes ≥ 8 ms of wire time.
        let cfg = FabricConfig {
            link: LinkSpec::GBE,
            ..FabricConfig::default()
        };
        let fabric = Arc::new(Fabric::new(2, cfg));
        let net = TcpNetwork::new(Arc::clone(&fabric), TcpConfig::tuned());
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let start = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            let payload = vec![7u8; 1 << 20];
            a.send(NodeId(1), &payload);
        });
        let (_, got) = b.recv();
        h.join().unwrap();
        assert_eq!(got.len(), 1 << 20);
        assert!(start.elapsed() >= Duration::from_millis(8));
    }
}
