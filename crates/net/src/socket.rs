//! Real-socket transport: genuine OS TCP connections between processes.
//!
//! Everything else in this crate *models* a network; this module talks to
//! one. A [`SocketTransport`] is a full mesh of `std::net::TcpStream`
//! connections between the node processes of an out-of-process cluster,
//! carrying the same wire messages (header + serialized tuples) that the
//! simulated endpoints carry in-process.
//!
//! Design:
//!
//! * **Length-prefixed framing** — every message is `u32` little-endian
//!   length followed by the payload ([`write_frame`]/[`read_frame`]). The
//!   same framing carries the coordinator's control protocol.
//! * **Handshake preamble** — each connection opens with magic, protocol
//!   version, the dialer's role (data peer vs coordinator control), its
//!   node id, and the cluster size ([`Preamble`]), so a node can reject
//!   version skew and misdirected connections before any query traffic.
//! * **Per-peer send/receive threads** — one writer thread per peer drains
//!   a queue into a `BufWriter` (batching small frames, flushing when the
//!   queue runs dry), one reader thread per peer turns frames into
//!   [`TransportEvent::Message`]s. `TCP_NODELAY` and the writer buffer
//!   size are the [`SocketConfig`] knobs, mirroring the simulated
//!   [`TcpConfig`](crate::tcp::TcpConfig) tuning ladder.
//! * **Failure detection** — a reader hitting EOF or a socket error emits
//!   [`TransportEvent::PeerGone`], which the exchange layer translates
//!   into query aborts instead of wedged receive hubs.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::fabric::NodeId;
use crate::stats::NetStats;
use crate::transport::{Transport, TransportEvent};

/// Magic number opening every connection ("HSQP").
pub const WIRE_MAGIC: u32 = 0x4853_5150;
/// Protocol version of the handshake, framing, and control opcodes.
/// Bumped on any incompatible change; mismatches are rejected loudly.
pub const WIRE_VERSION: u16 = 1;
/// Upper bound on a single frame (sanity check against corrupt lengths).
pub const MAX_FRAME: usize = 1 << 30;

/// What the dialing end of a fresh connection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeRole {
    /// Another node of the cluster: the connection carries exchange data.
    Data,
    /// The coordinator: the connection carries the control protocol.
    Control,
}

/// The fixed-size handshake sent by whoever opens a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preamble {
    /// Dialer's protocol version ([`WIRE_VERSION`]).
    pub version: u16,
    /// What the dialer is.
    pub role: HandshakeRole,
    /// Dialer's node id (0 for the coordinator).
    pub node: u16,
    /// Cluster size the dialer believes in.
    pub nodes: u16,
}

impl Preamble {
    /// Serialize to the 11-byte wire form.
    pub fn encode(&self) -> [u8; 11] {
        let mut b = [0u8; 11];
        b[0..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
        b[4..6].copy_from_slice(&self.version.to_le_bytes());
        b[6] = match self.role {
            HandshakeRole::Data => 0,
            HandshakeRole::Control => 1,
        };
        b[7..9].copy_from_slice(&self.node.to_le_bytes());
        b[9..11].copy_from_slice(&self.nodes.to_le_bytes());
        b
    }
}

/// Write the handshake preamble to a fresh connection.
pub fn send_preamble(w: &mut impl Write, p: &Preamble) -> io::Result<()> {
    w.write_all(&p.encode())?;
    w.flush()
}

/// Read and validate a handshake preamble; rejects bad magic and version
/// skew with `InvalidData` so incompatible builds fail at connect time.
pub fn read_preamble(r: &mut impl Read) -> io::Result<Preamble> {
    let mut b = [0u8; 11];
    r.read_exact(&mut b)?;
    let magic = u32::from_le_bytes(b[0..4].try_into().expect("4 bytes"));
    if magic != WIRE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad handshake magic {magic:#x}"),
        ));
    }
    let version = u16::from_le_bytes(b[4..6].try_into().expect("2 bytes"));
    if version != WIRE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("protocol version mismatch: peer {version}, ours {WIRE_VERSION}"),
        ));
    }
    let role = match b[6] {
        0 => HandshakeRole::Data,
        1 => HandshakeRole::Control,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown handshake role {other}"),
            ))
        }
    };
    Ok(Preamble {
        version,
        role,
        node: u16::from_le_bytes(b[7..9].try_into().expect("2 bytes")),
        nodes: u16::from_le_bytes(b[9..11].try_into().expect("2 bytes")),
    })
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Socket tuning knobs, the real-transport mirror of the simulated
/// [`TcpConfig`](crate::tcp::TcpConfig) ladder.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// Set `TCP_NODELAY` on every connection (disable Nagle batching —
    /// exchange messages are already batched into large frames).
    pub nodelay: bool,
    /// Userspace write-buffer capacity per peer connection; small frames
    /// coalesce here before hitting the kernel.
    pub send_buffer: usize,
    /// How long mesh establishment keeps retrying dials before giving up
    /// (peers may not have bound their listeners yet).
    pub connect_timeout: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            nodelay: true,
            send_buffer: 256 * 1024,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

struct PeerHandle {
    /// Queue into the peer's writer thread; dropping it stops the thread.
    tx: Sender<Bytes>,
    /// Kept to force-close the stream on drop so reader threads unblock.
    stream: TcpStream,
}

/// A real-socket mesh connecting this node to every other node process.
///
/// Created by [`connect_mesh`](Self::connect_mesh) once the cluster
/// membership is known; used by the communication multiplexer through the
/// [`Transport`] trait exactly like the simulated endpoints.
pub struct SocketTransport {
    node: NodeId,
    peers: Vec<Option<PeerHandle>>,
    events: Receiver<TransportEvent>,
    /// Held so reader threads can always deliver (even while the mux is
    /// between polls); cloned senders live in the reader threads.
    _events_tx: Sender<TransportEvent>,
    stats: Arc<NetStats>,
}

impl SocketTransport {
    /// Establish the full mesh for `node` in a cluster of `addrs.len()`
    /// nodes (`addrs[i]` is node i's listen address; our own entry is
    /// ignored). Dials every lower-numbered node (retrying until
    /// `cfg.connect_timeout`, since peers may still be starting) and
    /// accepts one data connection from every higher-numbered node on
    /// `listener`.
    pub fn connect_mesh(
        node: NodeId,
        addrs: &[String],
        listener: &TcpListener,
        cfg: &SocketConfig,
    ) -> io::Result<Self> {
        Self::connect_mesh_pending(node, addrs, listener, cfg, Vec::new())
    }

    /// [`connect_mesh`](Self::connect_mesh), with data connections that were
    /// already accepted (preamble read) before mesh establishment started.
    /// A node server shares one listener between the coordinator's control
    /// connection and the mesh, so a fast peer's dial can land before the
    /// coordinator's — the server stashes it and hands it over here.
    pub fn connect_mesh_pending(
        node: NodeId,
        addrs: &[String],
        listener: &TcpListener,
        cfg: &SocketConfig,
        pending: Vec<(Preamble, TcpStream)>,
    ) -> io::Result<Self> {
        let nodes = addrs.len() as u16;
        let (events_tx, events) = unbounded();
        let stats = Arc::new(NetStats::new());
        let mut peers: Vec<Option<PeerHandle>> = (0..nodes).map(|_| None).collect();

        // Dial every lower-numbered peer.
        for target in 0..node.0 {
            let stream = dial_with_retry(&addrs[target as usize], cfg.connect_timeout)?;
            let mut s = stream.try_clone()?;
            send_preamble(
                &mut s,
                &Preamble {
                    version: WIRE_VERSION,
                    role: HandshakeRole::Data,
                    node: node.0,
                    nodes,
                },
            )?;
            peers[target as usize] = Some(start_peer(
                NodeId(target),
                stream,
                cfg,
                events_tx.clone(),
                Arc::clone(&stats),
            )?);
        }

        // Accept one data connection from every higher-numbered peer,
        // consuming pre-accepted connections first.
        let mut pending = pending;
        let mut expected = (node.0 + 1..nodes).count();
        let deadline = Instant::now() + cfg.connect_timeout;
        while expected > 0 {
            let (p, stream) = match pending.pop() {
                Some(entry) => entry,
                None => {
                    if Instant::now() > deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("mesh incomplete: {expected} peer(s) never connected"),
                        ));
                    }
                    let (mut stream, _) = listener.accept()?;
                    let p = read_preamble(&mut stream)?;
                    (p, stream)
                }
            };
            if p.role != HandshakeRole::Data {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected control connection during mesh establishment",
                ));
            }
            if p.nodes != nodes || p.node <= node.0 || p.node >= nodes {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "peer handshake out of place: node {} of {} (we are {} of {nodes})",
                        p.node, p.nodes, node.0
                    ),
                ));
            }
            if peers[p.node as usize].is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("duplicate mesh connection from node {}", p.node),
                ));
            }
            peers[p.node as usize] = Some(start_peer(
                NodeId(p.node),
                stream,
                cfg,
                events_tx.clone(),
                Arc::clone(&stats),
            )?);
            expected -= 1;
        }

        Ok(Self {
            node,
            peers,
            events,
            _events_tx: events_tx,
            stats,
        })
    }

    /// This node's id in the mesh.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Byte/message counters of everything sent and received over this
    /// mesh (feeds the same metrics surface as the simulated fabric).
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }
}

impl Transport for SocketTransport {
    fn send(&self, dst: NodeId, payload: Bytes) {
        if let Some(Some(peer)) = self.peers.get(dst.idx()) {
            self.stats.record_send(payload.len() as u64, 1);
            // A closed queue means the writer thread died with the
            // connection; the reader thread reports the PeerGone.
            let _ = peer.tx.send(payload);
        }
    }

    fn try_recv(&self) -> Option<TransportEvent> {
        self.events.try_recv().ok()
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for peer in self.peers.iter().flatten() {
            let _ = peer.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Dial `addr`, retrying while the peer's listener may not be up yet.
fn dial_with_retry(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("dialing {addr} failed after {timeout:?}: {e}"),
                ))
            }
        }
    }
}

/// Spawn the writer and reader threads for one established peer stream.
fn start_peer(
    peer: NodeId,
    stream: TcpStream,
    cfg: &SocketConfig,
    events: Sender<TransportEvent>,
    stats: Arc<NetStats>,
) -> io::Result<PeerHandle> {
    stream.set_nodelay(cfg.nodelay)?;
    let (tx, rx): (Sender<Bytes>, Receiver<Bytes>) = unbounded();

    let writer_stream = stream.try_clone()?;
    let send_buffer = cfg.send_buffer;
    std::thread::Builder::new()
        .name(format!("sock-send-{}", peer.0))
        .spawn(move || {
            let mut w = BufWriter::with_capacity(send_buffer, writer_stream);
            // Block for the first frame, then opportunistically drain the
            // queue before paying one flush (syscall) for the batch.
            while let Ok(first) = rx.recv() {
                if write_frame(&mut w, &first).is_err() {
                    return;
                }
                while let Ok(more) = rx.try_recv() {
                    if write_frame(&mut w, &more).is_err() {
                        return;
                    }
                }
                if w.flush().is_err() {
                    return;
                }
            }
        })
        .expect("spawn socket writer");

    let reader_stream = stream.try_clone()?;
    std::thread::Builder::new()
        .name(format!("sock-recv-{}", peer.0))
        .spawn(move || {
            let mut r = BufReader::new(reader_stream);
            loop {
                match read_frame(&mut r) {
                    Ok(frame) => {
                        stats.record_receive(frame.len() as u64);
                        if events
                            .send(TransportEvent::Message {
                                src: peer,
                                payload: Bytes::from(frame),
                            })
                            .is_err()
                        {
                            return; // transport dropped
                        }
                    }
                    Err(e) => {
                        let _ = events.send(TransportEvent::PeerGone {
                            peer,
                            reason: format!("node {} connection lost: {e}", peer.0),
                        });
                        return;
                    }
                }
            }
        })
        .expect("spawn socket reader");

    Ok(PeerHandle { tx, stream })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_pair() -> (SocketTransport, SocketTransport) {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![
            l0.local_addr().unwrap().to_string(),
            l1.local_addr().unwrap().to_string(),
        ];
        let cfg = SocketConfig::default();
        let a1 = addrs.clone();
        let t = std::thread::spawn(move || {
            SocketTransport::connect_mesh(NodeId(1), &a1, &l1, &cfg).unwrap()
        });
        let t0 = SocketTransport::connect_mesh(NodeId(0), &addrs, &l0, &cfg).unwrap();
        (t0, t.join().unwrap())
    }

    fn recv_blocking(t: &SocketTransport) -> TransportEvent {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(ev) = t.try_recv() {
                return ev;
            }
            assert!(Instant::now() < deadline, "no event within 10s");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn mesh_sends_both_ways() {
        let (t0, t1) = mesh_pair();
        t0.send(NodeId(1), Bytes::from_static(b"ping"));
        t1.send(NodeId(0), Bytes::from_static(b"pong"));
        match recv_blocking(&t1) {
            TransportEvent::Message { src, payload } => {
                assert_eq!(src, NodeId(0));
                assert_eq!(&payload[..], b"ping");
            }
            other => panic!("unexpected event: {other:?}"),
        }
        match recv_blocking(&t0) {
            TransportEvent::Message { src, payload } => {
                assert_eq!(src, NodeId(1));
                assert_eq!(&payload[..], b"pong");
            }
            other => panic!("unexpected event: {other:?}"),
        }
        assert_eq!(t0.stats().messages_sent(), 1);
        assert_eq!(t0.stats().bytes_sent(), 4);
        assert_eq!(t0.stats().messages_received(), 1);
    }

    #[test]
    fn dropped_peer_surfaces_as_peer_gone() {
        let (t0, t1) = mesh_pair();
        drop(t1);
        match recv_blocking(&t0) {
            TransportEvent::PeerGone { peer, .. } => assert_eq!(peer, NodeId(1)),
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn preamble_roundtrip_and_version_check() {
        let p = Preamble {
            version: WIRE_VERSION,
            role: HandshakeRole::Control,
            node: 3,
            nodes: 4,
        };
        let mut buf = Vec::new();
        send_preamble(&mut buf, &p).unwrap();
        assert_eq!(read_preamble(&mut &buf[..]).unwrap(), p);

        // Version skew is rejected.
        let mut bad = p.encode();
        bad[4] = 0xEE;
        bad[5] = 0xEE;
        assert!(read_preamble(&mut &bad[..]).is_err());
        // Bad magic is rejected.
        let mut bad = p.encode();
        bad[0] = 0;
        assert!(read_preamble(&mut &bad[..]).is_err());
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"abc");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // clean EOF
    }
}
