//! RDMA endpoint model in the style of the ibverbs interface (§2.2).
//!
//! RDMA is asynchronous and zero-copy: work requests are posted to send and
//! receive queues, the HCA moves bytes without involving the CPU, and work
//! completions appear on a completion queue. The model reproduces the four
//! properties the paper exploits:
//!
//! 1. **Kernel bypassing / zero copy** — payloads travel as [`Bytes`]
//!    handles; no socket-buffer copies, no checksum passes.
//! 2. **Memory regions** — buffers must be registered before the HCA may
//!    use them. Registration is expensive ([`RdmaConfig::mr_base_cost`]),
//!    which is why the engine reuses buffers through a message pool.
//! 3. **Channel semantics** — the receiver posts receive work requests;
//!    a sender blocks when the receiver has no credits (RNR back pressure).
//! 4. **Completion notifications** — [`CompletionMode::Polling`] burns a
//!    core for minimal latency; [`CompletionMode::Event`] sleeps on an
//!    interrupt-driven event at ~4 % CPU (§2.2.4).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};

use crate::fabric::{Fabric, NodeId};

/// How completions are detected (§2.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompletionMode {
    /// Busy-poll the completion queue: lowest latency, 100 % of one core.
    Polling,
    /// Sleep until the HCA raises a completion event: ~4 % CPU overhead.
    #[default]
    Event,
}

/// Tuning knobs of the RDMA model.
#[derive(Debug, Clone, Copy)]
pub struct RdmaConfig {
    /// Completion notification mechanism.
    pub completion: CompletionMode,
    /// Fixed cost of registering a memory region (pinning + HCA mapping).
    pub mr_base_cost: Duration,
    /// Additional registration cost per byte of region size.
    pub mr_ns_per_byte: f64,
    /// CPU cost of posting one work request.
    pub post_wr_cost: Duration,
    /// CPU cost of handling one completion notification.
    pub completion_cost: Duration,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        Self {
            completion: CompletionMode::Event,
            mr_base_cost: Duration::from_micros(40),
            mr_ns_per_byte: 0.1,
            post_wr_cost: Duration::from_micros(2),
            completion_cost: Duration::from_micros(5),
        }
    }
}

/// A registered memory region: the HCA may DMA into/out of it at any time.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    bytes: Bytes,
    /// Remote key, as exchanged for one-sided operations.
    rkey: u64,
}

impl MemoryRegion {
    /// The registered bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Region length.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The remote access key.
    pub fn rkey(&self) -> u64 {
        self.rkey
    }

    /// Take the payload out of the region.
    pub fn into_bytes(self) -> Bytes {
        self.bytes
    }
}

/// A work completion popped from the completion queue.
#[derive(Debug)]
pub struct Completion {
    /// Node that sent the message.
    pub src: NodeId,
    /// Zero-copy payload.
    pub payload: Bytes,
    /// True if the message was sent inline (scheduler synchronization).
    pub inline: bool,
}

struct WireMessage {
    src: NodeId,
    payload: Bytes,
    delivery: f64,
    inline: bool,
}

/// Receiver-side credit state: the number of posted receive work requests.
#[derive(Default)]
struct Credits {
    available: Mutex<u64>,
    granted: Condvar,
}

/// Full-mesh RDMA network over a [`Fabric`].
pub struct RdmaNetwork {
    fabric: Arc<Fabric>,
    cfg: RdmaConfig,
    inboxes: Vec<(Sender<WireMessage>, Receiver<WireMessage>)>,
    credits: Vec<Arc<Credits>>,
}

impl RdmaNetwork {
    /// Build an RDMA network for every node of `fabric`.
    pub fn new(fabric: Arc<Fabric>, cfg: RdmaConfig) -> Self {
        let n = fabric.nodes();
        Self {
            fabric,
            cfg,
            inboxes: (0..n).map(|_| unbounded()).collect(),
            credits: (0..n).map(|_| Arc::new(Credits::default())).collect(),
        }
    }

    /// The underlying fabric.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Endpoint handle for `node`.
    pub fn endpoint(&self, node: NodeId) -> RdmaEndpoint {
        RdmaEndpoint {
            node,
            cfg: self.cfg,
            fabric: Arc::clone(&self.fabric),
            inbox: self.inboxes[node.idx()].1.clone(),
            peers: self.inboxes.iter().map(|(tx, _)| tx.clone()).collect(),
            credits: self.credits.clone(),
            next_rkey: Mutex::new(1),
        }
    }
}

/// One node's RDMA endpoint (a queue pair per peer, one completion queue).
pub struct RdmaEndpoint {
    node: NodeId,
    cfg: RdmaConfig,
    fabric: Arc<Fabric>,
    inbox: Receiver<WireMessage>,
    peers: Vec<Sender<WireMessage>>,
    credits: Vec<Arc<Credits>>,
    next_rkey: Mutex<u64>,
}

impl RdmaEndpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The configuration in effect.
    pub fn config(&self) -> &RdmaConfig {
        &self.cfg
    }

    /// Register `data` as a memory region, paying pin + HCA mapping cost.
    /// Reuse regions (via a message pool) to avoid paying this repeatedly.
    pub fn register(&self, data: Vec<u8>) -> MemoryRegion {
        let cost = self.cfg.mr_base_cost
            + Duration::from_nanos((data.len() as f64 * self.cfg.mr_ns_per_byte) as u64);
        self.fabric.charge_send_cpu(self.node, cost);
        let rkey = {
            let mut k = self.next_rkey.lock();
            *k += 1;
            *k
        };
        MemoryRegion {
            bytes: Bytes::from(data),
            rkey,
        }
    }

    /// Post `n` receive work requests, granting senders `n` more credits.
    pub fn post_recvs(&self, n: u64) {
        let c = &self.credits[self.node.idx()];
        let mut avail = c.available.lock();
        *avail += n;
        c.granted.notify_all();
    }

    /// Currently posted (unconsumed) receive work requests.
    pub fn posted_recvs(&self) -> u64 {
        *self.credits[self.node.idx()].available.lock()
    }

    /// Two-sided send of an already-registered region to `dst`. Zero-copy:
    /// the payload is handed to the HCA, not copied. Blocks while `dst` has
    /// no posted receive work requests (RNR back pressure).
    pub fn post_send(&self, dst: NodeId, region: MemoryRegion) {
        self.consume_credit(dst);
        self.fabric
            .charge_send_cpu(self.node, self.cfg.post_wr_cost);
        let len = region.len();
        // The HCA reads the buffer once; with DDIO it serves from LLC.
        self.fabric.record_membus(self.node, len as u64, 0);
        let delivery = self.fabric.reserve(self.node, dst, len, 1);
        let _ = self.peers[dst.idx()].send(WireMessage {
            src: self.node,
            payload: region.into_bytes(),
            delivery,
            inline: false,
        });
    }

    /// Two-sided send of a payload whose buffer is already registered (it
    /// came from a message pool, §2.2.2) — no registration cost is charged.
    /// Zero-copy and credit-consuming like [`RdmaEndpoint::post_send`].
    pub fn post_send_bytes(&self, dst: NodeId, payload: Bytes) {
        self.consume_credit(dst);
        self.fabric
            .charge_send_cpu(self.node, self.cfg.post_wr_cost);
        let len = payload.len();
        self.fabric.record_membus(self.node, len as u64, 0);
        let delivery = self.fabric.reserve(self.node, dst, len.max(1), 1);
        let _ = self.peers[dst.idx()].send(WireMessage {
            src: self.node,
            payload,
            delivery,
            inline: false,
        });
    }

    /// Low-latency inline send (≤ 256 bytes): payload travels inside the
    /// work request itself. Used for scheduler synchronization messages.
    ///
    /// # Panics
    /// Panics if `data` exceeds 256 bytes.
    pub fn send_inline(&self, dst: NodeId, data: &[u8]) {
        assert!(data.len() <= 256, "inline sends are limited to 256 bytes");
        self.fabric
            .charge_send_cpu(self.node, Duration::from_nanos(300));
        let delivery = self.fabric.reserve(self.node, dst, data.len().max(1), 1);
        let _ = self.peers[dst.idx()].send(WireMessage {
            src: self.node,
            payload: Bytes::copy_from_slice(data),
            delivery,
            inline: true,
        });
    }

    /// Pop the next completion, honouring the configured notification mode.
    pub fn wait_completion(&self) -> Completion {
        match self.cfg.completion {
            CompletionMode::Event => {
                let msg = self.inbox.recv().expect("rdma network torn down");
                self.finish(msg)
            }
            CompletionMode::Polling => loop {
                if let Ok(msg) = self.inbox.try_recv() {
                    return self.finish(msg);
                }
                std::hint::spin_loop();
            },
        }
    }

    /// Pop the next completion or give up after `timeout`.
    pub fn wait_completion_timeout(&self, timeout: Duration) -> Option<Completion> {
        match self.cfg.completion {
            CompletionMode::Event => match self.inbox.recv_timeout(timeout) {
                Ok(msg) => Some(self.finish(msg)),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
            },
            CompletionMode::Polling => {
                let start = std::time::Instant::now();
                loop {
                    if let Ok(msg) = self.inbox.try_recv() {
                        return Some(self.finish(msg));
                    }
                    if start.elapsed() >= timeout {
                        return None;
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Non-blocking completion poll.
    pub fn poll_completion(&self) -> Option<Completion> {
        self.inbox.try_recv().ok().map(|m| self.finish(m))
    }

    fn finish(&self, msg: WireMessage) -> Completion {
        self.fabric.wait_until(msg.delivery);
        if !msg.inline {
            self.fabric
                .charge_recv_cpu(self.node, self.cfg.completion_cost);
            // One DMA write into the application buffer; no copies.
            self.fabric
                .record_membus(self.node, 0, msg.payload.len() as u64);
        }
        self.fabric.record_delivery(self.node, msg.payload.len());
        Completion {
            src: msg.src,
            payload: msg.payload,
            inline: msg.inline,
        }
    }

    fn consume_credit(&self, dst: NodeId) {
        let c = &self.credits[dst.idx()];
        let mut avail = c.available.lock();
        while *avail == 0 {
            c.granted.wait(&mut avail);
        }
        *avail -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;

    fn network(nodes: u16, cfg: RdmaConfig) -> RdmaNetwork {
        RdmaNetwork::new(Arc::new(Fabric::new(nodes, FabricConfig::qdr())), cfg)
    }

    #[test]
    fn zero_copy_roundtrip() {
        let net = network(2, RdmaConfig::default());
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        b.post_recvs(1);
        let region = a.register(vec![42u8; 4096]);
        a.post_send(NodeId(1), region);
        let c = b.wait_completion();
        assert_eq!(c.src, NodeId(0));
        assert_eq!(c.payload.len(), 4096);
        assert!(c.payload.iter().all(|&x| x == 42));
        assert!(!c.inline);
    }

    #[test]
    fn send_blocks_without_credits() {
        let net = network(2, RdmaConfig::default());
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        let region = a.register(vec![1u8; 16]);
        let started = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            a.post_send(NodeId(1), region); // must wait for a credit
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        b.post_recvs(1);
        let waited = h.join().unwrap();
        assert!(waited >= Duration::from_millis(45), "waited {waited:?}");
        let c = b.wait_completion();
        assert_eq!(c.payload.len(), 16);
    }

    #[test]
    fn credits_are_consumed() {
        let net = network(2, RdmaConfig::default());
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        b.post_recvs(2);
        assert_eq!(b.posted_recvs(), 2);
        a.post_send(NodeId(1), a.register(vec![0u8; 8]));
        a.post_send(NodeId(1), a.register(vec![0u8; 8]));
        assert_eq!(b.posted_recvs(), 0);
        b.wait_completion();
        b.wait_completion();
    }

    #[test]
    fn inline_send_needs_no_credit() {
        let net = network(2, RdmaConfig::default());
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        a.send_inline(NodeId(1), b"sync");
        let c = b.wait_completion();
        assert!(c.inline);
        assert_eq!(&c.payload[..], b"sync");
    }

    #[test]
    #[should_panic(expected = "limited to 256 bytes")]
    fn inline_send_size_capped() {
        let net = network(2, RdmaConfig::default());
        net.endpoint(NodeId(0)).send_inline(NodeId(1), &[0u8; 300]);
    }

    #[test]
    fn registration_costs_time() {
        let net = network(2, RdmaConfig::default());
        let a = net.endpoint(NodeId(0));
        let start = std::time::Instant::now();
        for _ in 0..100 {
            a.register(vec![0u8; 1024]);
        }
        // 100 registrations × ≥ 40 µs base ≥ 4 ms.
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn polling_mode_receives_too() {
        let cfg = RdmaConfig {
            completion: CompletionMode::Polling,
            ..RdmaConfig::default()
        };
        let net = network(2, cfg);
        let a = net.endpoint(NodeId(0));
        let b = net.endpoint(NodeId(1));
        b.post_recvs(1);
        a.post_send(NodeId(1), a.register(vec![9u8; 128]));
        let c = b.wait_completion_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(c.payload.len(), 128);
    }

    #[test]
    fn rdma_cpu_overhead_is_small() {
        // §2.2.4: event-based completions keep CPU overhead tiny. For a
        // 512 KB message the fixed costs must be well under 10 % of the
        // 131 µs wire time.
        let cfg = RdmaConfig::default();
        let per_message = cfg.post_wr_cost + cfg.completion_cost;
        assert!(per_message < Duration::from_micros(13));
    }

    #[test]
    fn wait_completion_timeout_expires() {
        let net = network(2, RdmaConfig::default());
        let a = net.endpoint(NodeId(0));
        assert!(a
            .wait_completion_timeout(Duration::from_millis(10))
            .is_none());
    }
}
