//! Per-node and per-query network accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

/// Identifier of one query admitted to the engine.
///
/// Every wire message carries the id of the query it belongs to, so the
/// fabric can attribute traffic to individual queries even when several are
/// in flight over the shared multiplexers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Counters for one node's network activity.
///
/// CPU time is split into send-side and receive-side work so harnesses can
/// report utilization the way the paper does (e.g. "100–190 % CPU for TCP vs
/// 4 % for RDMA", §2.1.2/§2.2.4). Memory-bus trip counters support the DDIO
/// study of Figure 4.
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    packets_sent: AtomicU64,
    send_cpu_ns: AtomicU64,
    recv_cpu_ns: AtomicU64,
    membus_read_bytes: AtomicU64,
    membus_write_bytes: AtomicU64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&self, bytes: u64, packets: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.packets_sent.fetch_add(packets, Ordering::Relaxed);
    }

    pub(crate) fn record_receive(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        self.messages_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_send_cpu(&self, d: Duration) {
        self.send_cpu_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_recv_cpu(&self, d: Duration) {
        self.recv_cpu_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_membus(&self, read: u64, write: u64) {
        self.membus_read_bytes.fetch_add(read, Ordering::Relaxed);
        self.membus_write_bytes.fetch_add(write, Ordering::Relaxed);
    }

    /// Total bytes sent by this node.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes received by this node.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Number of application messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Number of application messages received.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Number of wire packets (MTU-sized frames) sent.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent.load(Ordering::Relaxed)
    }

    /// CPU time spent on send-side protocol work.
    pub fn send_cpu(&self) -> Duration {
        Duration::from_nanos(self.send_cpu_ns.load(Ordering::Relaxed))
    }

    /// CPU time spent on receive-side protocol work.
    pub fn recv_cpu(&self) -> Duration {
        Duration::from_nanos(self.recv_cpu_ns.load(Ordering::Relaxed))
    }

    /// Total networking CPU time.
    pub fn total_cpu(&self) -> Duration {
        self.send_cpu() + self.recv_cpu()
    }

    /// Bytes read over the memory bus for networking (Figure 4).
    pub fn membus_read_bytes(&self) -> u64 {
        self.membus_read_bytes.load(Ordering::Relaxed)
    }

    /// Bytes written over the memory bus for networking (Figure 4).
    pub fn membus_write_bytes(&self) -> u64 {
        self.membus_write_bytes.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.packets_sent.store(0, Ordering::Relaxed);
        self.send_cpu_ns.store(0, Ordering::Relaxed);
        self.recv_cpu_ns.store(0, Ordering::Relaxed);
        self.membus_read_bytes.store(0, Ordering::Relaxed);
        self.membus_write_bytes.store(0, Ordering::Relaxed);
    }
}

/// Live network counters of one query: bytes and messages its exchanges
/// put on the wire across all nodes.
///
/// Handed out by the [`QueryStatsRegistry`]; the communication multiplexers
/// update it on every send, so a caller holding a clone of the `Arc` can
/// watch a query's fabric usage while it runs.
#[derive(Debug, Default)]
pub struct QueryNetStats {
    bytes_sent: AtomicU64,
    messages_sent: AtomicU64,
}

impl QueryNetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one wire message of `bytes` bytes sent for this query.
    pub fn record_send(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold in counters reported by another party (an out-of-process
    /// coordinator merging the per-node totals its nodes report back).
    pub fn add(&self, bytes: u64, messages: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(messages, Ordering::Relaxed);
    }

    /// Bytes this query has shipped over the fabric so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Wire messages this query has sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }
}

/// Registry mapping in-flight queries to their [`QueryNetStats`].
///
/// The cluster registers a query at admission and retires it at completion;
/// multiplexers look up the id decoded from each message header. Retiring
/// removes the registry entry (bounding memory across millions of queries)
/// without invalidating `Arc`s already handed to query handles.
#[derive(Debug, Default)]
pub struct QueryStatsRegistry {
    queries: RwLock<HashMap<u32, Arc<QueryNetStats>>>,
}

impl QueryStatsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `query`, returning its live counters (idempotent: a second
    /// registration returns the same counters).
    pub fn register(&self, query: QueryId) -> Arc<QueryNetStats> {
        if let Some(s) = self.queries.read().get(&query.0) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.queries
                .write()
                .entry(query.0)
                .or_insert_with(|| Arc::new(QueryNetStats::new())),
        )
    }

    /// Attribute one sent message to `query`. Messages of unregistered
    /// queries (e.g. stragglers of an already-retired query) are dropped.
    pub fn record_send(&self, query: QueryId, bytes: u64) {
        if let Some(s) = self.queries.read().get(&query.0) {
            s.record_send(bytes);
        }
    }

    /// Drop the registry entry for `query`. Counters stay readable through
    /// previously returned `Arc`s.
    pub fn retire(&self, query: QueryId) {
        self.queries.write().remove(&query.0);
    }

    /// Number of queries currently tracked.
    pub fn tracked(&self) -> usize {
        self.queries.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = NetStats::new();
        s.record_send(1000, 2);
        s.record_send(500, 1);
        s.record_receive(1000);
        s.add_send_cpu(Duration::from_micros(5));
        s.add_recv_cpu(Duration::from_micros(7));
        s.add_membus(30, 40);
        assert_eq!(s.bytes_sent(), 1500);
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.packets_sent(), 3);
        assert_eq!(s.bytes_received(), 1000);
        assert_eq!(s.messages_received(), 1);
        assert_eq!(s.total_cpu(), Duration::from_micros(12));
        assert_eq!(s.membus_read_bytes(), 30);
        assert_eq!(s.membus_write_bytes(), 40);
        s.reset();
        assert_eq!(s.bytes_sent(), 0);
        assert_eq!(s.total_cpu(), Duration::ZERO);
    }

    #[test]
    fn registry_attributes_per_query_and_retires() {
        let reg = QueryStatsRegistry::new();
        let a = reg.register(QueryId(1));
        let b = reg.register(QueryId(2));
        assert_eq!(reg.tracked(), 2);
        reg.record_send(QueryId(1), 100);
        reg.record_send(QueryId(1), 50);
        reg.record_send(QueryId(2), 7);
        assert_eq!(a.bytes_sent(), 150);
        assert_eq!(a.messages_sent(), 2);
        assert_eq!(b.bytes_sent(), 7);
        // Registering twice yields the same counters.
        assert_eq!(reg.register(QueryId(1)).bytes_sent(), 150);
        // Retired queries drop from the registry but the handle stays live;
        // straggler sends are dropped.
        reg.retire(QueryId(1));
        assert_eq!(reg.tracked(), 1);
        reg.record_send(QueryId(1), 999);
        assert_eq!(a.bytes_sent(), 150);
    }
}
