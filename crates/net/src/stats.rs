//! Per-node network accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters for one node's network activity.
///
/// CPU time is split into send-side and receive-side work so harnesses can
/// report utilization the way the paper does (e.g. "100–190 % CPU for TCP vs
/// 4 % for RDMA", §2.1.2/§2.2.4). Memory-bus trip counters support the DDIO
/// study of Figure 4.
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    packets_sent: AtomicU64,
    send_cpu_ns: AtomicU64,
    recv_cpu_ns: AtomicU64,
    membus_read_bytes: AtomicU64,
    membus_write_bytes: AtomicU64,
}

impl NetStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_send(&self, bytes: u64, packets: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.packets_sent.fetch_add(packets, Ordering::Relaxed);
    }

    pub(crate) fn record_receive(&self, bytes: u64) {
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        self.messages_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_send_cpu(&self, d: Duration) {
        self.send_cpu_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_recv_cpu(&self, d: Duration) {
        self.recv_cpu_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_membus(&self, read: u64, write: u64) {
        self.membus_read_bytes.fetch_add(read, Ordering::Relaxed);
        self.membus_write_bytes.fetch_add(write, Ordering::Relaxed);
    }

    /// Total bytes sent by this node.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes received by this node.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Number of application messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Number of application messages received.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Number of wire packets (MTU-sized frames) sent.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent.load(Ordering::Relaxed)
    }

    /// CPU time spent on send-side protocol work.
    pub fn send_cpu(&self) -> Duration {
        Duration::from_nanos(self.send_cpu_ns.load(Ordering::Relaxed))
    }

    /// CPU time spent on receive-side protocol work.
    pub fn recv_cpu(&self) -> Duration {
        Duration::from_nanos(self.recv_cpu_ns.load(Ordering::Relaxed))
    }

    /// Total networking CPU time.
    pub fn total_cpu(&self) -> Duration {
        self.send_cpu() + self.recv_cpu()
    }

    /// Bytes read over the memory bus for networking (Figure 4).
    pub fn membus_read_bytes(&self) -> u64 {
        self.membus_read_bytes.load(Ordering::Relaxed)
    }

    /// Bytes written over the memory bus for networking (Figure 4).
    pub fn membus_write_bytes(&self) -> u64 {
        self.membus_write_bytes.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
        self.packets_sent.store(0, Ordering::Relaxed);
        self.send_cpu_ns.store(0, Ordering::Relaxed);
        self.recv_cpu_ns.store(0, Ordering::Relaxed);
        self.membus_read_bytes.store(0, Ordering::Relaxed);
        self.membus_write_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = NetStats::new();
        s.record_send(1000, 2);
        s.record_send(500, 1);
        s.record_receive(1000);
        s.add_send_cpu(Duration::from_micros(5));
        s.add_recv_cpu(Duration::from_micros(7));
        s.add_membus(30, 40);
        assert_eq!(s.bytes_sent(), 1500);
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.packets_sent(), 3);
        assert_eq!(s.bytes_received(), 1000);
        assert_eq!(s.messages_received(), 1);
        assert_eq!(s.total_cpu(), Duration::from_micros(12));
        assert_eq!(s.membus_read_bytes(), 30);
        assert_eq!(s.membus_write_bytes(), 40);
        s.reset();
        assert_eq!(s.bytes_sent(), 0);
        assert_eq!(s.total_cpu(), Duration::ZERO);
    }
}
