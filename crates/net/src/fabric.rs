//! The wire: virtual-clock pacing and the switch-contention model.
//!
//! Every inter-node transfer reserves time on the sender's egress port and
//! the receiver's ingress port. Ports are virtual clocks: a reservation of a
//! message of `b` bytes occupies `b / bandwidth` seconds of port time, so
//! sustained throughput can never exceed the configured link rate — exactly
//! like a real serialized link.
//!
//! Switch contention (§3.2.3): InfiniBand uses credit-based link-level flow
//! control. When several input ports transmit to the same output port the
//! receiver's credits run out faster than they are granted, back pressure
//! builds up and effective throughput drops below line rate even on a
//! non-blocking switch. We model this as a service-time penalty that grows
//! with the number of *distinct concurrent senders* targeting one ingress
//! port: `penalty = 1 + α · (k − 1)`. With the default α this reproduces the
//! ~40 % throughput advantage of round-robin scheduling over uncoordinated
//! all-to-all traffic on an 8-server cluster (Figure 10(b)).

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::link::LinkSpec;
use crate::stats::NetStats;

/// Identifier of a server node attached to the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index for slicing per-node state.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Configuration of the fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Link standard for every host↔switch link.
    pub link: LinkSpec,
    /// Contention penalty slope α (see module docs). Calibrated so that 7
    /// concurrent senders lose ~29 % throughput (→ round-robin wins ~40 %).
    pub contention_alpha: f64,
    /// Disable to model an ideal contention-free switch.
    pub switch_contention: bool,
    /// How far ahead of real time a sender may reserve wire time before it
    /// blocks; models bounded socket buffers / RNR credits.
    pub send_window: Duration,
}

impl FabricConfig {
    /// Fabric with the paper's 4×QDR InfiniBand links.
    pub fn qdr() -> Self {
        Self::with_link(LinkSpec::IB_4X_QDR)
    }

    /// Fabric with Gigabit Ethernet links.
    pub fn gbe() -> Self {
        Self::with_link(LinkSpec::GBE)
    }

    /// Fabric with an arbitrary link standard and default contention model.
    pub fn with_link(link: LinkSpec) -> Self {
        Self {
            link,
            contention_alpha: 1.0 / 15.0,
            switch_contention: true,
            send_window: Duration::from_millis(40),
        }
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::qdr()
    }
}

#[derive(Debug, Default)]
struct IngressPort {
    next_free: f64,
    /// (source node, reservation end) pairs still considered in flight.
    inflight: Vec<(u16, f64)>,
}

/// The shared fabric connecting all nodes of the simulated cluster.
#[derive(Debug)]
pub struct Fabric {
    epoch: Instant,
    cfg: FabricConfig,
    egress: Vec<Mutex<f64>>,
    ingress: Vec<Mutex<IngressPort>>,
    stats: Vec<NetStats>,
}

impl Fabric {
    /// Create a fabric connecting `nodes` nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u16, cfg: FabricConfig) -> Self {
        assert!(nodes > 0, "a fabric needs at least one node");
        Self {
            epoch: Instant::now(),
            cfg,
            egress: (0..nodes).map(|_| Mutex::new(0.0)).collect(),
            ingress: (0..nodes)
                .map(|_| Mutex::new(IngressPort::default()))
                .collect(),
            stats: (0..nodes).map(|_| NetStats::new()).collect(),
        }
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> u16 {
        self.egress.len() as u16
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Seconds since fabric creation (the virtual-clock time base).
    pub fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Per-node statistics.
    pub fn stats(&self, node: NodeId) -> &NetStats {
        &self.stats[node.idx()]
    }

    /// Sum of bytes sent by all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent()).sum()
    }

    /// Sum of wire packets sent by all nodes.
    pub fn total_packets_sent(&self) -> u64 {
        self.stats.iter().map(|s| s.packets_sent()).sum()
    }

    /// Reset all per-node statistics.
    pub fn reset_stats(&self) {
        for s in &self.stats {
            s.reset();
        }
    }

    /// Reserve wire time for a message of `bytes` from `src` to `dst` and
    /// return its delivery time (fabric seconds). Blocks the caller only if
    /// it is more than [`FabricConfig::send_window`] ahead of real time.
    ///
    /// `packets` is the number of MTU frames for statistics purposes.
    ///
    /// # Panics
    /// Panics if `src == dst` — loopback traffic must not use the fabric.
    pub fn reserve(&self, src: NodeId, dst: NodeId, bytes: usize, packets: u64) -> f64 {
        assert_ne!(src, dst, "loopback traffic must stay node-local");
        let now = self.now();
        let base = bytes as f64 / self.cfg.link.bytes_per_sec();

        // Egress: the sender's own link serializes its outgoing messages.
        let egress_start = {
            let mut eg = self.egress[src.idx()].lock();
            let start = eg.max(now);
            *eg = start + base;
            start
        };

        // Ingress: shared with other senders; contention penalty applies.
        let end = {
            let mut port = self.ingress[dst.idx()].lock();
            port.inflight.retain(|&(_, e)| e > now);
            let distinct = {
                let mut srcs: Vec<u16> = port.inflight.iter().map(|&(s, _)| s).collect();
                srcs.push(src.0);
                srcs.sort_unstable();
                srcs.dedup();
                srcs.len()
            };
            let penalty = if self.cfg.switch_contention && distinct > 1 {
                1.0 + self.cfg.contention_alpha * (distinct as f64 - 1.0)
            } else {
                1.0
            };
            let start = port.next_free.max(egress_start);
            let end = start + base * penalty;
            port.next_free = end;
            port.inflight.push((src.0, end));
            end
        };

        self.stats[src.idx()].record_send(bytes as u64, packets);

        // Backpressure: don't let the sender run unboundedly ahead.
        let window = self.cfg.send_window.as_secs_f64();
        if end > now + window {
            self.wait_until(end - window);
        }

        end + self.cfg.link.latency().as_secs_f64()
    }

    /// Record delivery accounting for a message of `bytes` arriving at `dst`.
    pub fn record_delivery(&self, dst: NodeId, bytes: usize) {
        self.stats[dst.idx()].record_receive(bytes as u64);
    }

    /// Sleep (coarse) then spin (precise) until fabric time `t`.
    pub fn wait_until(&self, t: f64) {
        loop {
            let now = self.now();
            if now >= t {
                return;
            }
            let remaining = t - now;
            if remaining > 300e-6 {
                std::thread::sleep(Duration::from_secs_f64(remaining - 150e-6));
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Busy-occupy the calling thread for `d`, charging it to `node`'s
    /// send-side CPU accounting. Models protocol processing cost.
    pub fn charge_send_cpu(&self, node: NodeId, d: Duration) {
        busy(d);
        self.stats[node.idx()].add_send_cpu(d);
    }

    /// Busy-occupy the calling thread for `d`, charging it to `node`'s
    /// receive-side CPU accounting.
    pub fn charge_recv_cpu(&self, node: NodeId, d: Duration) {
        busy(d);
        self.stats[node.idx()].add_recv_cpu(d);
    }

    /// Account memory-bus traffic (Figure 4) without spending time.
    pub fn record_membus(&self, node: NodeId, read: u64, write: u64) {
        self.stats[node.idx()].add_membus(read, write);
    }
}

fn busy(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> FabricConfig {
        // A deliberately slow link so pacing effects are visible in tests.
        FabricConfig {
            link: LinkSpec::custom(10e6, Duration::ZERO), // 10 MB/s
            contention_alpha: 1.0 / 15.0,
            switch_contention: true,
            send_window: Duration::from_millis(1),
        }
    }

    #[test]
    fn pacing_limits_throughput() {
        let f = Fabric::new(2, fast_cfg());
        let start = Instant::now();
        // 20 × 50 KB = 1 MB at 10 MB/s → ≥ 100 ms of wire time.
        let mut last = 0.0;
        for _ in 0..20 {
            last = f.reserve(NodeId(0), NodeId(1), 50_000, 1);
        }
        f.wait_until(last);
        assert!(
            start.elapsed() >= Duration::from_millis(95),
            "took only {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn contention_inflates_service_time() {
        let cfg = FabricConfig {
            contention_alpha: 0.5,
            ..fast_cfg()
        };
        let f = Fabric::new(3, cfg);
        // Two concurrent senders into node 2; second reservation sees k=2.
        let t0 = f.now();
        let d1 = f.reserve(NodeId(0), NodeId(2), 100_000, 1);
        let d2 = f.reserve(NodeId(1), NodeId(2), 100_000, 1);
        // Reservations anchor at the wall clock, so if this thread is
        // descheduled between the two calls the gap widens by that pause —
        // bound it by the measured skew or the test flakes under load.
        let skew = f.now() - t0;
        // Base service: 10ms each. With contention the second takes 15 ms,
        // queued after the first → d2 ≈ d1 + 15 ms.
        let gap = d2 - d1;
        assert!(
            gap > 0.014 && gap < 0.020 + skew,
            "gap was {gap} (skew {skew})"
        );
    }

    #[test]
    fn no_contention_when_disabled() {
        let cfg = FabricConfig {
            switch_contention: false,
            contention_alpha: 0.5,
            ..fast_cfg()
        };
        let f = Fabric::new(3, cfg);
        let t0 = f.now();
        let d1 = f.reserve(NodeId(0), NodeId(2), 100_000, 1);
        let d2 = f.reserve(NodeId(1), NodeId(2), 100_000, 1);
        // Same wall-clock skew tolerance as `contention_inflates_service_time`.
        let skew = f.now() - t0;
        let gap = d2 - d1;
        assert!(
            gap > 0.008 && gap < 0.013 + skew,
            "gap was {gap} (skew {skew})"
        );
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_rejected() {
        let f = Fabric::new(2, fast_cfg());
        f.reserve(NodeId(1), NodeId(1), 10, 1);
    }

    #[test]
    fn stats_track_both_sides() {
        let f = Fabric::new(2, fast_cfg());
        f.reserve(NodeId(0), NodeId(1), 1234, 3);
        f.record_delivery(NodeId(1), 1234);
        assert_eq!(f.stats(NodeId(0)).bytes_sent(), 1234);
        assert_eq!(f.stats(NodeId(0)).packets_sent(), 3);
        assert_eq!(f.stats(NodeId(1)).bytes_received(), 1234);
        assert_eq!(f.total_bytes_sent(), 1234);
        f.reset_stats();
        assert_eq!(f.total_bytes_sent(), 0);
    }

    #[test]
    fn latency_is_added_to_delivery() {
        let cfg = FabricConfig {
            link: LinkSpec::custom(1e9, Duration::from_millis(50)),
            ..fast_cfg()
        };
        let f = Fabric::new(2, cfg);
        let before = f.now();
        let d = f.reserve(NodeId(0), NodeId(1), 1000, 1);
        assert!(
            d - before >= 0.050,
            "delivery only {} after now",
            d - before
        );
    }

    #[test]
    fn wait_until_is_accurate() {
        let f = Fabric::new(1, fast_cfg());
        let t = f.now() + 0.02;
        f.wait_until(t);
        let after = f.now();
        assert!(after >= t && after < t + 0.005, "woke at {after} vs {t}");
    }
}
