//! Application-level round-robin network scheduling (§3.2.3, Figure 10).
//!
//! Uncoordinated all-to-all traffic causes switch contention: several input
//! ports compete for one output port, credits run out, and throughput drops
//! even on non-blocking switches. The paper's answer is a simple round-robin
//! schedule that divides communication into contention-free phases: in each
//! phase every server sends to exactly one target and receives from exactly
//! one source (Figure 10(a)). Phases are separated by low-latency (~1 µs)
//! inline synchronization messages.
//!
//! [`Schedule`] is the pure phase arithmetic; [`NetScheduler`] is the
//! synchronization primitive the communication multiplexers block on. The
//! scheduler supports *leaving* (a node that finished its data keeps out of
//! future barriers), which the engine uses when exchanges complete at
//! different times.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::fabric::NodeId;

/// The round-robin communication schedule for `n` servers.
///
/// Phase `p ∈ [1, n)`: node `i` sends to `(i + p) mod n` and receives from
/// `(i − p) mod n`. Every (sender, receiver) pair appears in exactly one
/// phase, so no two senders ever share an ingress port.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    n: u16,
}

impl Schedule {
    /// Schedule for a cluster of `n` nodes.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: u16) -> Self {
        assert!(n > 0, "schedule needs at least one node");
        Self { n }
    }

    /// Cluster size.
    pub fn nodes(&self) -> u16 {
        self.n
    }

    /// Number of communication phases (`n − 1`).
    pub fn phases(&self) -> u16 {
        self.n - 1
    }

    /// The node `node` sends to during `phase` (1-based phase index).
    ///
    /// # Panics
    /// Panics if `phase` is not in `[1, n)` or `node` is out of range.
    pub fn target(&self, node: NodeId, phase: u16) -> NodeId {
        self.check(node, phase);
        NodeId((node.0 + phase) % self.n)
    }

    /// The node `node` receives from during `phase`.
    pub fn source(&self, node: NodeId, phase: u16) -> NodeId {
        self.check(node, phase);
        NodeId((node.0 + self.n - phase) % self.n)
    }

    fn check(&self, node: NodeId, phase: u16) {
        assert!(node.0 < self.n, "node out of range");
        assert!(phase >= 1 && phase < self.n, "phase must be in [1, n)");
    }
}

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
}

/// A reusable, leavable barrier with a modeled synchronization latency.
///
/// Each `sync()` models the exchange of inline synchronization messages: all
/// participants block until the slowest arrives, then a calibrated ~1 µs
/// latency is charged before anyone proceeds.
pub struct NetScheduler {
    state: Mutex<BarrierState>,
    cv: Condvar,
    sync_latency: Duration,
}

impl NetScheduler {
    /// Scheduler synchronizing `parties` multiplexers with the default
    /// ~1 µs inline-message latency.
    pub fn new(parties: usize) -> Arc<Self> {
        Self::with_latency(parties, Duration::from_micros(1))
    }

    /// Scheduler with an explicit synchronization latency.
    ///
    /// # Panics
    /// Panics if `parties` is zero.
    pub fn with_latency(parties: usize, sync_latency: Duration) -> Arc<Self> {
        assert!(parties > 0, "scheduler needs at least one party");
        Arc::new(Self {
            state: Mutex::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
            sync_latency,
        })
    }

    /// Block until all current parties arrived; models the inline
    /// synchronization message exchange between phases.
    pub fn sync(&self) {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived >= st.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
        }
        drop(st);
        // The inline sync messages themselves (~1 µs on InfiniBand).
        spin_for(self.sync_latency);
    }

    /// Permanently leave the barrier; remaining parties no longer wait for
    /// this participant.
    pub fn leave(&self) {
        let mut st = self.state.lock();
        assert!(st.parties > 0, "more leaves than parties");
        st.parties -= 1;
        if st.parties > 0 && st.arrived >= st.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        }
    }

    /// Parties still participating.
    pub fn parties(&self) -> usize {
        self.state.lock().parties
    }

    /// Completed barrier rounds since creation — the number of
    /// contention-free communication phases the scheduler has sequenced.
    pub fn rounds(&self) -> u64 {
        self.state.lock().generation
    }
}

fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn four_nodes_three_phases_match_figure_10a() {
        let s = Schedule::new(4);
        assert_eq!(s.phases(), 3);
        // Phase 1: 0→1, 1→2, 2→3, 3→0.
        assert_eq!(s.target(NodeId(0), 1), NodeId(1));
        assert_eq!(s.target(NodeId(3), 1), NodeId(0));
        // Phase 2: 0→2, 1→3, 2→0, 3→1.
        assert_eq!(s.target(NodeId(0), 2), NodeId(2));
        assert_eq!(s.target(NodeId(2), 2), NodeId(0));
        // Sources mirror targets.
        assert_eq!(s.source(NodeId(1), 1), NodeId(0));
        assert_eq!(s.source(NodeId(0), 2), NodeId(2));
    }

    #[test]
    fn schedule_covers_every_pair_exactly_once() {
        for n in 2..10u16 {
            let s = Schedule::new(n);
            let mut seen = std::collections::HashSet::new();
            for phase in 1..n {
                for node in 0..n {
                    let t = s.target(NodeId(node), phase);
                    assert_ne!(t.0, node, "self-send in schedule");
                    assert!(seen.insert((node, t.0)), "pair sent twice");
                }
            }
            assert_eq!(seen.len(), usize::from(n) * usize::from(n - 1));
        }
    }

    #[test]
    fn each_phase_is_contention_free() {
        // Within a phase no two nodes share a target (a permutation).
        for n in 2..10u16 {
            let s = Schedule::new(n);
            for phase in 1..n {
                let targets: std::collections::HashSet<u16> =
                    (0..n).map(|i| s.target(NodeId(i), phase).0).collect();
                assert_eq!(targets.len(), usize::from(n));
            }
        }
    }

    #[test]
    #[should_panic(expected = "phase must be in")]
    fn phase_zero_rejected() {
        Schedule::new(4).target(NodeId(0), 0);
    }

    #[test]
    fn barrier_synchronizes_threads() {
        let sched = NetScheduler::with_latency(4, Duration::ZERO);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&sched);
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for round in 1..=10 {
                        c.fetch_add(1, Ordering::SeqCst);
                        s.sync();
                        // After each sync, all parties completed the round.
                        assert!(c.load(Ordering::SeqCst) >= round * 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        assert_eq!(sched.rounds(), 10);
    }

    #[test]
    fn leave_unblocks_waiters() {
        let sched = NetScheduler::with_latency(2, Duration::ZERO);
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || {
            s2.sync(); // would deadlock if peer never arrives
        });
        std::thread::sleep(Duration::from_millis(20));
        sched.leave();
        h.join().unwrap();
        assert_eq!(sched.parties(), 1);
    }

    #[test]
    fn sync_latency_is_charged() {
        let sched = NetScheduler::with_latency(1, Duration::from_millis(5));
        let start = std::time::Instant::now();
        sched.sync();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
