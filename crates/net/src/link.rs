//! Network data-link standards (Table 1 of the paper).

use std::fmt;
use std::time::Duration;

/// A network link standard with its theoretical bandwidth and latency.
///
/// These are the rows of Table 1. Bandwidth is in bytes per second of
/// *usable* link capacity; latency is the one-way propagation latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    name: &'static str,
    bytes_per_sec: f64,
    latency: Duration,
    year: u16,
}

impl LinkSpec {
    /// Gigabit Ethernet: 0.125 GB/s, 340 µs latency (1998).
    pub const GBE: LinkSpec = LinkSpec::new("GbE", 0.125e9, Duration::from_micros(340), 1998);
    /// InfiniBand 4×SDR: 1 GB/s, 5 µs latency (2003).
    pub const IB_4X_SDR: LinkSpec = LinkSpec::new("4xSDR", 1.0e9, Duration::from_micros(5), 2003);
    /// InfiniBand 4×DDR: 2 GB/s, 2.5 µs latency (2005).
    pub const IB_4X_DDR: LinkSpec = LinkSpec::new("4xDDR", 2.0e9, Duration::from_nanos(2500), 2005);
    /// InfiniBand 4×QDR: 4 GB/s, 1.3 µs latency (2007) — the paper's cluster.
    pub const IB_4X_QDR: LinkSpec = LinkSpec::new("4xQDR", 4.0e9, Duration::from_nanos(1300), 2007);
    /// InfiniBand 4×FDR: 6.8 GB/s, 0.7 µs latency (2011).
    pub const IB_4X_FDR: LinkSpec = LinkSpec::new("4xFDR", 6.8e9, Duration::from_nanos(700), 2011);
    /// InfiniBand 4×EDR: 12.1 GB/s, 0.5 µs latency (2014).
    pub const IB_4X_EDR: LinkSpec = LinkSpec::new("4xEDR", 12.1e9, Duration::from_nanos(500), 2014);

    /// All standards of Table 1 in introduction order.
    pub const TABLE1: [LinkSpec; 6] = [
        Self::GBE,
        Self::IB_4X_SDR,
        Self::IB_4X_DDR,
        Self::IB_4X_QDR,
        Self::IB_4X_FDR,
        Self::IB_4X_EDR,
    ];

    const fn new(name: &'static str, bytes_per_sec: f64, latency: Duration, year: u16) -> Self {
        Self {
            name,
            bytes_per_sec,
            latency,
            year,
        }
    }

    /// Create a custom link (e.g. for scaled-down testing).
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is not a positive finite number.
    pub fn custom(bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        Self::new("custom", bytes_per_sec, latency, 0)
    }

    /// Human-readable standard name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Usable bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Bandwidth in GB/s (as Table 1 reports it).
    pub fn gb_per_sec(&self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Year of introduction (0 for custom links).
    pub fn year(&self) -> u16 {
        self.year
    }

    /// Time on the wire for a message of `bytes` (excluding latency).
    pub fn wire_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Bandwidth ratio of `self` over `other`.
    pub fn speedup_over(&self, other: &LinkSpec) -> f64 {
        self.bytes_per_sec / other.bytes_per_sec
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.3} GB/s)", self.name, self.gb_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdr_is_32x_gbe() {
        // "InfiniBand 4×QDR offers 32× the bandwidth of Gigabit Ethernet."
        let ratio = LinkSpec::IB_4X_QDR.speedup_over(&LinkSpec::GBE);
        assert!((ratio - 32.0).abs() < 1e-9, "ratio was {ratio}");
    }

    #[test]
    fn table1_is_ordered_by_year() {
        let years: Vec<_> = LinkSpec::TABLE1.iter().map(|l| l.year()).collect();
        let mut sorted = years.clone();
        sorted.sort_unstable();
        assert_eq!(years, sorted);
    }

    #[test]
    fn wire_time_scales_with_size() {
        let l = LinkSpec::IB_4X_QDR;
        let t1 = l.wire_time(512 * 1024);
        let t2 = l.wire_time(1024 * 1024);
        assert!((t2.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 1e-9);
        // 512 KB at 4 GB/s is ~131 µs.
        assert!((t1.as_secs_f64() - 131.072e-6).abs() < 1e-9);
    }

    #[test]
    fn latencies_match_table1() {
        assert_eq!(LinkSpec::GBE.latency(), Duration::from_micros(340));
        assert_eq!(LinkSpec::IB_4X_QDR.latency(), Duration::from_nanos(1300));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn custom_rejects_zero_bandwidth() {
        LinkSpec::custom(0.0, Duration::ZERO);
    }

    #[test]
    fn display_contains_name_and_rate() {
        let s = format!("{}", LinkSpec::IB_4X_QDR);
        assert!(s.contains("4xQDR") && s.contains("4.000"));
    }
}
