//! The transport abstraction the communication multiplexer runs on.
//!
//! The engine's exchange layer is transport-agnostic: a multiplexer only
//! ever `send`s whole wire messages to a peer node and `try_recv`s whatever
//! arrived, regardless of whether the bytes move through the calibrated
//! in-process fabric models ([`RdmaEndpoint`], [`TcpEndpoint`]) or through
//! genuine OS sockets between processes
//! ([`SocketTransport`](crate::socket::SocketTransport)).
//!
//! Real transports can additionally observe *peer death* — a TCP reset or
//! EOF from a crashed node — which the simulated fabric never produces.
//! That is surfaced as [`TransportEvent::PeerGone`] so the exchange layer
//! can abort in-flight queries instead of waiting forever for last-markers
//! that will never come.

use bytes::Bytes;

use crate::fabric::NodeId;
use crate::rdma::RdmaEndpoint;
use crate::tcp::TcpEndpoint;

/// Something a transport produced while polling.
#[derive(Debug)]
pub enum TransportEvent {
    /// A whole wire message arrived from `src`.
    Message {
        /// Sending node.
        src: NodeId,
        /// Full message bytes (header + tuples).
        payload: Bytes,
    },
    /// The connection to `peer` is gone (process died, socket reset).
    /// Simulated transports never emit this.
    PeerGone {
        /// The node whose connection broke.
        peer: NodeId,
        /// Human-readable cause (for logs and error messages).
        reason: String,
    },
}

/// A node's connection to the rest of the cluster, as seen by its
/// multiplexer: fire-and-forget message sends plus non-blocking receive
/// polling.
pub trait Transport: Send {
    /// Queue `payload` for delivery to `dst`. Must not block on the peer;
    /// delivery failures surface later as [`TransportEvent::PeerGone`].
    fn send(&self, dst: NodeId, payload: Bytes);

    /// Poll for the next received message or connectivity event; `None`
    /// when nothing is pending.
    fn try_recv(&self) -> Option<TransportEvent>;
}

impl Transport for RdmaEndpoint {
    fn send(&self, dst: NodeId, payload: Bytes) {
        self.post_send_bytes(dst, payload);
    }

    fn try_recv(&self) -> Option<TransportEvent> {
        self.poll_completion().map(|c| TransportEvent::Message {
            src: c.src,
            payload: c.payload,
        })
    }
}

impl Transport for TcpEndpoint {
    fn send(&self, dst: NodeId, payload: Bytes) {
        TcpEndpoint::send(self, dst, &payload);
    }

    fn try_recv(&self) -> Option<TransportEvent> {
        self.recv_timeout(std::time::Duration::ZERO)
            .map(|(src, data)| TransportEvent::Message {
                src,
                payload: Bytes::from(data),
            })
    }
}
