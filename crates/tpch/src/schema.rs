//! TPC-H relation schemas.

use hsqp_storage::{DataType, Field, Schema};

/// Schema of the `part` relation.
pub fn part() -> Schema {
    Schema::new(vec![
        Field::new("p_partkey", DataType::Int64),
        Field::new("p_name", DataType::Utf8),
        Field::new("p_mfgr", DataType::Utf8),
        Field::new("p_brand", DataType::Utf8),
        Field::new("p_type", DataType::Utf8),
        Field::new("p_size", DataType::Int64),
        Field::new("p_container", DataType::Utf8),
        Field::new("p_retailprice", DataType::Decimal),
        Field::new("p_comment", DataType::Utf8),
    ])
}

/// Schema of the `supplier` relation.
pub fn supplier() -> Schema {
    Schema::new(vec![
        Field::new("s_suppkey", DataType::Int64),
        Field::new("s_name", DataType::Utf8),
        Field::new("s_address", DataType::Utf8),
        Field::new("s_nationkey", DataType::Int64),
        Field::new("s_phone", DataType::Utf8),
        Field::new("s_acctbal", DataType::Decimal),
        Field::new("s_comment", DataType::Utf8),
    ])
}

/// Schema of the `partsupp` relation.
pub fn partsupp() -> Schema {
    Schema::new(vec![
        Field::new("ps_partkey", DataType::Int64),
        Field::new("ps_suppkey", DataType::Int64),
        Field::new("ps_availqty", DataType::Int64),
        Field::new("ps_supplycost", DataType::Decimal),
        Field::new("ps_comment", DataType::Utf8),
    ])
}

/// Schema of the `customer` relation.
pub fn customer() -> Schema {
    Schema::new(vec![
        Field::new("c_custkey", DataType::Int64),
        Field::new("c_name", DataType::Utf8),
        Field::new("c_address", DataType::Utf8),
        Field::new("c_nationkey", DataType::Int64),
        Field::new("c_phone", DataType::Utf8),
        Field::new("c_acctbal", DataType::Decimal),
        Field::new("c_mktsegment", DataType::Utf8),
        Field::new("c_comment", DataType::Utf8),
    ])
}

/// Schema of the `orders` relation.
pub fn orders() -> Schema {
    Schema::new(vec![
        Field::new("o_orderkey", DataType::Int64),
        Field::new("o_custkey", DataType::Int64),
        Field::new("o_orderstatus", DataType::Utf8),
        Field::new("o_totalprice", DataType::Decimal),
        Field::new("o_orderdate", DataType::Date),
        Field::new("o_orderpriority", DataType::Utf8),
        Field::new("o_clerk", DataType::Utf8),
        Field::new("o_shippriority", DataType::Int64),
        Field::new("o_comment", DataType::Utf8),
    ])
}

/// Schema of the `lineitem` relation.
pub fn lineitem() -> Schema {
    Schema::new(vec![
        Field::new("l_orderkey", DataType::Int64),
        Field::new("l_partkey", DataType::Int64),
        Field::new("l_suppkey", DataType::Int64),
        Field::new("l_linenumber", DataType::Int64),
        Field::new("l_quantity", DataType::Decimal),
        Field::new("l_extendedprice", DataType::Decimal),
        Field::new("l_discount", DataType::Decimal),
        Field::new("l_tax", DataType::Decimal),
        Field::new("l_returnflag", DataType::Utf8),
        Field::new("l_linestatus", DataType::Utf8),
        Field::new("l_shipdate", DataType::Date),
        Field::new("l_commitdate", DataType::Date),
        Field::new("l_receiptdate", DataType::Date),
        Field::new("l_shipinstruct", DataType::Utf8),
        Field::new("l_shipmode", DataType::Utf8),
        Field::new("l_comment", DataType::Utf8),
    ])
}

/// Schema of the `nation` relation.
pub fn nation() -> Schema {
    Schema::new(vec![
        Field::new("n_nationkey", DataType::Int64),
        Field::new("n_name", DataType::Utf8),
        Field::new("n_regionkey", DataType::Int64),
        Field::new("n_comment", DataType::Utf8),
    ])
}

/// Schema of the `region` relation.
pub fn region() -> Schema {
    Schema::new(vec![
        Field::new("r_regionkey", DataType::Int64),
        Field::new("r_name", DataType::Utf8),
        Field::new("r_comment", DataType::Utf8),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_has_sixteen_columns() {
        assert_eq!(lineitem().len(), 16);
        assert_eq!(lineitem().index_of("l_shipdate"), 10);
    }

    #[test]
    fn money_columns_are_decimal() {
        assert_eq!(orders().field("o_totalprice").dtype, DataType::Decimal);
        assert_eq!(part().field("p_retailprice").dtype, DataType::Decimal);
    }

    #[test]
    fn all_schemas_resolve() {
        for s in [
            part(),
            supplier(),
            partsupp(),
            customer(),
            orders(),
            lineitem(),
            nation(),
            region(),
        ] {
            assert!(!s.is_empty());
        }
    }
}
