//! Word pools and text synthesis for TPC-H string columns.

use rand::rngs::StdRng;
use rand::Rng;

/// The 25 nations with their region assignment (spec Appendix).
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The five regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Part-name colors (spec P_NAME picks five of these).
pub const COLORS: [&str; 30] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
];

/// P_TYPE syllable 1.
pub const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// P_TYPE syllable 2.
pub const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// P_TYPE syllable 3.
pub const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// P_CONTAINER syllable 1.
pub const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
/// P_CONTAINER syllable 2.
pub const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Customer market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Lineitem ship instructions.
pub const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Lineitem ship modes.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Filler nouns for comment text.
const NOUNS: [&str; 16] = [
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "theodolites",
    "pinto",
    "beans",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
];

/// Filler verbs/adverbs for comment text.
const VERBS: [&str; 14] = [
    "sleep",
    "wake",
    "haggle",
    "nag",
    "cajole",
    "boost",
    "detect",
    "integrate",
    "solve",
    "affix",
    "engage",
    "doze",
    "run",
    "lose",
];

/// Filler adjectives for comment text.
const ADJECTIVES: [&str; 12] = [
    "quickly",
    "slowly",
    "carefully",
    "blithely",
    "furiously",
    "express",
    "final",
    "ironic",
    "pending",
    "regular",
    "silent",
    "bold",
];

/// Generate a nonsense comment of roughly `words` words.
pub fn comment(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::with_capacity(words * 8);
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        let w = match i % 3 {
            0 => ADJECTIVES[rng.random_range(0..ADJECTIVES.len())],
            1 => NOUNS[rng.random_range(0..NOUNS.len())],
            _ => VERBS[rng.random_range(0..VERBS.len())],
        };
        out.push_str(w);
    }
    out
}

/// Order comment; ~1 % contain the `special … requests` pattern query 13
/// filters out.
pub fn order_comment(rng: &mut StdRng) -> String {
    let w = rng.random_range(4..9);
    let mut c = comment(rng, w);
    if rng.random_range(0..100) == 0 {
        c.push_str(" special packages requests");
    }
    c
}

/// Supplier comment; ~0.05 % contain the `Customer … Complaints` pattern
/// query 16 excludes.
pub fn supplier_comment(rng: &mut StdRng) -> String {
    let w = rng.random_range(4..9);
    let mut c = comment(rng, w);
    if rng.random_range(0..2000) == 0 {
        c.push_str(" Customer stuff Complaints");
    }
    c
}

/// A part name: five space-separated colors (spec 4.2.3).
pub fn part_name(rng: &mut StdRng) -> String {
    let mut picks = Vec::with_capacity(5);
    while picks.len() < 5 {
        let c = COLORS[rng.random_range(0..COLORS.len())];
        if !picks.contains(&c) {
            picks.push(c);
        }
    }
    picks.join(" ")
}

/// A phone number with the nation-derived country code (spec 4.2.2.9).
pub fn phone(rng: &mut StdRng, nationkey: i64) -> String {
    format!(
        "{}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.random_range(100..1000),
        rng.random_range(100..1000),
        rng.random_range(1000..10_000)
    )
}

/// A random street-ish address.
pub fn address(rng: &mut StdRng) -> String {
    let len = rng.random_range(10..25);
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        let c = b"abcdefghijklmnopqrstuvwxyz0123456789 ,"[rng.random_range(0..38)];
        s.push(c as char);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nations_and_regions_have_spec_cardinality() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        for (_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
    }

    #[test]
    fn part_name_has_five_distinct_colors() {
        let mut rng = StdRng::seed_from_u64(1);
        let name = part_name(&mut rng);
        let words: Vec<_> = name.split(' ').collect();
        assert_eq!(words.len(), 5);
        let mut unique = words.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn phone_embeds_country_code() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = phone(&mut rng, 7);
        assert!(p.starts_with("17-"), "{p}");
        assert_eq!(p.len(), "17-123-456-7890".len());
    }

    #[test]
    fn comments_are_deterministic_per_seed() {
        let a = comment(&mut StdRng::seed_from_u64(3), 6);
        let b = comment(&mut StdRng::seed_from_u64(3), 6);
        assert_eq!(a, b);
        assert_eq!(a.split(' ').count(), 6);
    }

    #[test]
    fn q13_pattern_appears_sometimes() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..5000)
            .filter(|_| order_comment(&mut rng).contains("special"))
            .count();
        assert!(hits > 10 && hits < 200, "hits={hits}");
    }
}
