//! The generator itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hsqp_storage::{date_from_ymd, Column, StringColumn, Table};

use crate::schema;
use crate::text;

/// The eight TPC-H relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchTable {
    /// 5 rows.
    Region,
    /// 25 rows.
    Nation,
    /// 10 000 · SF rows.
    Supplier,
    /// 150 000 · SF rows.
    Customer,
    /// 200 000 · SF rows.
    Part,
    /// 800 000 · SF rows (four suppliers per part).
    Partsupp,
    /// 1 500 000 · SF rows (ten per customer).
    Orders,
    /// ≈ 6 000 000 · SF rows (one to seven per order).
    Lineitem,
}

impl TpchTable {
    /// All tables in dependency order.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::Partsupp,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    /// Lower-case relation name.
    pub fn name(self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::Partsupp => "partsupp",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    /// Table by name.
    pub fn from_name(name: &str) -> Option<TpchTable> {
        Self::ALL.into_iter().find(|t| t.name() == name)
    }

    /// Index into [`TpchDb`]'s table vector.
    pub fn idx(self) -> usize {
        Self::ALL.iter().position(|&t| t == self).expect("in ALL")
    }
}

/// Spec retail price for a part, in cents (TPC-H 4.2.3). Queries 17 and 19
/// rely on `l_extendedprice` being correlated with this.
pub fn retail_price_cents(partkey: i64) -> i64 {
    90_000 + (partkey / 10) % 20_001 + 100 * (partkey % 1000)
}

/// The spec's partsupp supplier assignment (TPC-H 4.2.3): supplier `j ∈
/// [0, 4)` of part `p` given `s` suppliers total. Guarantees that lineitem's
/// `(partkey, suppkey)` pairs exist in partsupp.
pub fn partsupp_supplier(partkey: i64, j: i64, suppliers: i64) -> i64 {
    (partkey + j * (suppliers / 4 + (partkey - 1) / suppliers)) % suppliers + 1
}

/// TPC-H's "current date" used to derive line status (1995-06-17).
pub fn current_date() -> i64 {
    date_from_ymd(1995, 6, 17)
}

/// A generated TPC-H database.
#[derive(Debug, Clone)]
pub struct TpchDb {
    sf: f64,
    tables: Vec<Table>,
}

impl TpchDb {
    /// Generate at scale factor `sf` with the default seed.
    pub fn generate(sf: f64) -> Self {
        Self::generate_seeded(sf, 42)
    }

    /// Generate at scale factor `sf` with an explicit seed.
    ///
    /// # Panics
    /// Panics if `sf` is not positive.
    pub fn generate_seeded(sf: f64, seed: u64) -> Self {
        assert!(sf > 0.0 && sf.is_finite(), "scale factor must be positive");
        let suppliers = ((10_000.0 * sf) as i64).max(4);
        let customers = ((150_000.0 * sf) as i64).max(10);
        let parts = ((200_000.0 * sf) as i64).max(20);
        let orders = customers * 10;

        let mut rng = StdRng::seed_from_u64(seed);
        let part = gen_part(&mut rng, parts);
        let supplier = gen_supplier(&mut rng, suppliers);
        let partsupp = gen_partsupp(&mut rng, parts, suppliers);
        let customer = gen_customer(&mut rng, customers);
        let (orders, lineitem) = gen_orders_lineitem(&mut rng, orders, customers, parts, suppliers);

        let tables = vec![
            gen_region(),
            gen_nation(&mut rng),
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        ];
        Self { sf, tables }
    }

    /// The scale factor this database was generated at.
    pub fn scale_factor(&self) -> f64 {
        self.sf
    }

    /// Access one relation.
    pub fn table(&self, t: TpchTable) -> &Table {
        &self.tables[t.idx()]
    }

    /// Total size of all relations in bytes.
    pub fn byte_size(&self) -> usize {
        self.tables.iter().map(Table::byte_size).sum()
    }

    /// Take the relations out (placement code consumes them).
    pub fn into_tables(self) -> Vec<(TpchTable, Table)> {
        TpchTable::ALL.into_iter().zip(self.tables).collect()
    }
}

fn gen_region() -> Table {
    let keys = Column::I64((0..5).collect(), None);
    let names: StringColumn = text::REGIONS.into_iter().collect();
    let comments: StringColumn = (0..5).map(|_| "region comment").collect();
    Table::new(
        schema::region(),
        vec![keys, Column::Str(names, None), Column::Str(comments, None)],
    )
}

fn gen_nation(rng: &mut StdRng) -> Table {
    let keys = Column::I64((0..25).collect(), None);
    let names: StringColumn = text::NATIONS.iter().map(|&(n, _)| n).collect();
    let regions = Column::I64(text::NATIONS.iter().map(|&(_, r)| r).collect(), None);
    let comments: StringColumn = (0..25).map(|_| text::comment(rng, 5)).collect();
    Table::new(
        schema::nation(),
        vec![
            keys,
            Column::Str(names, None),
            regions,
            Column::Str(comments, None),
        ],
    )
}

fn gen_supplier(rng: &mut StdRng, n: i64) -> Table {
    let mut names = StringColumn::with_capacity(n as usize, 18);
    let mut addresses = StringColumn::with_capacity(n as usize, 18);
    let mut nationkeys = Vec::with_capacity(n as usize);
    let mut phones = StringColumn::with_capacity(n as usize, 15);
    let mut acctbals = Vec::with_capacity(n as usize);
    let mut comments = StringColumn::with_capacity(n as usize, 40);
    for k in 1..=n {
        names.push(&format!("Supplier#{k:09}"));
        addresses.push(&text::address(rng));
        let nation = rng.random_range(0..25);
        nationkeys.push(nation);
        phones.push(&text::phone(rng, nation));
        acctbals.push(rng.random_range(-99_999..=999_999));
        comments.push(&text::supplier_comment(rng));
    }
    Table::new(
        schema::supplier(),
        vec![
            Column::I64((1..=n).collect(), None),
            Column::Str(names, None),
            Column::Str(addresses, None),
            Column::I64(nationkeys, None),
            Column::Str(phones, None),
            Column::I64(acctbals, None),
            Column::Str(comments, None),
        ],
    )
}

fn gen_customer(rng: &mut StdRng, n: i64) -> Table {
    let mut names = StringColumn::with_capacity(n as usize, 18);
    let mut addresses = StringColumn::with_capacity(n as usize, 18);
    let mut nationkeys = Vec::with_capacity(n as usize);
    let mut phones = StringColumn::with_capacity(n as usize, 15);
    let mut acctbals = Vec::with_capacity(n as usize);
    let mut segments = StringColumn::with_capacity(n as usize, 10);
    let mut comments = StringColumn::with_capacity(n as usize, 40);
    for k in 1..=n {
        names.push(&format!("Customer#{k:09}"));
        addresses.push(&text::address(rng));
        let nation = rng.random_range(0..25);
        nationkeys.push(nation);
        phones.push(&text::phone(rng, nation));
        acctbals.push(rng.random_range(-99_999..=999_999));
        segments.push(text::SEGMENTS[rng.random_range(0..text::SEGMENTS.len())]);
        let w = rng.random_range(4..9);
        comments.push(&text::comment(rng, w));
    }
    Table::new(
        schema::customer(),
        vec![
            Column::I64((1..=n).collect(), None),
            Column::Str(names, None),
            Column::Str(addresses, None),
            Column::I64(nationkeys, None),
            Column::Str(phones, None),
            Column::I64(acctbals, None),
            Column::Str(segments, None),
            Column::Str(comments, None),
        ],
    )
}

fn gen_part(rng: &mut StdRng, n: i64) -> Table {
    let mut names = StringColumn::with_capacity(n as usize, 32);
    let mut mfgrs = StringColumn::with_capacity(n as usize, 14);
    let mut brands = StringColumn::with_capacity(n as usize, 8);
    let mut types = StringColumn::with_capacity(n as usize, 22);
    let mut sizes = Vec::with_capacity(n as usize);
    let mut containers = StringColumn::with_capacity(n as usize, 9);
    let mut prices = Vec::with_capacity(n as usize);
    let mut comments = StringColumn::with_capacity(n as usize, 20);
    for k in 1..=n {
        names.push(&text::part_name(rng));
        let m = rng.random_range(1..=5);
        mfgrs.push(&format!("Manufacturer#{m}"));
        brands.push(&format!("Brand#{m}{}", rng.random_range(1..=5)));
        let ty = format!(
            "{} {} {}",
            text::TYPE_S1[rng.random_range(0..text::TYPE_S1.len())],
            text::TYPE_S2[rng.random_range(0..text::TYPE_S2.len())],
            text::TYPE_S3[rng.random_range(0..text::TYPE_S3.len())],
        );
        types.push(&ty);
        sizes.push(rng.random_range(1..=50));
        containers.push(&format!(
            "{} {}",
            text::CONTAINER_S1[rng.random_range(0..text::CONTAINER_S1.len())],
            text::CONTAINER_S2[rng.random_range(0..text::CONTAINER_S2.len())],
        ));
        prices.push(retail_price_cents(k));
        let w = rng.random_range(2..5);
        comments.push(&text::comment(rng, w));
    }
    Table::new(
        schema::part(),
        vec![
            Column::I64((1..=n).collect(), None),
            Column::Str(names, None),
            Column::Str(mfgrs, None),
            Column::Str(brands, None),
            Column::Str(types, None),
            Column::I64(sizes, None),
            Column::Str(containers, None),
            Column::I64(prices, None),
            Column::Str(comments, None),
        ],
    )
}

fn gen_partsupp(rng: &mut StdRng, parts: i64, suppliers: i64) -> Table {
    let per_part = 4.min(suppliers);
    let rows = (parts * per_part) as usize;
    let mut partkeys = Vec::with_capacity(rows);
    let mut suppkeys = Vec::with_capacity(rows);
    let mut qtys = Vec::with_capacity(rows);
    let mut costs = Vec::with_capacity(rows);
    let mut comments = StringColumn::with_capacity(rows, 30);
    for p in 1..=parts {
        for j in 0..per_part {
            partkeys.push(p);
            suppkeys.push(partsupp_supplier(p, j, suppliers));
            qtys.push(rng.random_range(1..=9999));
            costs.push(rng.random_range(100..=100_000));
            let w = rng.random_range(3..7);
            comments.push(&text::comment(rng, w));
        }
    }
    Table::new(
        schema::partsupp(),
        vec![
            Column::I64(partkeys, None),
            Column::I64(suppkeys, None),
            Column::I64(qtys, None),
            Column::I64(costs, None),
            Column::Str(comments, None),
        ],
    )
}

#[allow(clippy::too_many_lines)]
fn gen_orders_lineitem(
    rng: &mut StdRng,
    orders: i64,
    customers: i64,
    parts: i64,
    suppliers: i64,
) -> (Table, Table) {
    let start_date = date_from_ymd(1992, 1, 1);
    let end_date = date_from_ymd(1998, 12, 31) - 151;
    let today = current_date();
    let per_part = 4.min(suppliers);

    let o_rows = orders as usize;
    let mut o_orderkey = Vec::with_capacity(o_rows);
    let mut o_custkey = Vec::with_capacity(o_rows);
    let mut o_status = StringColumn::with_capacity(o_rows, 1);
    let mut o_totalprice = Vec::with_capacity(o_rows);
    let mut o_orderdate = Vec::with_capacity(o_rows);
    let mut o_priority = StringColumn::with_capacity(o_rows, 10);
    let mut o_clerk = StringColumn::with_capacity(o_rows, 15);
    let mut o_shipprio = Vec::with_capacity(o_rows);
    let mut o_comment = StringColumn::with_capacity(o_rows, 40);

    let l_rows = o_rows * 4;
    let mut l_orderkey = Vec::with_capacity(l_rows);
    let mut l_partkey = Vec::with_capacity(l_rows);
    let mut l_suppkey = Vec::with_capacity(l_rows);
    let mut l_linenumber = Vec::with_capacity(l_rows);
    let mut l_quantity = Vec::with_capacity(l_rows);
    let mut l_extprice = Vec::with_capacity(l_rows);
    let mut l_discount = Vec::with_capacity(l_rows);
    let mut l_tax = Vec::with_capacity(l_rows);
    let mut l_returnflag = StringColumn::with_capacity(l_rows, 1);
    let mut l_linestatus = StringColumn::with_capacity(l_rows, 1);
    let mut l_shipdate = Vec::with_capacity(l_rows);
    let mut l_commitdate = Vec::with_capacity(l_rows);
    let mut l_receiptdate = Vec::with_capacity(l_rows);
    let mut l_shipinstruct = StringColumn::with_capacity(l_rows, 15);
    let mut l_shipmode = StringColumn::with_capacity(l_rows, 5);
    let mut l_comment = StringColumn::with_capacity(l_rows, 20);

    for ok in 1..=orders {
        // Spec: only two out of three customers ever place orders; the
        // remainder matter for queries 13 and 22.
        let ck = loop {
            let c = rng.random_range(1..=customers);
            if customers < 3 || c % 3 != 0 {
                break c;
            }
        };
        let odate = rng.random_range(start_date..=end_date);
        let lines = rng.random_range(1..=7);
        let mut total = 0i64;
        let mut open = 0u32;
        let mut finished = 0u32;
        for line in 1..=lines {
            let pk = rng.random_range(1..=parts);
            let sk = partsupp_supplier(pk, rng.random_range(0..per_part), suppliers);
            let qty = rng.random_range(1..=50);
            let ext = qty * retail_price_cents(pk);
            let disc = rng.random_range(0..=10); // 0.00 – 0.10 scaled ×100
            let tax = rng.random_range(0..=8);
            let ship = odate + rng.random_range(1..=121);
            let commit = odate + rng.random_range(30..=90);
            let receipt = ship + rng.random_range(1..=30);
            let status = if ship > today { "O" } else { "F" };
            if status == "O" {
                open += 1;
            } else {
                finished += 1;
            }
            let rflag = if receipt <= today {
                if rng.random_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            l_orderkey.push(ok);
            l_partkey.push(pk);
            l_suppkey.push(sk);
            l_linenumber.push(line);
            l_quantity.push(qty * 100); // decimal scale 100
            l_extprice.push(ext);
            l_discount.push(disc);
            l_tax.push(tax);
            l_returnflag.push(rflag);
            l_linestatus.push(status);
            l_shipdate.push(ship);
            l_commitdate.push(commit);
            l_receiptdate.push(receipt);
            l_shipinstruct
                .push(text::SHIP_INSTRUCT[rng.random_range(0..text::SHIP_INSTRUCT.len())]);
            l_shipmode.push(text::SHIP_MODES[rng.random_range(0..text::SHIP_MODES.len())]);
            {
                let w = rng.random_range(2..5);
                l_comment.push(&text::comment(rng, w));
            }
            total += ext * (100 - disc) / 100 * (100 + tax) / 100;
        }
        o_orderkey.push(ok);
        o_custkey.push(ck);
        o_status.push(if finished == 0 {
            "O"
        } else if open == 0 {
            "F"
        } else {
            "P"
        });
        o_totalprice.push(total);
        o_orderdate.push(odate);
        o_priority.push(text::PRIORITIES[rng.random_range(0..text::PRIORITIES.len())]);
        o_clerk.push(&format!("Clerk#{:09}", rng.random_range(1..=1000)));
        o_shipprio.push(0);
        o_comment.push(&text::order_comment(rng));
    }

    let orders_table = Table::new(
        schema::orders(),
        vec![
            Column::I64(o_orderkey, None),
            Column::I64(o_custkey, None),
            Column::Str(o_status, None),
            Column::I64(o_totalprice, None),
            Column::I64(o_orderdate, None),
            Column::Str(o_priority, None),
            Column::Str(o_clerk, None),
            Column::I64(o_shipprio, None),
            Column::Str(o_comment, None),
        ],
    );
    let lineitem_table = Table::new(
        schema::lineitem(),
        vec![
            Column::I64(l_orderkey, None),
            Column::I64(l_partkey, None),
            Column::I64(l_suppkey, None),
            Column::I64(l_linenumber, None),
            Column::I64(l_quantity, None),
            Column::I64(l_extprice, None),
            Column::I64(l_discount, None),
            Column::I64(l_tax, None),
            Column::Str(l_returnflag, None),
            Column::Str(l_linestatus, None),
            Column::I64(l_shipdate, None),
            Column::I64(l_commitdate, None),
            Column::I64(l_receiptdate, None),
            Column::Str(l_shipinstruct, None),
            Column::Str(l_shipmode, None),
            Column::Str(l_comment, None),
        ],
    );
    (orders_table, lineitem_table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny() -> TpchDb {
        TpchDb::generate(0.001)
    }

    #[test]
    fn cardinalities_scale() {
        let db = tiny();
        assert_eq!(db.table(TpchTable::Region).rows(), 5);
        assert_eq!(db.table(TpchTable::Nation).rows(), 25);
        assert_eq!(db.table(TpchTable::Supplier).rows(), 10);
        assert_eq!(db.table(TpchTable::Customer).rows(), 150);
        assert_eq!(db.table(TpchTable::Part).rows(), 200);
        assert_eq!(db.table(TpchTable::Partsupp).rows(), 800);
        assert_eq!(db.table(TpchTable::Orders).rows(), 1500);
        let li = db.table(TpchTable::Lineitem).rows();
        assert!((3000..12_000).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDb::generate_seeded(0.001, 7);
        let b = TpchDb::generate_seeded(0.001, 7);
        assert_eq!(
            a.table(TpchTable::Lineitem).rows(),
            b.table(TpchTable::Lineitem).rows()
        );
        assert_eq!(
            a.table(TpchTable::Orders).column_by_name("o_totalprice"),
            b.table(TpchTable::Orders).column_by_name("o_totalprice")
        );
    }

    #[test]
    fn lineitem_part_supp_pairs_exist_in_partsupp() {
        let db = tiny();
        let ps = db.table(TpchTable::Partsupp);
        let pairs: HashSet<(i64, i64)> = ps
            .column_by_name("ps_partkey")
            .i64_values()
            .iter()
            .zip(ps.column_by_name("ps_suppkey").i64_values())
            .map(|(&p, &s)| (p, s))
            .collect();
        let li = db.table(TpchTable::Lineitem);
        for (&p, &s) in li
            .column_by_name("l_partkey")
            .i64_values()
            .iter()
            .zip(li.column_by_name("l_suppkey").i64_values())
        {
            assert!(pairs.contains(&(p, s)), "({p},{s}) missing from partsupp");
        }
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let db = tiny();
        let customers = db.table(TpchTable::Customer).rows() as i64;
        for &c in db
            .table(TpchTable::Orders)
            .column_by_name("o_custkey")
            .i64_values()
        {
            assert!((1..=customers).contains(&c));
        }
        for &nk in db
            .table(TpchTable::Supplier)
            .column_by_name("s_nationkey")
            .i64_values()
        {
            assert!((0..25).contains(&nk));
        }
    }

    #[test]
    fn one_third_of_customers_have_no_orders() {
        let db = TpchDb::generate(0.01);
        let with_orders: HashSet<i64> = db
            .table(TpchTable::Orders)
            .column_by_name("o_custkey")
            .i64_values()
            .iter()
            .copied()
            .collect();
        let total = db.table(TpchTable::Customer).rows();
        let never = (1..=total as i64)
            .filter(|k| !with_orders.contains(k))
            .count();
        // Customers with custkey % 3 == 0 never order → at least ~1/3.
        assert!(never * 3 >= total, "only {never} of {total} orderless");
    }

    #[test]
    fn extendedprice_follows_retail_price_formula() {
        let db = tiny();
        let li = db.table(TpchTable::Lineitem);
        let qty = li.column_by_name("l_quantity").i64_values();
        let ext = li.column_by_name("l_extendedprice").i64_values();
        let pk = li.column_by_name("l_partkey").i64_values();
        for i in 0..li.rows() {
            assert_eq!(ext[i], qty[i] / 100 * retail_price_cents(pk[i]));
        }
    }

    #[test]
    fn dates_are_consistent() {
        let db = tiny();
        let li = db.table(TpchTable::Lineitem);
        let ship = li.column_by_name("l_shipdate").i64_values();
        let receipt = li.column_by_name("l_receiptdate").i64_values();
        for i in 0..li.rows() {
            assert!(receipt[i] > ship[i]);
        }
        let o = db.table(TpchTable::Orders);
        let lo = date_from_ymd(1992, 1, 1);
        let hi = date_from_ymd(1998, 12, 31);
        for &d in o.column_by_name("o_orderdate").i64_values() {
            assert!((lo..=hi).contains(&d));
        }
    }

    #[test]
    fn order_status_reflects_line_status() {
        let db = tiny();
        let o = db.table(TpchTable::Orders);
        let li = db.table(TpchTable::Lineitem);
        let status = o.column_by_name("o_orderstatus").str_values();
        let l_ok = li.column_by_name("l_orderkey").i64_values();
        let l_st = li.column_by_name("l_linestatus").str_values();
        let mut per_order: std::collections::HashMap<i64, (u32, u32)> = Default::default();
        for (i, &ok) in l_ok.iter().enumerate() {
            let e = per_order.entry(ok).or_default();
            if l_st.get(i) == "O" {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let keys = o.column_by_name("o_orderkey").i64_values();
        for i in 0..o.rows() {
            let (open, fin) = per_order[&keys[i]];
            let expect = if fin == 0 {
                "O"
            } else if open == 0 {
                "F"
            } else {
                "P"
            };
            assert_eq!(status.get(i), expect);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_factor_rejected() {
        TpchDb::generate(0.0);
    }

    #[test]
    fn partsupp_supplier_formula_stays_in_range() {
        for p in 1..200 {
            for j in 0..4 {
                let s = partsupp_supplier(p, j, 10);
                assert!((1..=10).contains(&s));
            }
        }
    }

    #[test]
    fn table_lookup_by_name() {
        assert_eq!(TpchTable::from_name("lineitem"), Some(TpchTable::Lineitem));
        assert_eq!(TpchTable::from_name("nope"), None);
        assert_eq!(TpchTable::Lineitem.idx(), 7);
    }
}
