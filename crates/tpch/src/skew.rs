//! Zipf-distributed workloads for the skew experiments (§3.1).
//!
//! The paper argues that classic exchange operators with `n·t` parallel
//! units are far more vulnerable to attribute-value skew than hybrid
//! parallelism with `n` units: a Zipf factor of z = 0.84 "already more than
//! doubles the input for the overloaded parallel unit" at 240 units, but
//! adds "a mere 2.8 %" at 6 units. [`ZipfGenerator`] produces such keys and
//! [`imbalance`] measures the resulting overload factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples integers from `[0, n)` with Zipf-distributed frequency:
/// P(k) ∝ 1 / (k+1)^z.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    cdf: Vec<f64>,
}

impl ZipfGenerator {
    /// Generator over `n` distinct values with exponent `z`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `z` is negative/non-finite.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "need at least one value");
        assert!(z.is_finite() && z >= 0.0, "zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of distinct values.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw `count` values with a fresh RNG seeded by `seed`.
    pub fn sample_many(&self, count: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.sample(&mut rng)).collect()
    }
}

/// Given hash-partitioned key assignments, compute the overload factor of
/// the busiest of `units` parallel units: `max_load / fair_share`. An even
/// distribution yields 1.0; the paper's Zipf 0.84 data set yields >2 at 240
/// units but ~1.03 at 6 units.
pub fn imbalance(keys: &[usize], units: usize) -> f64 {
    assert!(units > 0, "need at least one parallel unit");
    if keys.is_empty() {
        return 1.0;
    }
    let mut loads = vec![0usize; units];
    for &k in keys {
        loads[hsqp_storage::placement::crc32_i64(k as i64) as usize % units] += 1;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    let fair = keys.len() as f64 / units as f64;
    max / fair
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_z_is_zero() {
        let g = ZipfGenerator::new(100, 0.0);
        let samples = g.sample_many(100_000, 1);
        let mut counts = vec![0usize; 100];
        for s in samples {
            counts[s] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "min={min} max={max}");
    }

    #[test]
    fn skew_concentrates_on_small_keys() {
        let g = ZipfGenerator::new(1000, 1.0);
        let samples = g.sample_many(50_000, 2);
        let zero_share = samples.iter().filter(|&&s| s == 0).count() as f64 / 50_000.0;
        // With z=1 over 1000 values, value 0 gets ~1/H(1000) ≈ 13 %.
        assert!(zero_share > 0.08, "share={zero_share}");
        let top10 = samples.iter().filter(|&&s| s < 10).count() as f64 / 50_000.0;
        assert!(top10 > 0.3, "top10={top10}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let g = ZipfGenerator::new(7, 0.84);
        for s in g.sample_many(10_000, 3) {
            assert!(s < 7);
        }
    }

    #[test]
    fn imbalance_grows_with_parallel_units() {
        // The paper's core skew argument: more parallel units → worse skew.
        let g = ZipfGenerator::new(100_000, 0.84);
        let keys = g.sample_many(200_000, 4);
        let few = imbalance(&keys, 6);
        let many = imbalance(&keys, 240);
        assert!(many > few, "few={few} many={many}");
        assert!(many > 1.5, "240 units should be badly imbalanced: {many}");
        assert!(few < 1.4, "6 units should be mildly imbalanced: {few}");
    }

    #[test]
    fn imbalance_of_uniform_keys_is_near_one() {
        let keys: Vec<usize> = (0..120_000).collect();
        let f = imbalance(&keys, 6);
        assert!(f < 1.05, "uniform imbalance {f}");
    }

    #[test]
    fn empty_keys_are_balanced() {
        assert_eq!(imbalance(&[], 8), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_domain_rejected() {
        ZipfGenerator::new(0, 1.0);
    }
}
