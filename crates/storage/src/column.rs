//! Typed columns.

use crate::bitmap::Bitmap;
use crate::types::{DataType, Value};

/// Byte-packed UTF-8 string column (offsets + contiguous data), the layout
/// HyPer's columnar format and our wire format (Figure 8) both favour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StringColumn {
    offsets: Vec<u32>,
    data: Vec<u8>,
}

impl StringColumn {
    /// An empty string column.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            data: Vec::new(),
        }
    }

    /// Pre-allocate for `rows` strings of `avg_len` average size.
    pub fn with_capacity(rows: usize, avg_len: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            offsets,
            data: Vec::with_capacity(rows * avg_len),
        }
    }

    /// Number of strings.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when no strings are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a string.
    ///
    /// # Panics
    /// Panics if total data exceeds `u32::MAX` bytes.
    pub fn push(&mut self, s: &str) {
        self.data.extend_from_slice(s.as_bytes());
        let end = u32::try_from(self.data.len()).expect("string column exceeds 4 GiB");
        self.offsets.push(end);
    }

    /// String at row `idx`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, idx: usize) -> &str {
        let start = self.offsets[idx] as usize;
        let end = self.offsets[idx + 1] as usize;
        // Safety: only `push` writes data, and it only appends whole strings.
        std::str::from_utf8(&self.data[start..end]).expect("column holds valid UTF-8")
    }

    /// Total bytes of string data.
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Iterate all strings.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

impl FromIterator<String> for StringColumn {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut col = StringColumn::new();
        for s in iter {
            col.push(&s);
        }
        col
    }
}

impl<'a> FromIterator<&'a str> for StringColumn {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        let mut col = StringColumn::new();
        for s in iter {
            col.push(s);
        }
        col
    }
}

/// A column of values, optionally with a validity bitmap.
///
/// Integer-backed logical types (Int64, Date, Decimal) all use the `I64`
/// physical representation; the logical type lives in the schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers (also dates and scaled decimals).
    I64(Vec<i64>, Option<Bitmap>),
    /// 64-bit floats.
    F64(Vec<f64>, Option<Bitmap>),
    /// UTF-8 strings.
    Str(StringColumn, Option<Bitmap>),
}

impl Column {
    /// An empty column of physical type matching `dtype`.
    pub fn empty(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 | DataType::Date | DataType::Decimal => Column::I64(Vec::new(), None),
            DataType::Float64 => Column::F64(Vec::new(), None),
            DataType::Utf8 => Column::Str(StringColumn::new(), None),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v, _) => v.len(),
            Column::F64(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `idx` is valid (non-NULL).
    pub fn is_valid(&self, idx: usize) -> bool {
        match self.validity() {
            Some(bm) => bm.get(idx),
            None => true,
        }
    }

    /// The validity bitmap, if any rows may be NULL.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::I64(_, v) | Column::F64(_, v) | Column::Str(_, v) => v.as_ref(),
        }
    }

    /// Scalar value at `idx` (NULL-aware).
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn value(&self, idx: usize) -> Value {
        if !self.is_valid(idx) {
            return Value::Null;
        }
        match self {
            Column::I64(v, _) => Value::I64(v[idx]),
            Column::F64(v, _) => Value::F64(v[idx]),
            Column::Str(v, _) => Value::Str(v.get(idx).to_owned()),
        }
    }

    /// Append a scalar value; `Value::Null` appends a NULL.
    ///
    /// # Panics
    /// Panics on a type mismatch.
    pub fn push_value(&mut self, value: &Value) {
        let valid = !value.is_null();
        match self {
            Column::I64(v, bm) => {
                v.push(if valid { value.as_i64() } else { 0 });
                push_validity(bm, v.len(), valid);
            }
            Column::F64(v, bm) => {
                v.push(if valid { value.as_f64() } else { 0.0 });
                push_validity(bm, v.len(), valid);
            }
            Column::Str(v, bm) => {
                v.push(if valid { value.as_str() } else { "" });
                push_validity(bm, v.len(), valid);
            }
        }
    }

    /// Borrow the integer payload.
    ///
    /// # Panics
    /// Panics when the column is not integer-backed.
    pub fn i64_values(&self) -> &[i64] {
        match self {
            Column::I64(v, _) => v,
            other => panic!("expected i64 column, found {:?}", other.physical_name()),
        }
    }

    /// Borrow the float payload.
    ///
    /// # Panics
    /// Panics when the column is not a float column.
    pub fn f64_values(&self) -> &[f64] {
        match self {
            Column::F64(v, _) => v,
            other => panic!("expected f64 column, found {:?}", other.physical_name()),
        }
    }

    /// Borrow the string payload.
    ///
    /// # Panics
    /// Panics when the column is not a string column.
    pub fn str_values(&self) -> &StringColumn {
        match self {
            Column::Str(v, _) => v,
            other => panic!("expected str column, found {:?}", other.physical_name()),
        }
    }

    /// Name of the physical representation (diagnostics).
    pub fn physical_name(&self) -> &'static str {
        match self {
            Column::I64(..) => "i64",
            Column::F64(..) => "f64",
            Column::Str(..) => "str",
        }
    }

    /// Approximate heap size in bytes (for shuffle-volume accounting).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::I64(v, _) => v.len() * 8,
            Column::F64(v, _) => v.len() * 8,
            Column::Str(v, _) => v.data_len() + (v.len() + 1) * 4,
        }
    }

    /// Copy the rows selected by `indices` into a new column.
    ///
    /// # Panics
    /// Panics when any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::I64(v, bm) => {
                let data: Vec<i64> = indices.iter().map(|&i| v[i]).collect();
                Column::I64(data, gather_validity(bm, indices))
            }
            Column::F64(v, bm) => {
                let data: Vec<f64> = indices.iter().map(|&i| v[i]).collect();
                Column::F64(data, gather_validity(bm, indices))
            }
            Column::Str(v, bm) => {
                let mut out = StringColumn::with_capacity(indices.len(), 16);
                for &i in indices {
                    out.push(v.get(i));
                }
                Column::Str(out, gather_validity(bm, indices))
            }
        }
    }

    /// Append all rows of `other` onto `self`.
    ///
    /// # Panics
    /// Panics on physical type mismatch.
    pub fn append(&mut self, other: &Column) {
        let other_len = other.len();
        match (&mut *self, other) {
            (Column::I64(a, abm), Column::I64(b, bbm)) => {
                append_validity(abm, a.len(), bbm, other_len);
                a.extend_from_slice(b);
            }
            (Column::F64(a, abm), Column::F64(b, bbm)) => {
                append_validity(abm, a.len(), bbm, other_len);
                a.extend_from_slice(b);
            }
            (Column::Str(a, abm), Column::Str(b, bbm)) => {
                append_validity(abm, a.len(), bbm, other_len);
                for s in b.iter() {
                    a.push(s);
                }
            }
            (a, b) => panic!(
                "cannot append {} column to {} column",
                b.physical_name(),
                a.physical_name()
            ),
        }
    }
}

fn push_validity(bm: &mut Option<Bitmap>, new_len: usize, valid: bool) {
    match bm {
        Some(b) => b.push(valid),
        None if valid => {} // stay dense
        None => {
            let mut b = Bitmap::filled(new_len - 1, true);
            b.push(false);
            *bm = Some(b);
        }
    }
}

fn gather_validity(bm: &Option<Bitmap>, indices: &[usize]) -> Option<Bitmap> {
    bm.as_ref()
        .map(|b| indices.iter().map(|&i| b.get(i)).collect())
}

fn append_validity(abm: &mut Option<Bitmap>, a_len: usize, bbm: &Option<Bitmap>, b_len: usize) {
    match (abm.as_mut(), bbm) {
        (None, None) => {}
        (Some(a), None) => {
            for _ in 0..b_len {
                a.push(true);
            }
        }
        (None, Some(b)) => {
            let mut bm = Bitmap::filled(a_len, true);
            for i in 0..b_len {
                bm.push(b.get(i));
            }
            *abm = Some(bm);
        }
        (Some(a), Some(b)) => {
            for i in 0..b_len {
                a.push(b.get(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_column_roundtrip() {
        let mut c = StringColumn::new();
        c.push("hello");
        c.push("");
        c.push("wörld");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), "hello");
        assert_eq!(c.get(1), "");
        assert_eq!(c.get(2), "wörld");
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec!["hello", "", "wörld"]);
    }

    #[test]
    fn column_push_and_value() {
        let mut c = Column::empty(DataType::Int64);
        c.push_value(&Value::I64(5));
        c.push_value(&Value::Null);
        c.push_value(&Value::I64(-3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::I64(5));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::I64(-3));
        assert!(!c.is_valid(1));
    }

    #[test]
    fn dense_column_has_no_bitmap() {
        let mut c = Column::empty(DataType::Float64);
        c.push_value(&Value::F64(1.0));
        c.push_value(&Value::F64(2.0));
        assert!(c.validity().is_none());
    }

    #[test]
    fn gather_selects_rows() {
        let c = Column::I64(vec![10, 20, 30, 40], None);
        let g = c.gather(&[3, 1, 1]);
        assert_eq!(g.i64_values(), &[40, 20, 20]);
    }

    #[test]
    fn gather_preserves_nulls() {
        let mut c = Column::empty(DataType::Utf8);
        c.push_value(&Value::Str("a".into()));
        c.push_value(&Value::Null);
        let g = c.gather(&[1, 0]);
        assert_eq!(g.value(0), Value::Null);
        assert_eq!(g.value(1), Value::Str("a".into()));
    }

    #[test]
    fn append_merges_columns_and_validity() {
        let mut a = Column::I64(vec![1, 2], None);
        let mut b = Column::empty(DataType::Int64);
        b.push_value(&Value::Null);
        b.push_value(&Value::I64(9));
        a.append(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.value(0), Value::I64(1));
        assert_eq!(a.value(2), Value::Null);
        assert_eq!(a.value(3), Value::I64(9));
    }

    #[test]
    #[should_panic(expected = "cannot append")]
    fn append_type_mismatch_panics() {
        let mut a = Column::I64(vec![1], None);
        a.append(&Column::F64(vec![1.0], None));
    }

    #[test]
    fn byte_size_accounts_strings() {
        let c: StringColumn = ["ab", "cde"].into_iter().collect();
        let col = Column::Str(c, None);
        assert_eq!(col.byte_size(), 5 + 3 * 4);
    }

    #[test]
    #[should_panic(expected = "expected i64")]
    fn typed_accessor_mismatch_panics() {
        Column::F64(vec![], None).i64_values();
    }
}
