//! Schemas, tables, and morsel iteration.

use std::sync::Arc;

use crate::column::Column;
use crate::types::{DataType, Value};

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (TPC-H style, e.g. `l_orderkey`).
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            nullable: true,
            ..Self::new(name, dtype)
        }
    }
}

/// An ordered set of fields. Cheap to clone (Arc-backed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self {
            fields: Arc::new(fields),
        }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for a schema without fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field called `name`.
    ///
    /// # Panics
    /// Panics when no field has that name (schema bugs should fail loudly).
    pub fn index_of(&self, name: &str) -> usize {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no column named {name:?} in schema"))
    }

    /// The field called `name`.
    pub fn field(&self, name: &str) -> &Field {
        &self.fields[self.index_of(name)]
    }

    /// A new schema containing the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

/// A contiguous row range of a table: the unit of work stealing (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl Morsel {
    /// Rows covered by this morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The row indices as a range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Default morsel size: small enough for work stealing to balance load,
/// large enough to amortize scheduling (the paper uses constant-size
/// morsels; HyPer's are on the order of 10k–100k tuples).
pub const MORSEL_SIZE: usize = 16_384;

/// A columnar table: a schema plus equally-long columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Build a table; all columns must match the schema arity and length.
    ///
    /// # Panics
    /// Panics on arity or length mismatch.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Self {
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema arity {} != column count {}",
            schema.len(),
            columns.len()
        );
        let rows = columns.first().map_or(0, Column::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            assert_eq!(
                c.len(),
                rows,
                "column {:?} length {} != {}",
                f.name,
                c.len(),
                rows
            );
        }
        Self {
            schema,
            columns,
            rows,
        }
    }

    /// An empty table with `schema`.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Self::new(schema, columns)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> &Column {
        &self.columns[self.schema.index_of(name)]
    }

    /// Scalar at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// A full row as values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Approximate in-memory size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Split the table into constant-size morsels.
    pub fn morsels(&self, morsel_size: usize) -> Vec<Morsel> {
        assert!(morsel_size > 0, "morsel size must be positive");
        (0..self.rows)
            .step_by(morsel_size)
            .map(|start| Morsel {
                start,
                end: (start + morsel_size).min(self.rows),
            })
            .collect()
    }

    /// Copy selected rows into a new table.
    pub fn gather(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table::new(self.schema.clone(), columns)
    }

    /// Append all rows of `other`.
    ///
    /// # Panics
    /// Panics when schemas differ.
    pub fn append(&mut self, other: &Table) {
        assert_eq!(self.schema, other.schema, "schema mismatch on append");
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.append(b);
        }
        self.rows += other.rows;
    }

    /// Keep only the columns at `indices` (projection pushdown).
    pub fn project(&self, indices: &[usize]) -> Table {
        let schema = self.schema.project(indices);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Table::new(schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]);
        let ids = Column::I64(vec![1, 2, 3], None);
        let names = Column::Str(["a", "b", "c"].into_iter().collect(), None);
        Table::new(schema, vec![ids, names])
    }

    #[test]
    fn construction_and_access() {
        let t = sample();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.value(1, 0), Value::I64(2));
        assert_eq!(t.value(2, 1), Value::Str("c".into()));
        assert_eq!(t.column_by_name("id").i64_values(), &[1, 2, 3]);
        assert_eq!(t.row(0), vec![Value::I64(1), Value::Str("a".into())]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64)]);
        Table::new(schema, vec![]);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn length_mismatch_panics() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
        ]);
        Table::new(
            schema,
            vec![Column::I64(vec![1], None), Column::I64(vec![1, 2], None)],
        );
    }

    #[test]
    fn morsels_cover_all_rows_without_overlap() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let t = Table::new(schema, vec![Column::I64((0..100).collect(), None)]);
        let morsels = t.morsels(33);
        assert_eq!(morsels.len(), 4);
        let covered: usize = morsels.iter().map(Morsel::len).sum();
        assert_eq!(covered, 100);
        assert_eq!(morsels[0].range(), 0..33);
        assert_eq!(morsels[3].range(), 99..100);
    }

    #[test]
    fn empty_table_has_no_morsels() {
        let t = Table::empty(Schema::new(vec![Field::new("x", DataType::Int64)]));
        assert!(t.morsels(MORSEL_SIZE).is_empty());
    }

    #[test]
    fn gather_and_append() {
        let t = sample();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.rows(), 2);
        assert_eq!(g.value(0, 0), Value::I64(3));
        let mut a = t.clone();
        a.append(&g);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.value(3, 1), Value::Str("c".into()));
    }

    #[test]
    fn projection_keeps_selected_columns() {
        let t = sample();
        let p = t.project(&[1]);
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().fields()[0].name, "name");
        assert_eq!(p.rows(), 3);
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        sample().column_by_name("nope");
    }
}
