//! Validity bitmaps for nullable columns.

/// A packed bitmap tracking which rows of a column are valid (non-NULL).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let word = if value { u64::MAX } else { 0 };
        let mut bm = Self {
            words: vec![word; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if value {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Bit at `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit {idx} out of range {}", self.len);
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Set bit `idx` to `value`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit {idx} out of range {}", self.len);
        if value {
            self.words[idx / 64] |= 1 << (idx % 64);
        } else {
            self.words[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set (vacuously true when empty).
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<bool> for Bitmap {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut bm = Bitmap::new();
        for b in iter {
            bm.push(b);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_set(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn filled_true_and_false() {
        let t = Bitmap::filled(100, true);
        assert_eq!(t.count_set(), 100);
        assert!(t.all_set());
        let f = Bitmap::filled(100, false);
        assert_eq!(f.count_set(), 0);
    }

    #[test]
    fn filled_true_masks_tail_bits() {
        // count_set must not count bits beyond len.
        let t = Bitmap::filled(65, true);
        assert_eq!(t.count_set(), 65);
    }

    #[test]
    fn set_flips_bits() {
        let mut bm = Bitmap::filled(10, false);
        bm.set(7, true);
        assert!(bm.get(7));
        bm.set(7, false);
        assert!(!bm.get(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_bounds() {
        Bitmap::filled(4, true).get(4);
    }

    #[test]
    fn from_iterator() {
        let bm: Bitmap = [true, false, true].into_iter().collect();
        assert_eq!(bm.len(), 3);
        assert!(bm.get(0) && !bm.get(1) && bm.get(2));
    }

    #[test]
    fn empty_bitmap() {
        let bm = Bitmap::new();
        assert!(bm.is_empty());
        assert!(bm.all_set());
    }
}
