//! Logical data types, scalar values, and date arithmetic.

use std::fmt;

/// Logical column type.
///
/// `Date` and `Decimal` are physically stored as 64-bit integers: dates as
/// days since 1970-01-01, decimals as fixed-point values scaled by 100
/// (TPC-H money has two fractional digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// Days since the Unix epoch.
    Date,
    /// Fixed-point decimal scaled by 100 (e.g. cents).
    Decimal,
    /// IEEE 754 double.
    Float64,
    /// Variable-length UTF-8 string.
    Utf8,
}

impl DataType {
    /// Whether the type is physically stored in an `i64` column.
    pub fn is_integer_backed(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Date | DataType::Decimal)
    }

    /// Whether values of this type have a fixed wire size (Figure 8: the
    /// "fixed" section of the serialization format).
    pub fn is_fixed_size(self) -> bool {
        !matches!(self, DataType::Utf8)
    }
}

/// A scalar value, used by expression evaluation and query results.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer / date / decimal payload.
    I64(i64),
    /// Floating-point payload.
    F64(f64),
    /// String payload.
    Str(String),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    /// Panics if the value is not integer-backed.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected integer value, found {other:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    /// Panics if the value is not a float.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            Value::I64(v) => *v as f64,
            other => panic!("expected float value, found {other:?}"),
        }
    }

    /// The string payload.
    ///
    /// # Panics
    /// Panics if the value is not a string.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected string value, found {other:?}"),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// The logical value of a fixed-point Decimal stored as i64 cents
/// (scale 100).
///
/// This is *the* canonical promotion: expression evaluation, join-key
/// hashing, partition hashing, and scalar-parameter binding must all use
/// it, or a Decimal promoted along one path will fail to equal the same
/// value promoted along another (which is how Decimal⋈Float64 joins once
/// silently matched nothing).
pub fn decimal_to_f64(cents: i64) -> f64 {
    cents as f64 / 100.0
}

/// Days since 1970-01-01 for a proleptic Gregorian calendar date.
///
/// Uses Howard Hinnant's `days_from_civil` algorithm.
///
/// # Panics
/// Panics on out-of-range months or days.
pub fn date_from_ymd(y: i64, m: u32, d: u32) -> i64 {
    assert!((1..=12).contains(&m), "month {m} out of range");
    assert!((1..=31).contains(&d), "day {d} out of range");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// (year, month, day) for a day number (inverse of [`date_from_ymd`]).
pub fn ymd_of_date(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Calendar year of a day number (SQL `extract(year from …)`).
pub fn year_of_date(days: i64) -> i64 {
    ymd_of_date(days).0
}

/// Add `months` calendar months to a date, clamping the day to the target
/// month's length (SQL `date + interval 'n' month` semantics).
pub fn add_months(days: i64, months: i64) -> i64 {
    let (y, m, d) = ymd_of_date(days);
    let total = y * 12 + i64::from(m) - 1 + months;
    let ny = total.div_euclid(12);
    let nm = (total.rem_euclid(12) + 1) as u32;
    let max_d = days_in_month(ny, nm);
    date_from_ymd(ny, nm, d.min(max_d))
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("invalid month {m}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(date_from_ymd(1970, 1, 1), 0);
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(date_from_ymd(1992, 1, 1), 8035);
        assert_eq!(date_from_ymd(1998, 12, 31), 10_591);
        // Leap day.
        assert_eq!(date_from_ymd(1996, 3, 1) - date_from_ymd(1996, 2, 28), 2);
    }

    #[test]
    fn ymd_roundtrip() {
        for days in (-40_000..60_000).step_by(17) {
            let (y, m, d) = ymd_of_date(days);
            assert_eq!(date_from_ymd(y, m, d), days, "failed at {days}");
        }
    }

    #[test]
    fn year_extraction() {
        assert_eq!(year_of_date(date_from_ymd(1995, 6, 17)), 1995);
        assert_eq!(year_of_date(date_from_ymd(1969, 12, 31)), 1969);
    }

    #[test]
    fn add_months_handles_overflow_and_clamping() {
        let d = date_from_ymd(1995, 12, 15);
        assert_eq!(add_months(d, 1), date_from_ymd(1996, 1, 15));
        assert_eq!(add_months(d, 12), date_from_ymd(1996, 12, 15));
        // Clamp 31st to shorter months.
        let jan31 = date_from_ymd(1997, 1, 31);
        assert_eq!(add_months(jan31, 1), date_from_ymd(1997, 2, 28));
        // Backwards.
        assert_eq!(add_months(d, -3), date_from_ymd(1995, 9, 15));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::I64(3).as_i64(), 3);
        assert_eq!(Value::I64(3).as_f64(), 3.0);
        assert_eq!(Value::F64(2.5).as_f64(), 2.5);
        assert_eq!(Value::Str("x".into()).as_str(), "x");
        assert!(Value::Null.is_null());
        assert!(!Value::I64(0).is_null());
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn wrong_accessor_panics() {
        Value::Str("x".into()).as_i64();
    }

    #[test]
    fn datatype_classification() {
        assert!(DataType::Date.is_integer_backed());
        assert!(DataType::Decimal.is_integer_backed());
        assert!(!DataType::Float64.is_integer_backed());
        assert!(DataType::Int64.is_fixed_size());
        assert!(!DataType::Utf8.is_fixed_size());
    }

    #[test]
    #[should_panic(expected = "month")]
    fn bad_month_panics() {
        date_from_ymd(1995, 13, 1);
    }
}
