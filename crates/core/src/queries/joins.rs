//! Join-dominated TPC-H queries: 3, 5, 7, 8, 9, 10, 12, 14, 19.
//!
//! These are the queries whose scalability Figure 11 tracks most closely:
//! they shuffle base relations and therefore live or die by the network.

use hsqp_storage::date_from_ymd;
use hsqp_tpch::TpchTable;

use super::helpers::{dist_agg, global_agg};
use super::Query;
use crate::expr::{col, lit, litf, lits, Expr};
use crate::plan::{AggFunc, AggSpec, JoinKind, MapExpr, Plan, SortKey};

fn revenue() -> Expr {
    col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")))
}

/// nation ⨝ region(name), projected to the nation key and a renamed nation
/// name — broadcast-ready build side shared by several queries.
fn nations_of_region(region: &str, key_alias: &str, name_alias: &str) -> Plan {
    let region_scan = Plan::scan_filtered(
        TpchTable::Region,
        &["r_regionkey"],
        col("r_name").eq(lits(region)),
    );
    Plan::scan_cols(TpchTable::Nation, &["n_nationkey", "n_name", "n_regionkey"])
        .join(
            region_scan.broadcast(),
            &["n_regionkey"],
            &["r_regionkey"],
            JoinKind::LeftSemi,
        )
        .map(vec![
            MapExpr::new(key_alias, col("n_nationkey")),
            MapExpr::new(name_alias, col("n_name")),
        ])
}

/// Q3 — shipping priority. customer ⨝ orders ⨝ lineitem, top-10 revenue.
pub fn q3() -> Query {
    let cutoff = date_from_ymd(1995, 3, 15);
    let customer = Plan::scan_filtered(
        TpchTable::Customer,
        &["c_custkey"],
        col("c_mktsegment").eq(lits("BUILDING")),
    )
    .repartition(&["c_custkey"]);
    let orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        col("o_orderdate").lt(lit(cutoff)),
    )
    .repartition(&["o_custkey"]);
    let cust_orders = orders
        .join(customer, &["o_custkey"], &["c_custkey"], JoinKind::LeftSemi)
        .repartition(&["o_orderkey"]);
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_orderkey", "l_extendedprice", "l_discount"],
        col("l_shipdate").gt(lit(cutoff)),
    )
    .repartition(&["l_orderkey"]);
    let joined = lineitem.join(
        cust_orders,
        &["l_orderkey"],
        &["o_orderkey"],
        JoinKind::Inner,
    );
    // Partitioned by orderkey → grouping by it is node-local.
    let agg = joined.aggregate(
        &["l_orderkey", "o_orderdate", "o_shippriority"],
        vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
    );
    Query::single(
        3,
        agg.gather().sort(
            vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")],
            Some(10),
        ),
    )
}

/// Q5 — local supplier volume within ASIA.
pub fn q5() -> Query {
    let supp_nation = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_nationkey"])
        .join(
            nations_of_region("ASIA", "sn_key", "sn_name").broadcast(),
            &["s_nationkey"],
            &["sn_key"],
            JoinKind::Inner,
        )
        .map(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nationkey", col("s_nationkey")),
            MapExpr::new("n_name", col("sn_name")),
        ]);
    let customer = Plan::scan_cols(TpchTable::Customer, &["c_custkey", "c_nationkey"])
        .repartition(&["c_custkey"]);
    let orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey", "o_custkey"],
        col("o_orderdate")
            .ge(lit(date_from_ymd(1994, 1, 1)))
            .and(col("o_orderdate").lt(lit(date_from_ymd(1995, 1, 1)))),
    )
    .repartition(&["o_custkey"]);
    let cust_orders = orders
        .join(customer, &["o_custkey"], &["c_custkey"], JoinKind::Inner)
        .repartition(&["o_orderkey"]);
    let lineitem = Plan::scan_cols(
        TpchTable::Lineitem,
        &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    )
    .repartition(&["l_orderkey"]);
    let with_orders = lineitem.join(
        cust_orders,
        &["l_orderkey"],
        &["o_orderkey"],
        JoinKind::Inner,
    );
    // Local-supplier condition: the supplying nation equals the customer's.
    let joined = with_orders.join(
        supp_nation.broadcast(),
        &["l_suppkey", "c_nationkey"],
        &["supp_key", "supp_nationkey"],
        JoinKind::Inner,
    );
    let agg = dist_agg(
        joined,
        &["n_name"],
        vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
    );
    Query::single(5, agg.gather().sort(vec![SortKey::desc("revenue")], None))
}

/// Q7 — volume shipping between FRANCE and GERMANY.
pub fn q7() -> Query {
    let supp_nation = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_nationkey"])
        .join(
            Plan::scan_filtered(
                TpchTable::Nation,
                &["n_nationkey", "n_name"],
                col("n_name").in_str(&["FRANCE", "GERMANY"]),
            )
            .broadcast(),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .map(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nation", col("n_name")),
        ]);
    let cust_nation = Plan::scan_cols(TpchTable::Customer, &["c_custkey", "c_nationkey"])
        .join(
            Plan::scan_filtered(
                TpchTable::Nation,
                &["n_nationkey", "n_name"],
                col("n_name").in_str(&["FRANCE", "GERMANY"]),
            )
            .broadcast(),
            &["c_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .map(vec![
            MapExpr::new("cust_key", col("c_custkey")),
            MapExpr::new("cust_nation", col("n_name")),
        ]);
    let orders = Plan::scan_cols(TpchTable::Orders, &["o_orderkey", "o_custkey"])
        .repartition(&["o_custkey"]);
    let orders_cust = orders
        .join(
            cust_nation.repartition(&["cust_key"]),
            &["o_custkey"],
            &["cust_key"],
            JoinKind::Inner,
        )
        .repartition(&["o_orderkey"]);
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &[
            "l_orderkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
        ],
        col("l_shipdate")
            .ge(lit(date_from_ymd(1995, 1, 1)))
            .and(col("l_shipdate").le(lit(date_from_ymd(1996, 12, 31)))),
    )
    .join(
        supp_nation.broadcast(),
        &["l_suppkey"],
        &["supp_key"],
        JoinKind::Inner,
    )
    .repartition(&["l_orderkey"]);
    let joined = lineitem
        .join(
            orders_cust,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .filter(
            col("supp_nation")
                .eq(lits("FRANCE"))
                .and(col("cust_nation").eq(lits("GERMANY")))
                .or(col("supp_nation")
                    .eq(lits("GERMANY"))
                    .and(col("cust_nation").eq(lits("FRANCE")))),
        )
        .map(vec![
            MapExpr::new("supp_nation", col("supp_nation")),
            MapExpr::new("cust_nation", col("cust_nation")),
            MapExpr::new("l_year", col("l_shipdate").year()),
            MapExpr::new("volume", revenue()),
        ]);
    let agg = dist_agg(
        joined,
        &["supp_nation", "cust_nation", "l_year"],
        vec![AggSpec::new(AggFunc::Sum, col("volume"), "revenue")],
    );
    Query::single(
        7,
        agg.gather().sort(
            vec![
                SortKey::asc("supp_nation"),
                SortKey::asc("cust_nation"),
                SortKey::asc("l_year"),
            ],
            None,
        ),
    )
}

/// Q8 — national market share of BRAZIL within AMERICA.
pub fn q8() -> Query {
    let part = Plan::scan_filtered(
        TpchTable::Part,
        &["p_partkey"],
        col("p_type").eq(lits("ECONOMY ANODIZED STEEL")),
    );
    let supp_nation = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_nationkey"])
        .join(
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey", "n_name"]).broadcast(),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .map(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nation", col("n_name")),
        ]);
    let lineitem = Plan::scan_cols(
        TpchTable::Lineitem,
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_extendedprice",
            "l_discount",
        ],
    )
    .join(
        part.broadcast(),
        &["l_partkey"],
        &["p_partkey"],
        JoinKind::LeftSemi,
    )
    .join(
        supp_nation.broadcast(),
        &["l_suppkey"],
        &["supp_key"],
        JoinKind::Inner,
    )
    .repartition(&["l_orderkey"]);
    let customer_america = Plan::scan_cols(TpchTable::Customer, &["c_custkey", "c_nationkey"])
        .join(
            nations_of_region("AMERICA", "cn_key", "cn_name").broadcast(),
            &["c_nationkey"],
            &["cn_key"],
            JoinKind::LeftSemi,
        )
        .repartition(&["c_custkey"]);
    let orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey", "o_custkey", "o_orderdate"],
        col("o_orderdate")
            .ge(lit(date_from_ymd(1995, 1, 1)))
            .and(col("o_orderdate").le(lit(date_from_ymd(1996, 12, 31)))),
    )
    .repartition(&["o_custkey"])
    .join(
        customer_america,
        &["o_custkey"],
        &["c_custkey"],
        JoinKind::LeftSemi,
    )
    .repartition(&["o_orderkey"]);
    let joined = lineitem
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .map(vec![
            MapExpr::new("o_year", col("o_orderdate").year()),
            MapExpr::new("volume", revenue()),
            MapExpr::new(
                "brazil_volume",
                col("supp_nation")
                    .eq(lits("BRAZIL"))
                    .case(revenue(), litf(0.0)),
            ),
        ]);
    let agg = dist_agg(
        joined,
        &["o_year"],
        vec![
            AggSpec::new(AggFunc::Sum, col("brazil_volume"), "brazil"),
            AggSpec::new(AggFunc::Sum, col("volume"), "total"),
        ],
    );
    let share = agg.map(vec![
        MapExpr::new("o_year", col("o_year")),
        MapExpr::new("mkt_share", col("brazil").div(col("total"))),
    ]);
    Query::single(8, share.gather().sort(vec![SortKey::asc("o_year")], None))
}

/// Q9 — product-type profit measure across all nations and years.
pub fn q9() -> Query {
    let part = Plan::scan_filtered(
        TpchTable::Part,
        &["p_partkey"],
        col("p_name").like("%green%"),
    )
    .repartition(&["p_partkey"]);
    let supp_nation = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_nationkey"])
        .join(
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey", "n_name"]).broadcast(),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .map(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("nation", col("n_name")),
        ]);
    let partsupp = Plan::scan_cols(
        TpchTable::Partsupp,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )
    .repartition(&["ps_partkey"]);
    let lineitem = Plan::scan_cols(
        TpchTable::Lineitem,
        &[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
        ],
    )
    .repartition(&["l_partkey"])
    .join(part, &["l_partkey"], &["p_partkey"], JoinKind::LeftSemi)
    // Co-partitioned on partkey; the two-column key refines it locally.
    .join(
        partsupp,
        &["l_partkey", "l_suppkey"],
        &["ps_partkey", "ps_suppkey"],
        JoinKind::Inner,
    )
    .join(
        supp_nation.broadcast(),
        &["l_suppkey"],
        &["supp_key"],
        JoinKind::Inner,
    )
    .repartition(&["l_orderkey"]);
    let orders = Plan::scan_cols(TpchTable::Orders, &["o_orderkey", "o_orderdate"])
        .repartition(&["o_orderkey"]);
    let joined = lineitem
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .map(vec![
            MapExpr::new("nation", col("nation")),
            MapExpr::new("o_year", col("o_orderdate").year()),
            MapExpr::new(
                "amount",
                revenue().sub(col("ps_supplycost").mul(col("l_quantity"))),
            ),
        ]);
    let agg = dist_agg(
        joined,
        &["nation", "o_year"],
        vec![AggSpec::new(AggFunc::Sum, col("amount"), "sum_profit")],
    );
    Query::single(
        9,
        agg.gather()
            .sort(vec![SortKey::asc("nation"), SortKey::desc("o_year")], None),
    )
}

/// Q10 — returned-item reporting, top 20 customers by lost revenue.
pub fn q10() -> Query {
    let orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey", "o_custkey"],
        col("o_orderdate")
            .ge(lit(date_from_ymd(1993, 10, 1)))
            .and(col("o_orderdate").lt(lit(date_from_ymd(1994, 1, 1)))),
    )
    .repartition(&["o_orderkey"]);
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_orderkey", "l_extendedprice", "l_discount"],
        col("l_returnflag").eq(lits("R")),
    )
    .repartition(&["l_orderkey"]);
    let with_orders = lineitem
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .repartition(&["o_custkey"]);
    let customer = Plan::scan_cols(
        TpchTable::Customer,
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "c_nationkey",
            "c_address",
            "c_comment",
        ],
    )
    .join(
        Plan::scan_cols(TpchTable::Nation, &["n_nationkey", "n_name"]).broadcast(),
        &["c_nationkey"],
        &["n_nationkey"],
        JoinKind::Inner,
    )
    .repartition(&["c_custkey"]);
    let joined = with_orders.join(customer, &["o_custkey"], &["c_custkey"], JoinKind::Inner);
    let agg = joined.aggregate(
        &[
            "c_custkey",
            "c_name",
            "c_acctbal",
            "c_phone",
            "n_name",
            "c_address",
            "c_comment",
        ],
        vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
    );
    Query::single(
        10,
        agg.gather().sort(vec![SortKey::desc("revenue")], Some(20)),
    )
}

/// Q12 — shipping modes and order priority.
pub fn q12() -> Query {
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_orderkey", "l_shipmode"],
        col("l_shipmode")
            .in_str(&["MAIL", "SHIP"])
            .and(col("l_commitdate").lt(col("l_receiptdate")))
            .and(col("l_shipdate").lt(col("l_commitdate")))
            .and(col("l_receiptdate").ge(lit(date_from_ymd(1994, 1, 1))))
            .and(col("l_receiptdate").lt(lit(date_from_ymd(1995, 1, 1)))),
    )
    .repartition(&["l_orderkey"]);
    let orders = Plan::scan_cols(TpchTable::Orders, &["o_orderkey", "o_orderpriority"])
        .repartition(&["o_orderkey"]);
    let joined = lineitem
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .map(vec![
            MapExpr::new("l_shipmode", col("l_shipmode")),
            MapExpr::new(
                "high_line",
                col("o_orderpriority")
                    .in_str(&["1-URGENT", "2-HIGH"])
                    .case(lit(1), lit(0)),
            ),
            MapExpr::new(
                "low_line",
                col("o_orderpriority")
                    .in_str(&["1-URGENT", "2-HIGH"])
                    .not()
                    .case(lit(1), lit(0)),
            ),
        ]);
    let agg = dist_agg(
        joined,
        &["l_shipmode"],
        vec![
            AggSpec::new(AggFunc::Sum, col("high_line"), "high_line_count"),
            AggSpec::new(AggFunc::Sum, col("low_line"), "low_line_count"),
        ],
    );
    Query::single(
        12,
        agg.gather().sort(vec![SortKey::asc("l_shipmode")], None),
    )
}

/// Q14 — promotion effect within one month.
pub fn q14() -> Query {
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_partkey", "l_extendedprice", "l_discount"],
        col("l_shipdate")
            .ge(lit(date_from_ymd(1995, 9, 1)))
            .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 10, 1)))),
    )
    .repartition(&["l_partkey"]);
    let part =
        Plan::scan_cols(TpchTable::Part, &["p_partkey", "p_type"]).repartition(&["p_partkey"]);
    let joined = lineitem
        .join(part, &["l_partkey"], &["p_partkey"], JoinKind::Inner)
        .map(vec![
            MapExpr::new(
                "promo",
                col("p_type").like("PROMO%").case(revenue(), litf(0.0)),
            ),
            MapExpr::new("rev", revenue()),
        ]);
    let agg = global_agg(
        joined,
        vec![
            AggSpec::new(AggFunc::Sum, col("promo"), "promo_sum"),
            AggSpec::new(AggFunc::Sum, col("rev"), "rev_sum"),
        ],
    );
    let pct = agg.map(vec![MapExpr::new(
        "promo_revenue",
        litf(100.0).mul(col("promo_sum")).div(col("rev_sum")),
    )]);
    Query::single(14, pct)
}

/// Q19 — discounted revenue, a disjunction of three brand/container/
/// quantity windows evaluated after a partkey join.
pub fn q19() -> Query {
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_partkey", "l_quantity", "l_extendedprice", "l_discount"],
        col("l_shipmode")
            .in_str(&["AIR", "REG AIR"])
            .and(col("l_shipinstruct").eq(lits("DELIVER IN PERSON"))),
    )
    .repartition(&["l_partkey"]);
    let part = Plan::scan_cols(
        TpchTable::Part,
        &["p_partkey", "p_brand", "p_container", "p_size"],
    )
    .repartition(&["p_partkey"]);
    let window = |brand: &str, containers: &[&str], qlo: f64, qhi: f64, smax: i64| {
        col("p_brand")
            .eq(lits(brand))
            .and(col("p_container").in_str(containers))
            .and(col("l_quantity").ge(litf(qlo)))
            .and(col("l_quantity").le(litf(qhi)))
            .and(col("p_size").between(lit(1), lit(smax)))
    };
    let joined = lineitem
        .join(part, &["l_partkey"], &["p_partkey"], JoinKind::Inner)
        .filter(
            window(
                "Brand#12",
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                1.0,
                11.0,
                5,
            )
            .or(window(
                "Brand#23",
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10.0,
                20.0,
                10,
            ))
            .or(window(
                "Brand#34",
                &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                20.0,
                30.0,
                15,
            )),
        );
    let agg = global_agg(
        joined,
        vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
    );
    Query::single(19, agg)
}
