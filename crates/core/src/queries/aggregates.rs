//! Aggregation-dominated TPC-H queries: 1, 6, 13, 16.

use hsqp_storage::date_from_ymd;
use hsqp_tpch::TpchTable;

use super::helpers::{dist_agg, dist_agg_nopre, global_agg};
use super::Query;
use crate::expr::{col, lit, litf, lits};
use crate::plan::{AggFunc, AggSpec, JoinKind, Plan, SortKey};

/// Q1 — pricing summary report. Heavy scan, eight aggregates over two tiny
/// group keys; pre-aggregation reduces the shuffle to a handful of rows.
pub fn q1() -> Query {
    let cutoff = date_from_ymd(1998, 12, 1) - 90;
    let scan = Plan::scan_filtered(
        TpchTable::Lineitem,
        &[
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
        ],
        col("l_shipdate").le(lit(cutoff)),
    );
    let disc_price = col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")));
    let charge = disc_price.clone().mul(litf(1.0).add(col("l_tax")));
    let agg = dist_agg(
        scan,
        &["l_returnflag", "l_linestatus"],
        vec![
            AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
            AggSpec::new(AggFunc::Sum, col("l_extendedprice"), "sum_base_price"),
            AggSpec::new(AggFunc::Sum, disc_price, "sum_disc_price"),
            AggSpec::new(AggFunc::Sum, charge, "sum_charge"),
            AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty"),
            AggSpec::new(AggFunc::Avg, col("l_extendedprice"), "avg_price"),
            AggSpec::new(AggFunc::Avg, col("l_discount"), "avg_disc"),
            AggSpec::new(AggFunc::Count, lit(1), "count_order"),
        ],
    );
    Query::single(
        1,
        agg.gather().sort(
            vec![SortKey::asc("l_returnflag"), SortKey::asc("l_linestatus")],
            None,
        ),
    )
}

/// Q6 — forecasting revenue change. Pure scan + global aggregate; shuffles
/// almost nothing (the paper's Figure 11 shows it scaling even on GbE).
pub fn q6() -> Query {
    let pred = col("l_shipdate")
        .ge(lit(date_from_ymd(1994, 1, 1)))
        .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 1, 1))))
        .and(col("l_discount").between(litf(0.0499), litf(0.0701)))
        .and(col("l_quantity").lt(litf(24.0)));
    let scan = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_extendedprice", "l_discount"],
        pred,
    );
    let agg = global_agg(
        scan,
        vec![AggSpec::new(
            AggFunc::Sum,
            col("l_extendedprice").mul(col("l_discount")),
            "revenue",
        )],
    );
    Query::single(6, agg)
}

/// Q13 — customer order-count distribution. Left outer join feeding a
/// double aggregation.
pub fn q13() -> Query {
    let orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey", "o_custkey"],
        col("o_comment").like("%special%requests%").not(),
    )
    .repartition(&["o_custkey"]);
    let customer = Plan::scan_cols(TpchTable::Customer, &["c_custkey"]).repartition(&["c_custkey"]);
    let joined = customer.join(orders, &["c_custkey"], &["o_custkey"], JoinKind::LeftOuter);
    // Already partitioned by c_custkey → local count per customer.
    let per_customer = joined.aggregate(
        &["c_custkey"],
        vec![AggSpec::new(AggFunc::Count, col("o_orderkey"), "c_count")],
    );
    let distribution = dist_agg(
        per_customer,
        &["c_count"],
        vec![AggSpec::new(AggFunc::Count, lit(1), "custdist")],
    );
    Query::single(
        13,
        distribution.gather().sort(
            vec![SortKey::desc("custdist"), SortKey::desc("c_count")],
            None,
        ),
    )
}

/// Q16 — parts/supplier relationship. `count(distinct)` forces a raw
/// reshuffle (no pre-aggregation possible), plus an anti join against
/// complained-about suppliers.
pub fn q16() -> Query {
    let part = Plan::scan_filtered(
        TpchTable::Part,
        &["p_partkey", "p_brand", "p_type", "p_size"],
        col("p_brand")
            .eq(lits("Brand#45"))
            .not()
            .and(col("p_type").like("MEDIUM POLISHED%").not())
            .and(col("p_size").in_i64(&[49, 14, 23, 45, 19, 3, 36, 9])),
    )
    .repartition(&["p_partkey"]);
    let partsupp = Plan::scan_cols(TpchTable::Partsupp, &["ps_partkey", "ps_suppkey"])
        .repartition(&["ps_partkey"]);
    let complainers = Plan::scan_filtered(
        TpchTable::Supplier,
        &["s_suppkey"],
        col("s_comment").like("%Customer%Complaints%"),
    )
    .broadcast();
    let joined = partsupp
        .join(part, &["ps_partkey"], &["p_partkey"], JoinKind::Inner)
        .join(
            complainers,
            &["ps_suppkey"],
            &["s_suppkey"],
            JoinKind::LeftAnti,
        );
    let agg = dist_agg_nopre(
        joined,
        &["p_brand", "p_type", "p_size"],
        vec![AggSpec::new(
            AggFunc::CountDistinct,
            col("ps_suppkey"),
            "supplier_cnt",
        )],
    );
    Query::single(
        16,
        agg.gather().sort(
            vec![
                SortKey::desc("supplier_cnt"),
                SortKey::asc("p_brand"),
                SortKey::asc("p_type"),
                SortKey::asc("p_size"),
            ],
            None,
        ),
    )
}

/// Q1 variant without pre-aggregation, for the Figure 6(c) ablation bench.
pub fn q1_no_preagg() -> Query {
    let cutoff = date_from_ymd(1998, 12, 1) - 90;
    let scan = Plan::scan_filtered(
        TpchTable::Lineitem,
        &[
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
        ],
        col("l_shipdate").le(lit(cutoff)),
    );
    let disc_price = col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")));
    let charge = disc_price.clone().mul(litf(1.0).add(col("l_tax")));
    let agg = dist_agg_nopre(
        scan,
        &["l_returnflag", "l_linestatus"],
        vec![
            AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
            AggSpec::new(AggFunc::Sum, col("l_extendedprice"), "sum_base_price"),
            AggSpec::new(AggFunc::Sum, disc_price, "sum_disc_price"),
            AggSpec::new(AggFunc::Sum, charge, "sum_charge"),
            AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty"),
            AggSpec::new(AggFunc::Avg, col("l_extendedprice"), "avg_price"),
            AggSpec::new(AggFunc::Avg, col("l_discount"), "avg_disc"),
            AggSpec::new(AggFunc::Count, lit(1), "count_order"),
        ],
    );
    Query::single(
        1,
        agg.gather().sort(
            vec![SortKey::asc("l_returnflag"), SortKey::asc("l_linestatus")],
            None,
        ),
    )
}
