//! Distributed-plan building blocks shared by the query definitions.

use crate::plan::{AggPhase, AggSpec, Plan};

/// Distributed aggregation with pre-aggregation (Figure 6(c)): local
/// partial aggregation, reshuffle by group key, merge. This is the plan
/// shape the paper's optimizer picks for aggregations with few groups.
pub fn dist_agg(input: Plan, groups: &[&str], aggs: Vec<AggSpec>) -> Plan {
    assert!(!groups.is_empty(), "use global_agg for grouping-free plans");
    let partial = Plan::Aggregate {
        input: Box::new(input),
        group_by: groups.iter().map(|s| s.to_string()).collect(),
        aggs: aggs.clone(),
        phase: AggPhase::Partial,
    };
    Plan::Aggregate {
        input: Box::new(partial.repartition(groups)),
        group_by: groups.iter().map(|s| s.to_string()).collect(),
        aggs,
        phase: AggPhase::Final,
    }
}

/// Distributed aggregation without pre-aggregation: reshuffle raw tuples
/// by group key, then aggregate once. Required for `count(distinct …)` and
/// used as the ablation baseline for the pre-aggregation optimization.
pub fn dist_agg_nopre(input: Plan, groups: &[&str], aggs: Vec<AggSpec>) -> Plan {
    Plan::Aggregate {
        input: Box::new(input.repartition(groups)),
        group_by: groups.iter().map(|s| s.to_string()).collect(),
        aggs,
        phase: AggPhase::Single,
    }
}

/// Distributed grouping-free aggregation: local partials, gathered and
/// merged at the coordinator. The result exists on node 0 only.
pub fn global_agg(input: Plan, aggs: Vec<AggSpec>) -> Plan {
    let partial = Plan::Aggregate {
        input: Box::new(input),
        group_by: Vec::new(),
        aggs: aggs.clone(),
        phase: AggPhase::Partial,
    };
    Plan::Aggregate {
        input: Box::new(partial.gather()),
        group_by: Vec::new(),
        aggs,
        phase: AggPhase::Final,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::AggFunc;
    use hsqp_tpch::TpchTable;

    #[test]
    fn dist_agg_is_partial_exchange_final() {
        let p = dist_agg(
            Plan::scan(TpchTable::Lineitem),
            &["l_returnflag"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")],
        );
        match &p {
            Plan::Aggregate { phase, input, .. } => {
                assert_eq!(*phase, AggPhase::Final);
                assert!(matches!(**input, Plan::Exchange { .. }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.exchange_count(), 1);
    }

    #[test]
    #[should_panic(expected = "global_agg")]
    fn dist_agg_rejects_empty_groups() {
        dist_agg(Plan::scan(TpchTable::Lineitem), &[], vec![]);
    }

    #[test]
    fn global_agg_gathers_partials() {
        let p = global_agg(
            Plan::scan(TpchTable::Lineitem),
            vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "s")],
        );
        assert_eq!(p.exchange_count(), 1);
    }
}
