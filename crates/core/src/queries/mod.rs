//! Hand-built distributed physical plans for all 22 TPC-H queries.
//!
//! Plans follow the shape of Figure 6: unnested single-server plans with
//! exchange operators inserted where tuples must cross servers, plus the
//! two classic optimizations — broadcasting small join inputs instead of
//! hash-partitioning both sides, and pre-aggregation before reshuffling
//! group-by results. Correlated subqueries are manually decorrelated the
//! way HyPer's optimizer unnests them; scalar subqueries (e.g. Q17's
//! per-part average) become earlier *stages* whose first result row binds
//! [`Expr::Param`](crate::expr::Expr::Param) values for the final stage.

use crate::error::EngineError;
use crate::plan::Plan;

mod aggregates;
pub mod builder;
mod helpers;

pub use aggregates::q1_no_preagg;
pub use builder::tpch_logical;
pub use helpers::{dist_agg, dist_agg_nopre, global_agg};
mod joins;
mod subqueries;

/// Q22's country-code prefixes — spec input shared by the handwritten and
/// builder variants so the two cannot silently diverge.
pub(crate) const Q22_CODES: [&str; 7] = ["13", "31", "23", "29", "30", "18", "17"];

/// What the cluster does with one stage's output.
#[derive(Debug, Clone, PartialEq)]
pub enum StageRole {
    /// Bind the first row of the coordinator's result as query parameters
    /// ([`Expr::Param`](crate::expr::Expr::Param)), appended in column
    /// order after parameters bound by earlier stages.
    Params,
    /// Keep every node's local output as a temporary relation under this
    /// name, readable by later stages through
    /// [`Plan::TempScan`].
    Materialize(String),
    /// The query result (always and only the last stage).
    Result,
}

impl StageRole {
    /// Short human-readable label (used by profiles and EXPLAIN output).
    pub fn label(&self) -> String {
        match self {
            StageRole::Params => "params".into(),
            StageRole::Materialize(name) => format!("materialize {name:?}"),
            StageRole::Result => "result".into(),
        }
    }
}

/// One stage of a physical [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStage {
    /// The distributed plan to execute SPMD.
    pub plan: Plan,
    /// What happens to its output.
    pub role: StageRole,
    /// The planner's cardinality estimate for the stage result, compared
    /// against profiled actuals in EXPLAIN output. `None` for hand-written
    /// plans, which carry no estimates.
    pub estimated_rows: Option<f64>,
    /// The feedback-corrected cardinality that overrode the static
    /// estimate, when the planner ran in
    /// [`StatsMode::Feedback`](crate::stats::StatsMode) and its
    /// [`FeedbackCache`](crate::stats::FeedbackCache) held an observation
    /// for this stage's plan. `None` when the static estimate was used.
    pub feedback_rows: Option<f64>,
}

/// A multi-stage physical query: parameter and materialization stages run
/// first, the final stage produces the result.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Stages in execution order; the last produces the result.
    pub stages: Vec<QueryStage>,
    /// TPC-H query number (1–22) for reporting; 0 for ad-hoc queries
    /// lowered from a [`LogicalQuery`](crate::logical::LogicalQuery).
    pub number: u32,
}

impl Query {
    /// Single-stage query.
    pub fn single(number: u32, plan: Plan) -> Self {
        Self {
            stages: vec![QueryStage {
                plan,
                role: StageRole::Result,
                estimated_rows: None,
                feedback_rows: None,
            }],
            number,
        }
    }

    /// Multi-stage query: every stage before the last binds its first
    /// result row as parameters for later stages; the last produces the
    /// result. Fails with [`EngineError::Planner`] when `stages` is empty.
    pub fn staged(number: u32, stages: Vec<Plan>) -> Result<Self, EngineError> {
        Self::from_stages(
            number,
            stages
                .into_iter()
                .map(|plan| QueryStage {
                    plan,
                    role: StageRole::Params,
                    estimated_rows: None,
                    feedback_rows: None,
                })
                .collect(),
        )
    }

    /// Build a query from fully described stages. The last stage's role is
    /// forced to [`StageRole::Result`]; fails with [`EngineError::Planner`]
    /// when `stages` is empty or a non-final stage is marked `Result`.
    pub fn from_stages(number: u32, mut stages: Vec<QueryStage>) -> Result<Self, EngineError> {
        let Some(last) = stages.last_mut() else {
            return Err(EngineError::Planner(
                "query needs at least one stage".into(),
            ));
        };
        last.role = StageRole::Result;
        if stages[..stages.len() - 1]
            .iter()
            .any(|s| s.role == StageRole::Result)
        {
            return Err(EngineError::Planner(
                "only the last stage may produce the result".into(),
            ));
        }
        Ok(Self { stages, number })
    }
}

/// Build the distributed plan for TPC-H query `n` (1–22).
pub fn tpch_query(n: u32) -> Result<Query, EngineError> {
    let q = match n {
        1 => aggregates::q1(),
        2 => subqueries::q2(),
        3 => joins::q3(),
        4 => subqueries::q4(),
        5 => joins::q5(),
        6 => aggregates::q6(),
        7 => joins::q7(),
        8 => joins::q8(),
        9 => joins::q9(),
        10 => joins::q10(),
        11 => subqueries::q11()?,
        12 => joins::q12(),
        13 => aggregates::q13(),
        14 => joins::q14(),
        15 => subqueries::q15()?,
        16 => aggregates::q16(),
        17 => subqueries::q17(),
        18 => subqueries::q18(),
        19 => joins::q19(),
        20 => subqueries::q20(),
        21 => subqueries::q21(),
        22 => subqueries::q22()?,
        _ => return Err(EngineError::UnknownQuery(n)),
    };
    Ok(q)
}

/// All 22 query numbers.
pub const ALL_QUERIES: [u32; 22] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_build() {
        for n in ALL_QUERIES {
            let q = tpch_query(n).unwrap();
            assert_eq!(q.number, n);
            assert!(!q.stages.is_empty());
        }
    }

    #[test]
    fn unknown_query_rejected() {
        assert_eq!(tpch_query(0).unwrap_err(), EngineError::UnknownQuery(0));
        assert_eq!(tpch_query(23).unwrap_err(), EngineError::UnknownQuery(23));
    }

    #[test]
    fn every_query_gathers_at_the_coordinator() {
        for n in ALL_QUERIES {
            let q = tpch_query(n).unwrap();
            for stage in &q.stages {
                assert!(
                    stage.plan.exchange_count() > 0,
                    "query {n} stage has no exchange (cannot gather)"
                );
            }
        }
    }

    #[test]
    fn stage_roles_are_validated() {
        assert!(matches!(
            Query::staged(1, vec![]),
            Err(EngineError::Planner(_))
        ));
        let q = Query::staged(
            11,
            vec![Plan::scan(hsqp_tpch::TpchTable::Nation).gather(); 2],
        )
        .unwrap();
        assert_eq!(q.stages[0].role, StageRole::Params);
        assert_eq!(q.stages[1].role, StageRole::Result);
        assert!(matches!(
            Query::from_stages(
                0,
                vec![
                    QueryStage {
                        plan: Plan::scan(hsqp_tpch::TpchTable::Nation),
                        role: StageRole::Result,
                        estimated_rows: None,
                        feedback_rows: None,
                    },
                    QueryStage {
                        plan: Plan::scan(hsqp_tpch::TpchTable::Nation),
                        role: StageRole::Params,
                        estimated_rows: None,
                        feedback_rows: None,
                    },
                ],
            ),
            Err(EngineError::Planner(_))
        ));
    }
}
