//! Hand-built distributed physical plans for all 22 TPC-H queries.
//!
//! Plans follow the shape of Figure 6: unnested single-server plans with
//! exchange operators inserted where tuples must cross servers, plus the
//! two classic optimizations — broadcasting small join inputs instead of
//! hash-partitioning both sides, and pre-aggregation before reshuffling
//! group-by results. Correlated subqueries are manually decorrelated the
//! way HyPer's optimizer unnests them; scalar subqueries (e.g. Q17's
//! per-part average) become earlier *stages* whose first result row binds
//! [`Expr::Param`](crate::expr::Expr::Param) values for the final stage.

use crate::error::EngineError;
use crate::plan::Plan;

mod aggregates;
pub mod builder;
mod helpers;

pub use aggregates::q1_no_preagg;
pub use builder::{tpch_logical, BUILDER_QUERIES};
pub use helpers::{dist_agg, dist_agg_nopre, global_agg};
mod joins;
mod subqueries;

/// A multi-stage query: every stage before the last contributes its first
/// result row as parameters to subsequent stages.
#[derive(Debug, Clone)]
pub struct Query {
    /// Stages in execution order; the last produces the result.
    pub stages: Vec<Plan>,
    /// TPC-H query number (1–22), for reporting.
    pub number: u32,
}

impl Query {
    /// Single-stage query.
    pub fn single(number: u32, plan: Plan) -> Self {
        Self {
            stages: vec![plan],
            number,
        }
    }

    /// Multi-stage query.
    pub fn staged(number: u32, stages: Vec<Plan>) -> Self {
        assert!(!stages.is_empty(), "query needs at least one stage");
        Self { stages, number }
    }
}

/// Build the distributed plan for TPC-H query `n` (1–22).
pub fn tpch_query(n: u32) -> Result<Query, EngineError> {
    let q = match n {
        1 => aggregates::q1(),
        2 => subqueries::q2(),
        3 => joins::q3(),
        4 => subqueries::q4(),
        5 => joins::q5(),
        6 => aggregates::q6(),
        7 => joins::q7(),
        8 => joins::q8(),
        9 => joins::q9(),
        10 => joins::q10(),
        11 => subqueries::q11(),
        12 => joins::q12(),
        13 => aggregates::q13(),
        14 => joins::q14(),
        15 => subqueries::q15(),
        16 => aggregates::q16(),
        17 => subqueries::q17(),
        18 => subqueries::q18(),
        19 => joins::q19(),
        20 => subqueries::q20(),
        21 => subqueries::q21(),
        22 => subqueries::q22(),
        _ => return Err(EngineError::UnknownQuery(n)),
    };
    Ok(q)
}

/// All 22 query numbers.
pub const ALL_QUERIES: [u32; 22] = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_build() {
        for n in ALL_QUERIES {
            let q = tpch_query(n).unwrap();
            assert_eq!(q.number, n);
            assert!(!q.stages.is_empty());
        }
    }

    #[test]
    fn unknown_query_rejected() {
        assert_eq!(tpch_query(0).unwrap_err(), EngineError::UnknownQuery(0));
        assert_eq!(tpch_query(23).unwrap_err(), EngineError::UnknownQuery(23));
    }

    #[test]
    fn every_query_gathers_at_the_coordinator() {
        for n in ALL_QUERIES {
            let q = tpch_query(n).unwrap();
            for stage in &q.stages {
                assert!(
                    stage.exchange_count() > 0,
                    "query {n} stage has no exchange (cannot gather)"
                );
            }
        }
    }
}
