//! TPC-H queries with (correlated) subqueries: 2, 4, 11, 15, 17, 18, 20,
//! 21, 22 — manually decorrelated into joins, aggregations, and parameter
//! stages, the way HyPer's unnesting rewrites them.

use hsqp_storage::date_from_ymd;
use hsqp_tpch::TpchTable;

use super::helpers::{dist_agg, dist_agg_nopre, global_agg};
use super::{Query, Q22_CODES};
use crate::error::EngineError;
use crate::expr::{col, lit, litf, lits, Expr};
use crate::plan::{AggFunc, AggSpec, JoinKind, MapExpr, Plan, SortKey};

fn revenue() -> Expr {
    col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")))
}

/// partsupp ⨝ EUROPE suppliers with supplier details, partitioned by
/// partkey; shared by both uses inside Q2.
fn q2_eur_partsupp() -> Plan {
    let eur_nations = Plan::scan_cols(TpchTable::Nation, &["n_nationkey", "n_name", "n_regionkey"])
        .join(
            Plan::scan_filtered(
                TpchTable::Region,
                &["r_regionkey"],
                col("r_name").eq(lits("EUROPE")),
            )
            .broadcast(),
            &["n_regionkey"],
            &["r_regionkey"],
            JoinKind::LeftSemi,
        );
    let eur_supp = Plan::scan_cols(
        TpchTable::Supplier,
        &[
            "s_suppkey",
            "s_name",
            "s_address",
            "s_nationkey",
            "s_phone",
            "s_acctbal",
            "s_comment",
        ],
    )
    .join(
        eur_nations.broadcast(),
        &["s_nationkey"],
        &["n_nationkey"],
        JoinKind::Inner,
    );
    Plan::scan_cols(
        TpchTable::Partsupp,
        &["ps_partkey", "ps_suppkey", "ps_supplycost"],
    )
    .repartition(&["ps_partkey"])
    .join(
        eur_supp.broadcast(),
        &["ps_suppkey"],
        &["s_suppkey"],
        JoinKind::Inner,
    )
    // The cost stays a Decimal; join keys are canonicalized by logical
    // type, so it equi-joins against the Float64 MIN() aggregate below by
    // value (no explicit cast needed).
    .map(vec![
        MapExpr::new("ps_partkey", col("ps_partkey")),
        MapExpr::new("cost", col("ps_supplycost")),
        MapExpr::new("s_acctbal", col("s_acctbal")),
        MapExpr::new("s_name", col("s_name")),
        MapExpr::new("n_name", col("n_name")),
        MapExpr::new("s_address", col("s_address")),
        MapExpr::new("s_phone", col("s_phone")),
        MapExpr::new("s_comment", col("s_comment")),
    ])
}

/// Q2 — minimum-cost supplier. The correlated `min(ps_supplycost)` becomes
/// a per-part aggregate joined back on (partkey, cost).
pub fn q2() -> Query {
    let part = Plan::scan_filtered(
        TpchTable::Part,
        &["p_partkey", "p_mfgr"],
        col("p_size").eq(lit(15)).and(col("p_type").like("%BRASS")),
    )
    .repartition(&["p_partkey"]);
    let candidates = q2_eur_partsupp().join(part, &["ps_partkey"], &["p_partkey"], JoinKind::Inner);
    // Per-part minimum over the same candidate set (already co-partitioned
    // by partkey, so the aggregate is node-local).
    let min_cost = candidates
        .clone()
        .aggregate(
            &["ps_partkey"],
            vec![AggSpec::new(AggFunc::Min, col("cost"), "min_cost")],
        )
        .map(vec![
            MapExpr::new("mc_partkey", col("ps_partkey")),
            MapExpr::new("mc_cost", col("min_cost")),
        ]);
    let best = candidates.join(
        min_cost,
        &["ps_partkey", "cost"],
        &["mc_partkey", "mc_cost"],
        JoinKind::LeftSemi,
    );
    Query::single(
        2,
        best.gather().sort(
            vec![
                SortKey::desc("s_acctbal"),
                SortKey::asc("n_name"),
                SortKey::asc("s_name"),
                SortKey::asc("ps_partkey"),
            ],
            Some(100),
        ),
    )
}

/// Q4 — order priority checking: EXISTS becomes a semi join.
pub fn q4() -> Query {
    let orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey", "o_orderpriority"],
        col("o_orderdate")
            .ge(lit(date_from_ymd(1993, 7, 1)))
            .and(col("o_orderdate").lt(lit(date_from_ymd(1993, 10, 1)))),
    )
    .repartition(&["o_orderkey"]);
    let late_lines = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_orderkey"],
        col("l_commitdate").lt(col("l_receiptdate")),
    )
    .repartition(&["l_orderkey"]);
    let matched = orders.join(
        late_lines,
        &["o_orderkey"],
        &["l_orderkey"],
        JoinKind::LeftSemi,
    );
    let agg = dist_agg(
        matched,
        &["o_orderpriority"],
        vec![AggSpec::new(AggFunc::Count, lit(1), "order_count")],
    );
    Query::single(
        4,
        agg.gather()
            .sort(vec![SortKey::asc("o_orderpriority")], None),
    )
}

fn q11_germany_partsupp() -> Plan {
    let german_supp = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_nationkey"]).join(
        Plan::scan_filtered(
            TpchTable::Nation,
            &["n_nationkey"],
            col("n_name").eq(lits("GERMANY")),
        )
        .broadcast(),
        &["s_nationkey"],
        &["n_nationkey"],
        JoinKind::LeftSemi,
    );
    Plan::scan_cols(
        TpchTable::Partsupp,
        &["ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"],
    )
    .join(
        german_supp.broadcast(),
        &["ps_suppkey"],
        &["s_suppkey"],
        JoinKind::LeftSemi,
    )
    .map(vec![
        MapExpr::new("ps_partkey", col("ps_partkey")),
        MapExpr::new("stock_value", col("ps_supplycost").mul(col("ps_availqty"))),
    ])
}

/// Q11 — important stock identification. Stage 1 computes the global stock
/// value (the HAVING threshold); stage 2 filters groups against it.
pub fn q11() -> Result<Query, EngineError> {
    let total = global_agg(
        q11_germany_partsupp(),
        vec![AggSpec::new(AggFunc::Sum, col("stock_value"), "total")],
    );
    let per_part = dist_agg(
        q11_germany_partsupp(),
        &["ps_partkey"],
        vec![AggSpec::new(AggFunc::Sum, col("stock_value"), "value")],
    )
    .filter(col("value").gt(Expr::Param(0).mul(litf(0.0001))))
    .gather()
    .sort(vec![SortKey::desc("value")], None);
    Query::staged(11, vec![total, per_part])
}

fn q15_revenue_view() -> Plan {
    let lineitem = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_suppkey", "l_extendedprice", "l_discount"],
        col("l_shipdate")
            .ge(lit(date_from_ymd(1996, 1, 1)))
            .and(col("l_shipdate").lt(lit(date_from_ymd(1996, 4, 1)))),
    );
    dist_agg(
        lineitem,
        &["l_suppkey"],
        vec![AggSpec::new(AggFunc::Sum, revenue(), "total_revenue")],
    )
}

/// Q15 — top supplier. Stage 1 finds the maximum view revenue; stage 2
/// re-derives the view and keeps the supplier(s) within float epsilon of
/// the maximum (distributed f64 summation is order-sensitive).
pub fn q15() -> Result<Query, EngineError> {
    let max_rev = global_agg(
        q15_revenue_view(),
        vec![AggSpec::new(AggFunc::Max, col("total_revenue"), "max_rev")],
    );
    let winners = q15_revenue_view()
        .filter(
            col("total_revenue")
                .ge(Expr::Param(0).sub(litf(0.01)))
                .and(col("total_revenue").le(Expr::Param(0).add(litf(0.01)))),
        )
        .repartition(&["l_suppkey"]);
    let supplier = Plan::scan_cols(
        TpchTable::Supplier,
        &["s_suppkey", "s_name", "s_address", "s_phone"],
    )
    .repartition(&["s_suppkey"]);
    let joined = supplier.join(winners, &["s_suppkey"], &["l_suppkey"], JoinKind::Inner);
    Query::staged(
        15,
        vec![
            max_rev,
            joined.gather().sort(vec![SortKey::asc("s_suppkey")], None),
        ],
    )
}

/// Q17 — small-quantity-order revenue. The correlated AVG becomes a
/// per-part aggregate joined back on partkey.
pub fn q17() -> Query {
    let avg_qty = dist_agg(
        Plan::scan_cols(TpchTable::Lineitem, &["l_partkey", "l_quantity"]),
        &["l_partkey"],
        vec![AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty")],
    )
    .map(vec![
        MapExpr::new("ap_partkey", col("l_partkey")),
        MapExpr::new("threshold", litf(0.2).mul(col("avg_qty"))),
    ]);
    let part = Plan::scan_filtered(
        TpchTable::Part,
        &["p_partkey"],
        col("p_brand")
            .eq(lits("Brand#23"))
            .and(col("p_container").eq(lits("MED BOX"))),
    )
    .repartition(&["p_partkey"]);
    let lineitem = Plan::scan_cols(
        TpchTable::Lineitem,
        &["l_partkey", "l_quantity", "l_extendedprice"],
    )
    .repartition(&["l_partkey"])
    .join(part, &["l_partkey"], &["p_partkey"], JoinKind::LeftSemi)
    // avg_qty is partitioned by l_partkey as well — co-partitioned join.
    .join(avg_qty, &["l_partkey"], &["ap_partkey"], JoinKind::Inner)
    .filter(col("l_quantity").lt(col("threshold")));
    let agg = global_agg(
        lineitem,
        vec![AggSpec::new(
            AggFunc::Sum,
            col("l_extendedprice"),
            "sum_price",
        )],
    );
    let yearly = agg.map(vec![MapExpr::new(
        "avg_yearly",
        col("sum_price").div(litf(7.0)),
    )]);
    Query::single(17, yearly)
}

/// Q18 — large-volume customers (top 100 by order value).
pub fn q18() -> Query {
    let big_orders = dist_agg(
        Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey", "l_quantity"]),
        &["l_orderkey"],
        vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty")],
    )
    .filter(col("sum_qty").gt(litf(300.0)));
    let orders = Plan::scan_cols(
        TpchTable::Orders,
        &["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"],
    )
    .repartition(&["o_orderkey"])
    // big_orders is partitioned by l_orderkey — co-partitioned.
    .join(
        big_orders,
        &["o_orderkey"],
        &["l_orderkey"],
        JoinKind::Inner,
    )
    .repartition(&["o_custkey"]);
    let customer =
        Plan::scan_cols(TpchTable::Customer, &["c_custkey", "c_name"]).repartition(&["c_custkey"]);
    let joined = orders.join(customer, &["o_custkey"], &["c_custkey"], JoinKind::Inner);
    Query::single(
        18,
        joined.gather().sort(
            vec![SortKey::desc("o_totalprice"), SortKey::asc("o_orderdate")],
            Some(100),
        ),
    )
}

/// Q20 — potential part promotion: nested IN subqueries become semi joins
/// against aggregated shipment volumes.
pub fn q20() -> Query {
    let shipped = dist_agg(
        Plan::scan_filtered(
            TpchTable::Lineitem,
            &["l_partkey", "l_suppkey", "l_quantity"],
            col("l_shipdate")
                .ge(lit(date_from_ymd(1994, 1, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 1, 1)))),
        )
        .map(vec![
            MapExpr::new("l_partkey", col("l_partkey")),
            MapExpr::new("l_suppkey", col("l_suppkey")),
            MapExpr::new("l_quantity", col("l_quantity")),
        ]),
        &["l_partkey", "l_suppkey"],
        vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "shipped_qty")],
    )
    .map(vec![
        MapExpr::new("sq_partkey", col("l_partkey")),
        MapExpr::new("sq_suppkey", col("l_suppkey")),
        MapExpr::new("half_qty", litf(0.5).mul(col("shipped_qty"))),
    ]);
    let forest_parts = Plan::scan_filtered(
        TpchTable::Part,
        &["p_partkey"],
        col("p_name").like("forest%"),
    )
    .broadcast();
    let candidates = Plan::scan_cols(
        TpchTable::Partsupp,
        &["ps_partkey", "ps_suppkey", "ps_availqty"],
    )
    .join(
        forest_parts,
        &["ps_partkey"],
        &["p_partkey"],
        JoinKind::LeftSemi,
    )
    .repartition(&["ps_partkey", "ps_suppkey"])
    .join(
        shipped,
        &["ps_partkey", "ps_suppkey"],
        &["sq_partkey", "sq_suppkey"],
        JoinKind::Inner,
    )
    .filter(col("ps_availqty").gt(col("half_qty")))
    // DISTINCT supplier keys before the final semi join.
    .aggregate(
        &["ps_suppkey"],
        vec![AggSpec::new(AggFunc::Count, lit(1), "hits")],
    )
    .repartition(&["ps_suppkey"]);
    let canada_supp = Plan::scan_cols(
        TpchTable::Supplier,
        &["s_suppkey", "s_name", "s_address", "s_nationkey"],
    )
    .join(
        Plan::scan_filtered(
            TpchTable::Nation,
            &["n_nationkey"],
            col("n_name").eq(lits("CANADA")),
        )
        .broadcast(),
        &["s_nationkey"],
        &["n_nationkey"],
        JoinKind::LeftSemi,
    )
    .repartition(&["s_suppkey"]);
    let result = canada_supp.join(
        candidates,
        &["s_suppkey"],
        &["ps_suppkey"],
        JoinKind::LeftSemi,
    );
    Query::single(20, result.gather().sort(vec![SortKey::asc("s_name")], None))
}

/// Q21 — suppliers who kept orders waiting. The EXISTS / NOT EXISTS pair
/// over other suppliers of the same order reduces to distinct-supplier
/// counts per order: the late line's supplier is at fault iff the order
/// has ≥ 2 suppliers in total and exactly 1 supplier with late lines.
pub fn q21() -> Query {
    let all_supp = dist_agg_nopre(
        Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey", "l_suppkey"]).map(vec![
            MapExpr::new("ao_orderkey", col("l_orderkey")),
            MapExpr::new("ao_suppkey", col("l_suppkey")),
        ]),
        &["ao_orderkey"],
        vec![AggSpec::new(
            AggFunc::CountDistinct,
            col("ao_suppkey"),
            "n_supp",
        )],
    );
    let late_supp = dist_agg_nopre(
        Plan::scan_filtered(
            TpchTable::Lineitem,
            &["l_orderkey", "l_suppkey"],
            col("l_receiptdate").gt(col("l_commitdate")),
        )
        .map(vec![
            MapExpr::new("lo_orderkey", col("l_orderkey")),
            MapExpr::new("lo_suppkey", col("l_suppkey")),
        ]),
        &["lo_orderkey"],
        vec![AggSpec::new(
            AggFunc::CountDistinct,
            col("lo_suppkey"),
            "n_late_supp",
        )],
    );
    let saudi_supp = Plan::scan_cols(TpchTable::Supplier, &["s_suppkey", "s_name", "s_nationkey"])
        .join(
            Plan::scan_filtered(
                TpchTable::Nation,
                &["n_nationkey"],
                col("n_name").eq(lits("SAUDI ARABIA")),
            )
            .broadcast(),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::LeftSemi,
        );
    let f_orders = Plan::scan_filtered(
        TpchTable::Orders,
        &["o_orderkey"],
        col("o_orderstatus").eq(lits("F")),
    )
    .repartition(&["o_orderkey"]);
    let late_lines = Plan::scan_filtered(
        TpchTable::Lineitem,
        &["l_orderkey", "l_suppkey"],
        col("l_receiptdate").gt(col("l_commitdate")),
    )
    .join(
        saudi_supp.broadcast(),
        &["l_suppkey"],
        &["s_suppkey"],
        JoinKind::Inner,
    )
    .repartition(&["l_orderkey"]);
    let joined = late_lines
        .join(
            f_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::LeftSemi,
        )
        // all_supp / late_supp are partitioned by orderkey — co-partitioned.
        .join(all_supp, &["l_orderkey"], &["ao_orderkey"], JoinKind::Inner)
        .join(
            late_supp,
            &["l_orderkey"],
            &["lo_orderkey"],
            JoinKind::Inner,
        )
        .filter(col("n_supp").gt(lit(1)).and(col("n_late_supp").eq(lit(1))));
    let agg = dist_agg(
        joined,
        &["s_name"],
        vec![AggSpec::new(AggFunc::Count, lit(1), "numwait")],
    );
    Query::single(
        21,
        agg.gather().sort(
            vec![SortKey::desc("numwait"), SortKey::asc("s_name")],
            Some(100),
        ),
    )
}

/// Q22 — global sales opportunity. Stage 1 computes the average positive
/// account balance; stage 2 anti-joins orders away and groups by country
/// code.
pub fn q22() -> Result<Query, EngineError> {
    let avg_bal = global_agg(
        Plan::scan_filtered(
            TpchTable::Customer,
            &["c_acctbal"],
            col("c_phone")
                .substr(1, 2)
                .in_str(&Q22_CODES)
                .and(col("c_acctbal").gt(litf(0.0))),
        ),
        vec![AggSpec::new(AggFunc::Avg, col("c_acctbal"), "avg_bal")],
    );
    let customers = Plan::scan_filtered(
        TpchTable::Customer,
        &["c_custkey", "c_phone", "c_acctbal"],
        col("c_phone").substr(1, 2).in_str(&Q22_CODES),
    )
    .filter(col("c_acctbal").gt(Expr::Param(0)))
    .repartition(&["c_custkey"]);
    let orders = Plan::scan_cols(TpchTable::Orders, &["o_custkey"]).repartition(&["o_custkey"]);
    let no_orders = customers
        .join(orders, &["c_custkey"], &["o_custkey"], JoinKind::LeftAnti)
        .map(vec![
            MapExpr::new("cntrycode", col("c_phone").substr(1, 2)),
            MapExpr::new("c_acctbal", col("c_acctbal")),
        ]);
    let agg = dist_agg(
        no_orders,
        &["cntrycode"],
        vec![
            AggSpec::new(AggFunc::Count, lit(1), "numcust"),
            AggSpec::new(AggFunc::Sum, col("c_acctbal"), "totacctbal"),
        ],
    );
    Query::staged(
        22,
        vec![
            avg_bal,
            agg.gather().sort(vec![SortKey::asc("cntrycode")], None),
        ],
    )
}
