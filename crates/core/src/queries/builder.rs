//! TPC-H queries expressed against the logical plan builder.
//!
//! These are the queries migrated from the hand-written distributed plans
//! (the other modules in [`queries`](crate::queries)) to the
//! [`LogicalPlan`] API: no exchange operators, no aggregation phases, no
//! broadcast decisions — the [`planner`](crate::planner) derives all of
//! that. The hand-written plans remain the differential-testing oracle:
//! `tests/planner_differential.rs` asserts both produce identical results.

use hsqp_storage::date_from_ymd;
use hsqp_tpch::TpchTable;

use crate::error::EngineError;
use crate::expr::{col, lit, litf, lits, Expr};
use crate::logical::LogicalPlan;
use crate::plan::{AggFunc, AggSpec, JoinKind, MapExpr, SortKey};

/// TPC-H query numbers available through [`tpch_logical`].
pub const BUILDER_QUERIES: [u32; 8] = [1, 3, 4, 5, 6, 10, 12, 14];

/// Build the logical plan for TPC-H query `n`.
///
/// Returns [`EngineError::Unsupported`] for valid query numbers that have
/// not been migrated to the builder yet (see `ROADMAP.md`), and
/// [`EngineError::UnknownQuery`] for numbers outside 1–22.
pub fn tpch_logical(n: u32) -> Result<LogicalPlan, EngineError> {
    match n {
        1 => Ok(q1()),
        3 => Ok(q3()),
        4 => Ok(q4()),
        5 => Ok(q5()),
        6 => Ok(q6()),
        10 => Ok(q10()),
        12 => Ok(q12()),
        14 => Ok(q14()),
        2 | 7..=9 | 11 | 13 | 15..=22 => Err(EngineError::Unsupported(format!(
            "TPC-H query {n} is not yet migrated to the logical builder \
             (available: {BUILDER_QUERIES:?})"
        ))),
        _ => Err(EngineError::UnknownQuery(n)),
    }
}

fn revenue() -> Expr {
    col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")))
}

/// Q1 — pricing summary report.
fn q1() -> LogicalPlan {
    let cutoff = date_from_ymd(1998, 12, 1) - 90;
    let disc_price = revenue();
    let charge = disc_price.clone().mul(litf(1.0).add(col("l_tax")));
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_shipdate").le(lit(cutoff)))
        .aggregate(
            &["l_returnflag", "l_linestatus"],
            vec![
                AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
                AggSpec::new(AggFunc::Sum, col("l_extendedprice"), "sum_base_price"),
                AggSpec::new(AggFunc::Sum, disc_price, "sum_disc_price"),
                AggSpec::new(AggFunc::Sum, charge, "sum_charge"),
                AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty"),
                AggSpec::new(AggFunc::Avg, col("l_extendedprice"), "avg_price"),
                AggSpec::new(AggFunc::Avg, col("l_discount"), "avg_disc"),
                AggSpec::new(AggFunc::Count, lit(1), "count_order"),
            ],
        )
        .sort(vec![
            SortKey::asc("l_returnflag"),
            SortKey::asc("l_linestatus"),
        ])
}

/// Q3 — shipping priority (top-10 revenue).
fn q3() -> LogicalPlan {
    let cutoff = date_from_ymd(1995, 3, 15);
    let customer =
        LogicalPlan::scan(TpchTable::Customer).filter(col("c_mktsegment").eq(lits("BUILDING")));
    let cust_orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(col("o_orderdate").lt(lit(cutoff)))
        .join(customer, &["o_custkey"], &["c_custkey"], JoinKind::LeftSemi);
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_shipdate").gt(lit(cutoff)))
        .join(
            cust_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .aggregate(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
        )
        .top_k(
            vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")],
            10,
        )
}

/// Q4 — order priority checking (EXISTS as a semi join).
fn q4() -> LogicalPlan {
    let late_lines =
        LogicalPlan::scan(TpchTable::Lineitem).filter(col("l_commitdate").lt(col("l_receiptdate")));
    LogicalPlan::scan(TpchTable::Orders)
        .filter(
            col("o_orderdate")
                .ge(lit(date_from_ymd(1993, 7, 1)))
                .and(col("o_orderdate").lt(lit(date_from_ymd(1993, 10, 1)))),
        )
        .join(
            late_lines,
            &["o_orderkey"],
            &["l_orderkey"],
            JoinKind::LeftSemi,
        )
        .aggregate(
            &["o_orderpriority"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "order_count")],
        )
        .sort(vec![SortKey::asc("o_orderpriority")])
}

/// Q5 — local supplier volume within ASIA.
fn q5() -> LogicalPlan {
    let asia_nations = LogicalPlan::scan(TpchTable::Nation)
        .join(
            LogicalPlan::scan(TpchTable::Region).filter(col("r_name").eq(lits("ASIA"))),
            &["n_regionkey"],
            &["r_regionkey"],
            JoinKind::LeftSemi,
        )
        .select(vec![
            MapExpr::new("sn_key", col("n_nationkey")),
            MapExpr::new("sn_name", col("n_name")),
        ]);
    let supp_nation = LogicalPlan::scan(TpchTable::Supplier)
        .join(asia_nations, &["s_nationkey"], &["sn_key"], JoinKind::Inner)
        .select(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nationkey", col("s_nationkey")),
            MapExpr::new("n_name", col("sn_name")),
        ]);
    let cust_orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(
            col("o_orderdate")
                .ge(lit(date_from_ymd(1994, 1, 1)))
                .and(col("o_orderdate").lt(lit(date_from_ymd(1995, 1, 1)))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Customer),
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::Inner,
        );
    LogicalPlan::scan(TpchTable::Lineitem)
        .join(
            cust_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .join(
            supp_nation,
            &["l_suppkey", "c_nationkey"],
            &["supp_key", "supp_nationkey"],
            JoinKind::Inner,
        )
        .aggregate(
            &["n_name"],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
        )
        .sort(vec![SortKey::desc("revenue")])
}

/// Q6 — forecasting revenue change.
fn q6() -> LogicalPlan {
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1994, 1, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 1, 1))))
                .and(col("l_discount").between(litf(0.0499), litf(0.0701)))
                .and(col("l_quantity").lt(litf(24.0))),
        )
        .aggregate(
            &[],
            vec![AggSpec::new(
                AggFunc::Sum,
                col("l_extendedprice").mul(col("l_discount")),
                "revenue",
            )],
        )
}

/// Q10 — returned-item reporting (top 20 customers by lost revenue).
fn q10() -> LogicalPlan {
    let orders = LogicalPlan::scan(TpchTable::Orders).filter(
        col("o_orderdate")
            .ge(lit(date_from_ymd(1993, 10, 1)))
            .and(col("o_orderdate").lt(lit(date_from_ymd(1994, 1, 1)))),
    );
    let customer = LogicalPlan::scan(TpchTable::Customer).join(
        LogicalPlan::scan(TpchTable::Nation),
        &["c_nationkey"],
        &["n_nationkey"],
        JoinKind::Inner,
    );
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_returnflag").eq(lits("R")))
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .join(customer, &["o_custkey"], &["c_custkey"], JoinKind::Inner)
        .aggregate(
            &[
                "c_custkey",
                "c_name",
                "c_acctbal",
                "c_phone",
                "n_name",
                "c_address",
                "c_comment",
            ],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
        )
        .top_k(vec![SortKey::desc("revenue")], 20)
}

/// Q12 — shipping modes and order priority.
fn q12() -> LogicalPlan {
    let urgent = col("o_orderpriority").in_str(&["1-URGENT", "2-HIGH"]);
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipmode")
                .in_str(&["MAIL", "SHIP"])
                .and(col("l_commitdate").lt(col("l_receiptdate")))
                .and(col("l_shipdate").lt(col("l_commitdate")))
                .and(col("l_receiptdate").ge(lit(date_from_ymd(1994, 1, 1))))
                .and(col("l_receiptdate").lt(lit(date_from_ymd(1995, 1, 1)))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Orders),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("l_shipmode", col("l_shipmode")),
            MapExpr::new("high_line", urgent.clone().case(lit(1), lit(0))),
            MapExpr::new("low_line", urgent.not().case(lit(1), lit(0))),
        ])
        .aggregate(
            &["l_shipmode"],
            vec![
                AggSpec::new(AggFunc::Sum, col("high_line"), "high_line_count"),
                AggSpec::new(AggFunc::Sum, col("low_line"), "low_line_count"),
            ],
        )
        .sort(vec![SortKey::asc("l_shipmode")])
}

/// Q14 — promotion effect within one month.
fn q14() -> LogicalPlan {
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1995, 9, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 10, 1)))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Part),
            &["l_partkey"],
            &["p_partkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new(
                "promo",
                col("p_type").like("PROMO%").case(revenue(), litf(0.0)),
            ),
            MapExpr::new("rev", revenue()),
        ])
        .aggregate(
            &[],
            vec![
                AggSpec::new(AggFunc::Sum, col("promo"), "promo_sum"),
                AggSpec::new(AggFunc::Sum, col("rev"), "rev_sum"),
            ],
        )
        .select(vec![MapExpr::new(
            "promo_revenue",
            litf(100.0).mul(col("promo_sum")).div(col("rev_sum")),
        )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};

    #[test]
    fn all_builder_queries_lower() {
        let planner = Planner::new(PlannerConfig::new(4));
        for n in BUILDER_QUERIES {
            let lp = tpch_logical(n).unwrap();
            let plan = planner
                .plan(&lp)
                .unwrap_or_else(|e| panic!("query {n} failed to lower: {e}"));
            assert!(
                plan.exchange_count() >= 1,
                "query {n} must exchange at least once"
            );
        }
    }

    #[test]
    fn unmigrated_and_unknown_are_distinguished() {
        assert!(matches!(tpch_logical(9), Err(EngineError::Unsupported(_))));
        assert!(matches!(
            tpch_logical(23),
            Err(EngineError::UnknownQuery(23))
        ));
        assert!(matches!(tpch_logical(0), Err(EngineError::UnknownQuery(0))));
    }

    #[test]
    fn lowered_output_schemas_match_the_handwritten_results() {
        // The differential tests compare result *contents*; here we pin the
        // output schemas (names, in order) so a migration can't silently
        // drop or reorder columns.
        let planner = Planner::new(PlannerConfig::new(2));
        let cols = |n: u32| planner.output_columns(&tpch_logical(n).unwrap()).unwrap();
        assert_eq!(
            cols(1)[..3],
            [
                "l_returnflag".to_string(),
                "l_linestatus".into(),
                "sum_qty".into()
            ]
        );
        assert_eq!(
            cols(3),
            vec![
                "l_orderkey".to_string(),
                "o_orderdate".into(),
                "o_shippriority".into(),
                "revenue".into()
            ]
        );
        assert_eq!(cols(6), vec!["revenue".to_string()]);
        assert_eq!(cols(14), vec!["promo_revenue".to_string()]);
    }
}
