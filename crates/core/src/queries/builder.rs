//! All 22 TPC-H queries expressed against the logical query builder.
//!
//! These are the queries migrated from the hand-written distributed plans
//! (the other modules in [`queries`](crate::queries)) to the
//! [`LogicalPlan`] / [`LogicalQuery`] API: no exchange operators, no
//! aggregation phases, no broadcast decisions — the
//! [`planner`](crate::planner) derives all of that. Scalar subqueries
//! (Q11's HAVING threshold, Q15's maximum revenue, Q22's average balance)
//! become earlier [`LogicalQuery`] stages binding
//! [`param`] references, and shared subplans (Q2's
//! candidate set, Q15's revenue view) are registered once with
//! [`LogicalQuery::with`] and scanned via [`LogicalPlan::from_cte`]. The
//! hand-written plans remain purely the differential-testing oracle:
//! `tests/planner_differential.rs` asserts both produce identical results.

use hsqp_storage::date_from_ymd;
use hsqp_tpch::TpchTable;

use super::Q22_CODES;
use crate::error::EngineError;
use crate::expr::{col, lit, litf, lits, param, Expr};
use crate::logical::{LogicalPlan, LogicalQuery};
use crate::plan::{AggFunc, AggSpec, JoinKind, MapExpr, SortKey};

/// Build the logical query for TPC-H query `n` (1–22).
///
/// Returns [`EngineError::UnknownQuery`] for numbers outside 1–22.
pub fn tpch_logical(n: u32) -> Result<LogicalQuery, EngineError> {
    match n {
        1 => Ok(q1().into()),
        2 => Ok(q2()),
        3 => Ok(q3().into()),
        4 => Ok(q4().into()),
        5 => Ok(q5().into()),
        6 => Ok(q6().into()),
        7 => Ok(q7().into()),
        8 => Ok(q8().into()),
        9 => Ok(q9().into()),
        10 => Ok(q10().into()),
        11 => Ok(q11()),
        12 => Ok(q12().into()),
        13 => Ok(q13().into()),
        14 => Ok(q14().into()),
        15 => Ok(q15()),
        16 => Ok(q16().into()),
        17 => Ok(q17().into()),
        18 => Ok(q18().into()),
        19 => Ok(q19().into()),
        20 => Ok(q20().into()),
        21 => Ok(q21().into()),
        22 => Ok(q22()),
        _ => Err(EngineError::UnknownQuery(n)),
    }
}

fn revenue() -> Expr {
    col("l_extendedprice").mul(litf(1.0).sub(col("l_discount")))
}

/// Q1 — pricing summary report.
fn q1() -> LogicalPlan {
    let cutoff = date_from_ymd(1998, 12, 1) - 90;
    let disc_price = revenue();
    let charge = disc_price.clone().mul(litf(1.0).add(col("l_tax")));
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_shipdate").le(lit(cutoff)))
        .aggregate(
            &["l_returnflag", "l_linestatus"],
            vec![
                AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty"),
                AggSpec::new(AggFunc::Sum, col("l_extendedprice"), "sum_base_price"),
                AggSpec::new(AggFunc::Sum, disc_price, "sum_disc_price"),
                AggSpec::new(AggFunc::Sum, charge, "sum_charge"),
                AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty"),
                AggSpec::new(AggFunc::Avg, col("l_extendedprice"), "avg_price"),
                AggSpec::new(AggFunc::Avg, col("l_discount"), "avg_disc"),
                AggSpec::new(AggFunc::Count, lit(1), "count_order"),
            ],
        )
        .sort(vec![
            SortKey::asc("l_returnflag"),
            SortKey::asc("l_linestatus"),
        ])
}

/// Q3 — shipping priority (top-10 revenue).
fn q3() -> LogicalPlan {
    let cutoff = date_from_ymd(1995, 3, 15);
    let customer =
        LogicalPlan::scan(TpchTable::Customer).filter(col("c_mktsegment").eq(lits("BUILDING")));
    let cust_orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(col("o_orderdate").lt(lit(cutoff)))
        .join(customer, &["o_custkey"], &["c_custkey"], JoinKind::LeftSemi);
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_shipdate").gt(lit(cutoff)))
        .join(
            cust_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .aggregate(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
        )
        .top_k(
            vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")],
            10,
        )
}

/// Q4 — order priority checking (EXISTS as a semi join).
fn q4() -> LogicalPlan {
    let late_lines =
        LogicalPlan::scan(TpchTable::Lineitem).filter(col("l_commitdate").lt(col("l_receiptdate")));
    LogicalPlan::scan(TpchTable::Orders)
        .filter(
            col("o_orderdate")
                .ge(lit(date_from_ymd(1993, 7, 1)))
                .and(col("o_orderdate").lt(lit(date_from_ymd(1993, 10, 1)))),
        )
        .join(
            late_lines,
            &["o_orderkey"],
            &["l_orderkey"],
            JoinKind::LeftSemi,
        )
        .aggregate(
            &["o_orderpriority"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "order_count")],
        )
        .sort(vec![SortKey::asc("o_orderpriority")])
}

/// Q5 — local supplier volume within ASIA.
fn q5() -> LogicalPlan {
    let asia_nations = LogicalPlan::scan(TpchTable::Nation)
        .join(
            LogicalPlan::scan(TpchTable::Region).filter(col("r_name").eq(lits("ASIA"))),
            &["n_regionkey"],
            &["r_regionkey"],
            JoinKind::LeftSemi,
        )
        .select(vec![
            MapExpr::new("sn_key", col("n_nationkey")),
            MapExpr::new("sn_name", col("n_name")),
        ]);
    let supp_nation = LogicalPlan::scan(TpchTable::Supplier)
        .join(asia_nations, &["s_nationkey"], &["sn_key"], JoinKind::Inner)
        .select(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nationkey", col("s_nationkey")),
            MapExpr::new("n_name", col("sn_name")),
        ]);
    let cust_orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(
            col("o_orderdate")
                .ge(lit(date_from_ymd(1994, 1, 1)))
                .and(col("o_orderdate").lt(lit(date_from_ymd(1995, 1, 1)))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Customer),
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::Inner,
        );
    LogicalPlan::scan(TpchTable::Lineitem)
        .join(
            cust_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .join(
            supp_nation,
            &["l_suppkey", "c_nationkey"],
            &["supp_key", "supp_nationkey"],
            JoinKind::Inner,
        )
        .aggregate(
            &["n_name"],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
        )
        .sort(vec![SortKey::desc("revenue")])
}

/// Q6 — forecasting revenue change.
fn q6() -> LogicalPlan {
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1994, 1, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 1, 1))))
                .and(col("l_discount").between(litf(0.0499), litf(0.0701)))
                .and(col("l_quantity").lt(litf(24.0))),
        )
        .aggregate(
            &[],
            vec![AggSpec::new(
                AggFunc::Sum,
                col("l_extendedprice").mul(col("l_discount")),
                "revenue",
            )],
        )
}

/// Q10 — returned-item reporting (top 20 customers by lost revenue).
fn q10() -> LogicalPlan {
    let orders = LogicalPlan::scan(TpchTable::Orders).filter(
        col("o_orderdate")
            .ge(lit(date_from_ymd(1993, 10, 1)))
            .and(col("o_orderdate").lt(lit(date_from_ymd(1994, 1, 1)))),
    );
    let customer = LogicalPlan::scan(TpchTable::Customer).join(
        LogicalPlan::scan(TpchTable::Nation),
        &["c_nationkey"],
        &["n_nationkey"],
        JoinKind::Inner,
    );
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_returnflag").eq(lits("R")))
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .join(customer, &["o_custkey"], &["c_custkey"], JoinKind::Inner)
        .aggregate(
            &[
                "c_custkey",
                "c_name",
                "c_acctbal",
                "c_phone",
                "n_name",
                "c_address",
                "c_comment",
            ],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")],
        )
        .top_k(vec![SortKey::desc("revenue")], 20)
}

/// Q12 — shipping modes and order priority.
fn q12() -> LogicalPlan {
    let urgent = col("o_orderpriority").in_str(&["1-URGENT", "2-HIGH"]);
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipmode")
                .in_str(&["MAIL", "SHIP"])
                .and(col("l_commitdate").lt(col("l_receiptdate")))
                .and(col("l_shipdate").lt(col("l_commitdate")))
                .and(col("l_receiptdate").ge(lit(date_from_ymd(1994, 1, 1))))
                .and(col("l_receiptdate").lt(lit(date_from_ymd(1995, 1, 1)))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Orders),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("l_shipmode", col("l_shipmode")),
            MapExpr::new("high_line", urgent.clone().case(lit(1), lit(0))),
            MapExpr::new("low_line", urgent.not().case(lit(1), lit(0))),
        ])
        .aggregate(
            &["l_shipmode"],
            vec![
                AggSpec::new(AggFunc::Sum, col("high_line"), "high_line_count"),
                AggSpec::new(AggFunc::Sum, col("low_line"), "low_line_count"),
            ],
        )
        .sort(vec![SortKey::asc("l_shipmode")])
}

/// Q14 — promotion effect within one month.
fn q14() -> LogicalPlan {
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1995, 9, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 10, 1)))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Part),
            &["l_partkey"],
            &["p_partkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new(
                "promo",
                col("p_type").like("PROMO%").case(revenue(), litf(0.0)),
            ),
            MapExpr::new("rev", revenue()),
        ])
        .aggregate(
            &[],
            vec![
                AggSpec::new(AggFunc::Sum, col("promo"), "promo_sum"),
                AggSpec::new(AggFunc::Sum, col("rev"), "rev_sum"),
            ],
        )
        .select(vec![MapExpr::new(
            "promo_revenue",
            litf(100.0).mul(col("promo_sum")).div(col("rev_sum")),
        )])
}

/// Q2 — minimum-cost supplier. The candidate set (EUROPE partsupp ⨝ BRASS
/// parts) is planned once as a shared subplan; the correlated
/// `min(ps_supplycost)` becomes a per-part aggregate over the same CTE,
/// semi-joined back on (partkey, cost).
fn q2() -> LogicalQuery {
    let eur_nations = LogicalPlan::scan(TpchTable::Nation).join(
        LogicalPlan::scan(TpchTable::Region).filter(col("r_name").eq(lits("EUROPE"))),
        &["n_regionkey"],
        &["r_regionkey"],
        JoinKind::LeftSemi,
    );
    let eur_supp = LogicalPlan::scan(TpchTable::Supplier).join(
        eur_nations,
        &["s_nationkey"],
        &["n_nationkey"],
        JoinKind::Inner,
    );
    let part = LogicalPlan::scan(TpchTable::Part)
        .filter(col("p_size").eq(lit(15)).and(col("p_type").like("%BRASS")))
        .project(&["p_partkey", "p_mfgr"]);
    let candidates = LogicalPlan::scan(TpchTable::Partsupp)
        .join(eur_supp, &["ps_suppkey"], &["s_suppkey"], JoinKind::Inner)
        // The cost stays a Decimal; join keys are canonicalized by logical
        // type, so it equi-joins against the Float64 MIN() aggregate by
        // value (no explicit cast needed).
        .select(vec![
            MapExpr::new("ps_partkey", col("ps_partkey")),
            MapExpr::new("cost", col("ps_supplycost")),
            MapExpr::new("s_acctbal", col("s_acctbal")),
            MapExpr::new("s_name", col("s_name")),
            MapExpr::new("n_name", col("n_name")),
            MapExpr::new("s_address", col("s_address")),
            MapExpr::new("s_phone", col("s_phone")),
            MapExpr::new("s_comment", col("s_comment")),
        ])
        .join(part, &["ps_partkey"], &["p_partkey"], JoinKind::Inner);
    let min_cost = LogicalPlan::from_cte("candidates")
        .aggregate(
            &["ps_partkey"],
            vec![AggSpec::new(AggFunc::Min, col("cost"), "min_cost")],
        )
        .select(vec![
            MapExpr::new("mc_partkey", col("ps_partkey")),
            MapExpr::new("mc_cost", col("min_cost")),
        ]);
    let best = LogicalPlan::from_cte("candidates")
        .join(
            min_cost,
            &["ps_partkey", "cost"],
            &["mc_partkey", "mc_cost"],
            JoinKind::LeftSemi,
        )
        .top_k(
            vec![
                SortKey::desc("s_acctbal"),
                SortKey::asc("n_name"),
                SortKey::asc("s_name"),
                SortKey::asc("ps_partkey"),
            ],
            100,
        );
    LogicalQuery::cte("candidates", candidates).then(best)
}

/// nation filtered to FRANCE/GERMANY, for both sides of Q7.
fn q7_nations() -> LogicalPlan {
    LogicalPlan::scan(TpchTable::Nation).filter(col("n_name").in_str(&["FRANCE", "GERMANY"]))
}

/// Q7 — volume shipping between FRANCE and GERMANY.
fn q7() -> LogicalPlan {
    let supp_nation = LogicalPlan::scan(TpchTable::Supplier)
        .join(
            q7_nations(),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nation", col("n_name")),
        ]);
    let cust_nation = LogicalPlan::scan(TpchTable::Customer)
        .join(
            q7_nations(),
            &["c_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("cust_key", col("c_custkey")),
            MapExpr::new("cust_nation", col("n_name")),
        ]);
    let orders_cust = LogicalPlan::scan(TpchTable::Orders).join(
        cust_nation,
        &["o_custkey"],
        &["cust_key"],
        JoinKind::Inner,
    );
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1995, 1, 1)))
                .and(col("l_shipdate").le(lit(date_from_ymd(1996, 12, 31)))),
        )
        .join(supp_nation, &["l_suppkey"], &["supp_key"], JoinKind::Inner)
        .join(
            orders_cust,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .filter(
            col("supp_nation")
                .eq(lits("FRANCE"))
                .and(col("cust_nation").eq(lits("GERMANY")))
                .or(col("supp_nation")
                    .eq(lits("GERMANY"))
                    .and(col("cust_nation").eq(lits("FRANCE")))),
        )
        .select(vec![
            MapExpr::new("supp_nation", col("supp_nation")),
            MapExpr::new("cust_nation", col("cust_nation")),
            MapExpr::new("l_year", col("l_shipdate").year()),
            MapExpr::new("volume", revenue()),
        ])
        .aggregate(
            &["supp_nation", "cust_nation", "l_year"],
            vec![AggSpec::new(AggFunc::Sum, col("volume"), "revenue")],
        )
        .sort(vec![
            SortKey::asc("supp_nation"),
            SortKey::asc("cust_nation"),
            SortKey::asc("l_year"),
        ])
}

/// Q8 — national market share of BRAZIL within AMERICA.
fn q8() -> LogicalPlan {
    let part =
        LogicalPlan::scan(TpchTable::Part).filter(col("p_type").eq(lits("ECONOMY ANODIZED STEEL")));
    let supp_nation = LogicalPlan::scan(TpchTable::Supplier)
        .join(
            LogicalPlan::scan(TpchTable::Nation),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("supp_nation", col("n_name")),
        ]);
    let america_nations = LogicalPlan::scan(TpchTable::Nation).join(
        LogicalPlan::scan(TpchTable::Region).filter(col("r_name").eq(lits("AMERICA"))),
        &["n_regionkey"],
        &["r_regionkey"],
        JoinKind::LeftSemi,
    );
    let customer_america = LogicalPlan::scan(TpchTable::Customer).join(
        america_nations,
        &["c_nationkey"],
        &["n_nationkey"],
        JoinKind::LeftSemi,
    );
    let orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(
            col("o_orderdate")
                .ge(lit(date_from_ymd(1995, 1, 1)))
                .and(col("o_orderdate").le(lit(date_from_ymd(1996, 12, 31)))),
        )
        .join(
            customer_america,
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::LeftSemi,
        );
    LogicalPlan::scan(TpchTable::Lineitem)
        .join(part, &["l_partkey"], &["p_partkey"], JoinKind::LeftSemi)
        .join(supp_nation, &["l_suppkey"], &["supp_key"], JoinKind::Inner)
        .join(orders, &["l_orderkey"], &["o_orderkey"], JoinKind::Inner)
        .select(vec![
            MapExpr::new("o_year", col("o_orderdate").year()),
            MapExpr::new("volume", revenue()),
            MapExpr::new(
                "brazil_volume",
                col("supp_nation")
                    .eq(lits("BRAZIL"))
                    .case(revenue(), litf(0.0)),
            ),
        ])
        .aggregate(
            &["o_year"],
            vec![
                AggSpec::new(AggFunc::Sum, col("brazil_volume"), "brazil"),
                AggSpec::new(AggFunc::Sum, col("volume"), "total"),
            ],
        )
        .select(vec![
            MapExpr::new("o_year", col("o_year")),
            MapExpr::new("mkt_share", col("brazil").div(col("total"))),
        ])
        .sort(vec![SortKey::asc("o_year")])
}

/// Q9 — product-type profit measure across all nations and years.
fn q9() -> LogicalPlan {
    let part = LogicalPlan::scan(TpchTable::Part).filter(col("p_name").like("%green%"));
    let supp_nation = LogicalPlan::scan(TpchTable::Supplier)
        .join(
            LogicalPlan::scan(TpchTable::Nation),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("supp_key", col("s_suppkey")),
            MapExpr::new("nation", col("n_name")),
        ]);
    LogicalPlan::scan(TpchTable::Lineitem)
        .join(part, &["l_partkey"], &["p_partkey"], JoinKind::LeftSemi)
        .join(
            LogicalPlan::scan(TpchTable::Partsupp),
            &["l_partkey", "l_suppkey"],
            &["ps_partkey", "ps_suppkey"],
            JoinKind::Inner,
        )
        .join(supp_nation, &["l_suppkey"], &["supp_key"], JoinKind::Inner)
        .join(
            LogicalPlan::scan(TpchTable::Orders),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        )
        .select(vec![
            MapExpr::new("nation", col("nation")),
            MapExpr::new("o_year", col("o_orderdate").year()),
            MapExpr::new(
                "amount",
                revenue().sub(col("ps_supplycost").mul(col("l_quantity"))),
            ),
        ])
        .aggregate(
            &["nation", "o_year"],
            vec![AggSpec::new(AggFunc::Sum, col("amount"), "sum_profit")],
        )
        .sort(vec![SortKey::asc("nation"), SortKey::desc("o_year")])
}

/// Q11 — important stock identification. Stage 1 sums the GERMANY stock
/// value over the shared view (the HAVING threshold); the result stage
/// reuses the same view and filters groups against `param(0)`.
fn q11() -> LogicalQuery {
    let german_supp = LogicalPlan::scan(TpchTable::Supplier).join(
        LogicalPlan::scan(TpchTable::Nation).filter(col("n_name").eq(lits("GERMANY"))),
        &["s_nationkey"],
        &["n_nationkey"],
        JoinKind::LeftSemi,
    );
    let view = LogicalPlan::scan(TpchTable::Partsupp)
        .join(
            german_supp,
            &["ps_suppkey"],
            &["s_suppkey"],
            JoinKind::LeftSemi,
        )
        .select(vec![
            MapExpr::new("ps_partkey", col("ps_partkey")),
            MapExpr::new("stock_value", col("ps_supplycost").mul(col("ps_availqty"))),
        ]);
    let total = LogicalPlan::from_cte("germany_partsupp").aggregate(
        &[],
        vec![AggSpec::new(AggFunc::Sum, col("stock_value"), "total")],
    );
    let per_part = LogicalPlan::from_cte("germany_partsupp")
        .aggregate(
            &["ps_partkey"],
            vec![AggSpec::new(AggFunc::Sum, col("stock_value"), "value")],
        )
        .filter(col("value").gt(param(0).mul(litf(0.0001))))
        .sort(vec![SortKey::desc("value")]);
    LogicalQuery::cte("germany_partsupp", view)
        .then(total)
        .then(per_part)
}

/// Q13 — customer order-count distribution: left outer join feeding a
/// double aggregation.
fn q13() -> LogicalPlan {
    let orders = LogicalPlan::scan(TpchTable::Orders)
        .filter(col("o_comment").like("%special%requests%").not());
    LogicalPlan::scan(TpchTable::Customer)
        .join(orders, &["c_custkey"], &["o_custkey"], JoinKind::LeftOuter)
        .aggregate(
            &["c_custkey"],
            vec![AggSpec::new(AggFunc::Count, col("o_orderkey"), "c_count")],
        )
        .aggregate(
            &["c_count"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "custdist")],
        )
        .sort(vec![SortKey::desc("custdist"), SortKey::desc("c_count")])
}

/// The Q15 revenue view: supplier revenue over one quarter.
fn q15_revenue() -> LogicalPlan {
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1996, 1, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1996, 4, 1)))),
        )
        .aggregate(
            &["l_suppkey"],
            vec![AggSpec::new(AggFunc::Sum, revenue(), "total_revenue")],
        )
}

/// Q15 — top supplier. The revenue view is materialized once; stage 1
/// finds its maximum, the result stage keeps the supplier(s) whose revenue
/// equals `param(0)`. Exact equality is safe here — unlike the handwritten
/// plan, which re-derives the view and needs a float epsilon, both stages
/// read the same materialized temp, so `param(0)` is bit-identical to a
/// stored `total_revenue` value.
fn q15() -> LogicalQuery {
    let max_rev = LogicalPlan::from_cte("revenue").aggregate(
        &[],
        vec![AggSpec::new(AggFunc::Max, col("total_revenue"), "max_rev")],
    );
    let winners = LogicalPlan::from_cte("revenue").filter(col("total_revenue").eq(param(0)));
    let result = LogicalPlan::scan(TpchTable::Supplier)
        .project(&["s_suppkey", "s_name", "s_address", "s_phone"])
        .join(winners, &["s_suppkey"], &["l_suppkey"], JoinKind::Inner)
        .sort(vec![SortKey::asc("s_suppkey")]);
    LogicalQuery::cte("revenue", q15_revenue())
        .then(max_rev)
        .then(result)
}

/// Q16 — parts/supplier relationship: `count(distinct)` plus an anti join
/// against complained-about suppliers.
fn q16() -> LogicalPlan {
    let part = LogicalPlan::scan(TpchTable::Part).filter(
        col("p_brand")
            .eq(lits("Brand#45"))
            .not()
            .and(col("p_type").like("MEDIUM POLISHED%").not())
            .and(col("p_size").in_i64(&[49, 14, 23, 45, 19, 3, 36, 9])),
    );
    let complainers = LogicalPlan::scan(TpchTable::Supplier)
        .filter(col("s_comment").like("%Customer%Complaints%"));
    LogicalPlan::scan(TpchTable::Partsupp)
        .join(part, &["ps_partkey"], &["p_partkey"], JoinKind::Inner)
        .join(
            complainers,
            &["ps_suppkey"],
            &["s_suppkey"],
            JoinKind::LeftAnti,
        )
        .aggregate(
            &["p_brand", "p_type", "p_size"],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("ps_suppkey"),
                "supplier_cnt",
            )],
        )
        .sort(vec![
            SortKey::desc("supplier_cnt"),
            SortKey::asc("p_brand"),
            SortKey::asc("p_type"),
            SortKey::asc("p_size"),
        ])
}

/// Q17 — small-quantity-order revenue. The correlated AVG becomes a
/// per-part aggregate joined back on partkey.
fn q17() -> LogicalPlan {
    let avg_qty = LogicalPlan::scan(TpchTable::Lineitem)
        .aggregate(
            &["l_partkey"],
            vec![AggSpec::new(AggFunc::Avg, col("l_quantity"), "avg_qty")],
        )
        .select(vec![
            MapExpr::new("ap_partkey", col("l_partkey")),
            MapExpr::new("threshold", litf(0.2).mul(col("avg_qty"))),
        ]);
    let part = LogicalPlan::scan(TpchTable::Part).filter(
        col("p_brand")
            .eq(lits("Brand#23"))
            .and(col("p_container").eq(lits("MED BOX"))),
    );
    LogicalPlan::scan(TpchTable::Lineitem)
        .join(part, &["l_partkey"], &["p_partkey"], JoinKind::LeftSemi)
        .join(avg_qty, &["l_partkey"], &["ap_partkey"], JoinKind::Inner)
        .filter(col("l_quantity").lt(col("threshold")))
        .aggregate(
            &[],
            vec![AggSpec::new(
                AggFunc::Sum,
                col("l_extendedprice"),
                "sum_price",
            )],
        )
        .select(vec![MapExpr::new(
            "avg_yearly",
            col("sum_price").div(litf(7.0)),
        )])
}

/// Q18 — large-volume customers (top 100 by order value).
fn q18() -> LogicalPlan {
    let big_orders = LogicalPlan::scan(TpchTable::Lineitem)
        .aggregate(
            &["l_orderkey"],
            vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "sum_qty")],
        )
        .filter(col("sum_qty").gt(litf(300.0)));
    LogicalPlan::scan(TpchTable::Orders)
        .project(&["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"])
        .join(
            big_orders,
            &["o_orderkey"],
            &["l_orderkey"],
            JoinKind::Inner,
        )
        .join(
            LogicalPlan::scan(TpchTable::Customer).project(&["c_custkey", "c_name"]),
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::Inner,
        )
        .top_k(
            vec![SortKey::desc("o_totalprice"), SortKey::asc("o_orderdate")],
            100,
        )
}

/// Q19 — discounted revenue, a disjunction of three brand/container/
/// quantity windows evaluated after a partkey join.
fn q19() -> LogicalPlan {
    let window = |brand: &str, containers: &[&str], qlo: f64, qhi: f64, smax: i64| {
        col("p_brand")
            .eq(lits(brand))
            .and(col("p_container").in_str(containers))
            .and(col("l_quantity").ge(litf(qlo)))
            .and(col("l_quantity").le(litf(qhi)))
            .and(col("p_size").between(lit(1), lit(smax)))
    };
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipmode")
                .in_str(&["AIR", "REG AIR"])
                .and(col("l_shipinstruct").eq(lits("DELIVER IN PERSON"))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Part),
            &["l_partkey"],
            &["p_partkey"],
            JoinKind::Inner,
        )
        .filter(
            window(
                "Brand#12",
                &["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                1.0,
                11.0,
                5,
            )
            .or(window(
                "Brand#23",
                &["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10.0,
                20.0,
                10,
            ))
            .or(window(
                "Brand#34",
                &["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                20.0,
                30.0,
                15,
            )),
        )
        .aggregate(&[], vec![AggSpec::new(AggFunc::Sum, revenue(), "revenue")])
}

/// Q20 — potential part promotion: nested IN subqueries become semi joins
/// against aggregated shipment volumes.
fn q20() -> LogicalPlan {
    let shipped = LogicalPlan::scan(TpchTable::Lineitem)
        .filter(
            col("l_shipdate")
                .ge(lit(date_from_ymd(1994, 1, 1)))
                .and(col("l_shipdate").lt(lit(date_from_ymd(1995, 1, 1)))),
        )
        .aggregate(
            &["l_partkey", "l_suppkey"],
            vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "shipped_qty")],
        )
        .select(vec![
            MapExpr::new("sq_partkey", col("l_partkey")),
            MapExpr::new("sq_suppkey", col("l_suppkey")),
            MapExpr::new("half_qty", litf(0.5).mul(col("shipped_qty"))),
        ]);
    let forest_parts = LogicalPlan::scan(TpchTable::Part).filter(col("p_name").like("forest%"));
    let candidates = LogicalPlan::scan(TpchTable::Partsupp)
        .join(
            forest_parts,
            &["ps_partkey"],
            &["p_partkey"],
            JoinKind::LeftSemi,
        )
        .join(
            shipped,
            &["ps_partkey", "ps_suppkey"],
            &["sq_partkey", "sq_suppkey"],
            JoinKind::Inner,
        )
        .filter(col("ps_availqty").gt(col("half_qty")))
        // DISTINCT supplier keys before the final semi join.
        .aggregate(
            &["ps_suppkey"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "hits")],
        );
    LogicalPlan::scan(TpchTable::Supplier)
        .project(&["s_suppkey", "s_name", "s_address", "s_nationkey"])
        .join(
            LogicalPlan::scan(TpchTable::Nation).filter(col("n_name").eq(lits("CANADA"))),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::LeftSemi,
        )
        .join(
            candidates,
            &["s_suppkey"],
            &["ps_suppkey"],
            JoinKind::LeftSemi,
        )
        .sort(vec![SortKey::asc("s_name")])
}

/// Q21 — suppliers who kept orders waiting: the EXISTS / NOT EXISTS pair
/// reduces to distinct-supplier counts per order (the late line's supplier
/// is at fault iff the order has ≥ 2 suppliers and exactly 1 late one).
fn q21() -> LogicalPlan {
    let all_supp = LogicalPlan::scan(TpchTable::Lineitem)
        .select(vec![
            MapExpr::new("ao_orderkey", col("l_orderkey")),
            MapExpr::new("ao_suppkey", col("l_suppkey")),
        ])
        .aggregate(
            &["ao_orderkey"],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("ao_suppkey"),
                "n_supp",
            )],
        );
    let late_supp = LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_receiptdate").gt(col("l_commitdate")))
        .select(vec![
            MapExpr::new("lo_orderkey", col("l_orderkey")),
            MapExpr::new("lo_suppkey", col("l_suppkey")),
        ])
        .aggregate(
            &["lo_orderkey"],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("lo_suppkey"),
                "n_late_supp",
            )],
        );
    let saudi_supp = LogicalPlan::scan(TpchTable::Supplier)
        .project(&["s_suppkey", "s_name", "s_nationkey"])
        .join(
            LogicalPlan::scan(TpchTable::Nation).filter(col("n_name").eq(lits("SAUDI ARABIA"))),
            &["s_nationkey"],
            &["n_nationkey"],
            JoinKind::LeftSemi,
        );
    let f_orders = LogicalPlan::scan(TpchTable::Orders).filter(col("o_orderstatus").eq(lits("F")));
    LogicalPlan::scan(TpchTable::Lineitem)
        .filter(col("l_receiptdate").gt(col("l_commitdate")))
        .join(saudi_supp, &["l_suppkey"], &["s_suppkey"], JoinKind::Inner)
        .join(
            f_orders,
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::LeftSemi,
        )
        .join(all_supp, &["l_orderkey"], &["ao_orderkey"], JoinKind::Inner)
        .join(
            late_supp,
            &["l_orderkey"],
            &["lo_orderkey"],
            JoinKind::Inner,
        )
        .filter(col("n_supp").gt(lit(1)).and(col("n_late_supp").eq(lit(1))))
        .aggregate(
            &["s_name"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "numwait")],
        )
        .top_k(vec![SortKey::desc("numwait"), SortKey::asc("s_name")], 100)
}

/// Q22 — global sales opportunity. Stage 1 computes the average positive
/// account balance (the scalar subquery); the result stage anti-joins
/// orders away from customers above `param(0)` and groups by country code.
fn q22() -> LogicalQuery {
    let avg_bal = LogicalPlan::scan(TpchTable::Customer)
        .filter(
            col("c_phone")
                .substr(1, 2)
                .in_str(&Q22_CODES)
                .and(col("c_acctbal").gt(litf(0.0))),
        )
        .aggregate(
            &[],
            vec![AggSpec::new(AggFunc::Avg, col("c_acctbal"), "avg_bal")],
        );
    let result = LogicalPlan::scan(TpchTable::Customer)
        .filter(
            col("c_phone")
                .substr(1, 2)
                .in_str(&Q22_CODES)
                .and(col("c_acctbal").gt(param(0))),
        )
        .join(
            LogicalPlan::scan(TpchTable::Orders),
            &["c_custkey"],
            &["o_custkey"],
            JoinKind::LeftAnti,
        )
        .select(vec![
            MapExpr::new("cntrycode", col("c_phone").substr(1, 2)),
            MapExpr::new("c_acctbal", col("c_acctbal")),
        ])
        .aggregate(
            &["cntrycode"],
            vec![
                AggSpec::new(AggFunc::Count, lit(1), "numcust"),
                AggSpec::new(AggFunc::Sum, col("c_acctbal"), "totacctbal"),
            ],
        )
        .sort(vec![SortKey::asc("cntrycode")]);
    LogicalQuery::stage(avg_bal).then(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Planner, PlannerConfig};

    #[test]
    fn all_builder_queries_lower() {
        let planner = Planner::new(PlannerConfig::new(4));
        for n in crate::queries::ALL_QUERIES {
            let lq = tpch_logical(n).unwrap();
            let physical = planner
                .plan_query(&lq)
                .unwrap_or_else(|e| panic!("query {n} failed to lower: {e}"));
            assert_eq!(
                physical.stages.len(),
                lq.ctes().len() + lq.stages().len(),
                "query {n}: one physical stage per CTE + logical stage"
            );
            let result = &physical.stages.last().unwrap().plan;
            assert!(
                result.exchange_count() >= 1,
                "query {n} must exchange at least once"
            );
        }
    }

    #[test]
    fn multi_stage_queries_use_the_new_machinery() {
        // Scalar-subquery stages (Q11, Q15, Q22) and shared subplans
        // (Q2, Q11, Q15) exercise LogicalQuery rather than flat plans.
        for (n, ctes, stages) in [(2, 1, 1), (11, 1, 2), (15, 1, 2), (22, 0, 2)] {
            let lq = tpch_logical(n).unwrap();
            assert_eq!(lq.ctes().len(), ctes, "Q{n} CTE count");
            assert_eq!(lq.stages().len(), stages, "Q{n} stage count");
        }
    }

    #[test]
    fn unknown_query_numbers_are_rejected() {
        assert!(matches!(
            tpch_logical(23),
            Err(EngineError::UnknownQuery(23))
        ));
        assert!(matches!(tpch_logical(0), Err(EngineError::UnknownQuery(0))));
    }

    #[test]
    fn lowered_output_schemas_match_the_handwritten_results() {
        // The differential tests compare result *contents*; here we pin the
        // output schemas (names, in order) so a migration can't silently
        // drop or reorder columns.
        let planner = Planner::new(PlannerConfig::new(2));
        let cols = |n: u32| {
            planner
                .query_output_columns(&tpch_logical(n).unwrap())
                .unwrap()
        };
        assert_eq!(
            cols(1)[..3],
            [
                "l_returnflag".to_string(),
                "l_linestatus".into(),
                "sum_qty".into()
            ]
        );
        assert_eq!(
            cols(3),
            vec![
                "l_orderkey".to_string(),
                "o_orderdate".into(),
                "o_shippriority".into(),
                "revenue".into()
            ]
        );
        assert_eq!(cols(6), vec!["revenue".to_string()]);
        assert_eq!(cols(14), vec!["promo_revenue".to_string()]);
        assert_eq!(
            cols(22),
            vec![
                "cntrycode".to_string(),
                "numcust".into(),
                "totacctbal".into()
            ]
        );
        assert_eq!(cols(21), vec!["s_name".to_string(), "numwait".into()]);
        // CTE-reading result stages resolve through the owning query.
        assert_eq!(
            cols(15),
            vec![
                "s_suppkey".to_string(),
                "s_name".into(),
                "s_address".into(),
                "s_phone".into(),
                "l_suppkey".into(),
                "total_revenue".into()
            ]
        );
        assert_eq!(
            cols(2)[..4],
            [
                "ps_partkey".to_string(),
                "cost".into(),
                "s_acctbal".into(),
                "s_name".into()
            ]
        );
    }
}
