//! Out-of-process clusters: the `hsqp-node` server and the coordinator.
//!
//! Everything else in the engine simulates a cluster inside one process;
//! this module runs the same SPMD plans across *real OS processes*
//! connected by real TCP sockets. A [`NodeServer`] is one database server:
//! it listens on a port, joins the mesh
//! ([`SocketTransport`]), generates its share
//! of TPC-H locally, and executes its share of every stage shipped to it.
//! A [`ProcessCluster`] is the coordinator: it plans centrally, ships
//! serialized stages ([`crate::serial`]) to every node, binds parameter
//! stages, and collects the gathered result from node 0 — the paper's
//! coordinator/worker split, §4.
//!
//! # Control protocol
//!
//! One TCP connection per node, opened by the coordinator with a
//! [`HandshakeRole::Control`] preamble, carrying length-prefixed frames
//! (`opcode` byte + body, [`read_frame`]/[`write_frame`] — the same
//! framing as exchange data):
//!
//! | request | reply |
//! |---|---|
//! | `Join` (node id, peer addresses, engine knobs) | `JoinOk` after the data mesh is up |
//! | `Load` (scale factor) | `LoadOk` (local rows per table) |
//! | `Stage` (query, stage index, params, serialized stage) | `StageDone` (rows, node 0 attaches the table) or `StageFail` |
//! | `Retire` (query) | `RetireOk` (per-query bytes/messages) |
//! | `Abort` (query) | — |
//! | `Stats` | `StatsOk` (node socket counters) |
//! | `Shutdown` | — (the node process exits) |
//!
//! Per-query network counters are read at *retire* time: the coordinator
//! only retires once it holds the final gathered result, which implies
//! every node's sends for the query have left its multiplexer and been
//! recorded.
//!
//! # Failure handling
//!
//! A stage panic on one node aborts the query on its own receive hub,
//! broadcasts a [`FLAG_ABORT`] frame to every peer (unblocking their
//! mid-exchange consumers), and reports `StageFail`. A node *process*
//! dying surfaces twice: peers' socket readers emit `PeerGone` (the
//! multiplexer kills every in-flight query on that hub) and the
//! coordinator's control reader fails all pending queries — either way
//! the coordinator returns [`EngineError::Execution`] instead of hanging.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use hsqp_net::socket::{
    read_frame, read_preamble, send_preamble, write_frame, HandshakeRole, Preamble, WIRE_VERSION,
};
use hsqp_net::{
    Fabric, FabricConfig, NetStats, NodeId, QueryId, QueryNetStats, QueryStatsRegistry,
    SocketConfig, SocketTransport,
};
use hsqp_numa::{AllocPolicy, CostModel, SocketId, Topology};
use hsqp_storage::placement::chunk_split;
use hsqp_storage::{decimal_to_f64, DataType, Schema, Table, Value};
use hsqp_tpch::{TpchDb, TpchTable};

use crate::cluster::{panic_message, QueryResult};
use crate::error::EngineError;
use crate::exchange::{
    encode_header, spawn_multiplexer, MessagePool, MuxCmd, MuxConfig, RecvHub, FLAG_ABORT,
    HEADER_LEN,
};
use crate::exec::{NodeCtx, NodeExec};
use crate::local::MorselDriver;
use crate::planner::QueryPlanner;
use crate::queries::{Query, QueryStage, StageRole};
use crate::serial::{
    self, decode_stage_tagged, decode_table, decode_values, encode_stage_tagged, encode_table,
    encode_values, Rd,
};
use crate::serve::{CancelToken, SubmitOptions};

// Control-protocol opcodes (requests < 100, replies >= 100).
const OP_JOIN: u8 = 0;
const OP_LOAD: u8 = 1;
const OP_STAGE: u8 = 2;
const OP_RETIRE: u8 = 3;
const OP_ABORT: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_STATS: u8 = 6;
const OP_JOIN_OK: u8 = 100;
const OP_LOAD_OK: u8 = 101;
const OP_STAGE_DONE: u8 = 102;
const OP_STAGE_FAIL: u8 = 103;
const OP_RETIRE_OK: u8 = 104;
const OP_STATS_OK: u8 = 105;

/// Engine knobs the coordinator ships to every node in `Join`, so one
/// flag set on the coordinator configures the whole cluster identically.
#[derive(Debug, Clone, Copy)]
pub struct RemoteEngineConfig {
    /// Worker threads per node process.
    pub workers_per_node: u16,
    /// NUMA sockets modeled per node (receive-queue fan-out).
    pub sockets: u16,
    /// Tuple bytes per exchange message.
    pub message_capacity: usize,
}

impl Default for RemoteEngineConfig {
    fn default() -> Self {
        Self {
            workers_per_node: 2,
            sockets: 2,
            message_capacity: 128 * 1024,
        }
    }
}

// ---------------------------------------------------------------------------
// Node server
// ---------------------------------------------------------------------------

/// One out-of-process database server (the `hsqp-node` binary's core).
///
/// Serves exactly one cluster lifetime: accept the coordinator, join the
/// mesh, execute stages until `Shutdown` (or the coordinator disconnects),
/// then return.
pub struct NodeServer {
    listener: TcpListener,
    socket_cfg: SocketConfig,
}

/// One in-flight query's dedicated stage-execution worker on a node.
///
/// Stages of *different* queries must run concurrently (two queries'
/// exchange waves interleave across the cluster; serializing them on one
/// node deadlocks the other nodes), so each query gets its own thread fed
/// through a channel that preserves stage order within the query.
struct QueryWorker {
    jobs: Sender<StageJob>,
    handle: std::thread::JoinHandle<()>,
    stats: Arc<QueryNetStats>,
    /// Tripped by a coordinator `Abort` so in-flight morsel loops stop
    /// cooperatively instead of running the stage to completion.
    cancel: CancelToken,
}

struct StageJob {
    stage_idx: u32,
    stage: QueryStage,
    params: Vec<Value>,
    /// Remaining deadline budget shipped by the coordinator, microseconds
    /// measured at encode time.
    deadline_us: Option<u64>,
}

impl NodeServer {
    /// Bind the node's listener (use port 0 for an OS-assigned port).
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            socket_cfg: SocketConfig::default(),
        })
    }

    /// The bound listen address (to print for the coordinator).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve one cluster lifetime. Returns when the coordinator sends
    /// `Shutdown` or its control connection closes.
    pub fn run(self) -> io::Result<()> {
        // The first Control connection is the coordinator; data dials from
        // faster peers may land first and are stashed for the mesh.
        let mut pending = Vec::new();
        let mut control = loop {
            let (mut stream, _) = self.listener.accept()?;
            let p = read_preamble(&mut stream)?;
            match p.role {
                HandshakeRole::Control => break stream,
                HandshakeRole::Data => pending.push((p, stream)),
            }
        };

        let join = read_frame(&mut control)?;
        let mut r = Rd::new(&join);
        let mut parse = || -> Result<(u16, u16, u16, u16, usize, Vec<String>), String> {
            if r.u8()? != OP_JOIN {
                return Err("expected Join as the first control frame".into());
            }
            let node = r.u16()?;
            let nodes = r.u16()?;
            let workers = r.u16()?;
            let sockets = r.u16()?;
            let message_capacity = r.u64()? as usize;
            let addrs = r.strs()?;
            Ok((node, nodes, workers, sockets, message_capacity, addrs))
        };
        let (node, nodes, workers, sockets, message_capacity, addrs) =
            parse().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if node >= nodes || addrs.len() != nodes as usize || workers == 0 || sockets == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "inconsistent Join: node {node} of {nodes}, {} addrs",
                    addrs.len()
                ),
            ));
        }

        eprintln!("[node {node}] joining {nodes}-node mesh");
        let transport = SocketTransport::connect_mesh_pending(
            NodeId(node),
            &addrs,
            &self.listener,
            &self.socket_cfg,
            pending,
        )?;
        let net_stats = Arc::clone(transport.stats());

        // Build the node context exactly like `Cluster::start` builds one
        // simulated node, with the real-socket transport plugged in and no
        // network scheduling (the in-process `NetScheduler` is a
        // shared-memory barrier; real clusters run uncoordinated).
        let cores_per_socket = workers.div_ceil(sockets).max(1);
        let topology = Arc::new(Topology::new(
            sockets,
            cores_per_socket,
            CostModel::new(0.0),
        ));
        let hub = RecvHub::new(sockets as usize);
        let fabric = Arc::new(Fabric::new(nodes, FabricConfig::default()));
        let pool = Arc::new(MessagePool::new(
            Arc::clone(&fabric),
            NodeId(node),
            sockets,
            message_capacity,
        ));
        let query_stats = Arc::new(QueryStatsRegistry::new());
        let mux_cfg = MuxConfig {
            node: NodeId(node),
            nodes,
            scheduling: false,
            batch_per_phase: 8,
            classic_units: None,
            sockets,
            alloc_policy: AllocPolicy::NumaAware,
        };
        let (to_mux, mux_handle) = spawn_multiplexer(
            mux_cfg,
            Box::new(transport),
            Arc::clone(&hub),
            Arc::clone(&pool),
            None,
            Arc::clone(&query_stats),
        );
        let ctx = Arc::new(NodeCtx {
            node: NodeId(node),
            nodes,
            driver: MorselDriver::new(workers, &topology, hsqp_storage::table::MORSEL_SIZE, true),
            topology,
            alloc_policy: AllocPolicy::NumaAware,
            classic_units: None,
            message_capacity,
            pool,
            hub,
            to_mux: to_mux.clone(),
            tables: RwLock::new(HashMap::new()),
            temps: RwLock::new(HashMap::new()),
            consume_loads: parking_lot::Mutex::new(Vec::new()),
            fabric,
        });

        let writer = Arc::new(Mutex::new(control.try_clone()?));
        send_reply(&writer, |out| serial::put_u8(out, OP_JOIN_OK))?;
        eprintln!("[node {node}] mesh up, serving");

        let mut workers_by_query: HashMap<u32, QueryWorker> = HashMap::new();
        loop {
            let frame = match read_frame(&mut control) {
                Ok(f) => f,
                Err(_) => {
                    eprintln!("[node {node}] coordinator disconnected, exiting");
                    break;
                }
            };
            match self.handle_frame(
                &frame,
                &ctx,
                &writer,
                &query_stats,
                &net_stats,
                &mut workers_by_query,
            ) {
                Ok(true) => {}
                Ok(false) => {
                    eprintln!("[node {node}] shutdown requested");
                    break;
                }
                Err(e) => {
                    eprintln!("[node {node}] control protocol error: {e}");
                    break;
                }
            }
        }

        // Unblock any stage thread still waiting mid-exchange, then join.
        ctx.hub.abort_all("node shutting down");
        for (_, w) in workers_by_query.drain() {
            drop(w.jobs);
            let _ = w.handle.join();
        }
        let _ = to_mux.send(MuxCmd::Shutdown);
        let _ = mux_handle.join();
        Ok(())
    }

    /// Dispatch one control frame. `Ok(false)` means shutdown.
    fn handle_frame(
        &self,
        frame: &[u8],
        ctx: &Arc<NodeCtx>,
        writer: &Arc<Mutex<TcpStream>>,
        query_stats: &Arc<QueryStatsRegistry>,
        net_stats: &Arc<NetStats>,
        workers: &mut HashMap<u32, QueryWorker>,
    ) -> Result<bool, String> {
        let mut r = Rd::new(frame);
        match r.u8()? {
            OP_LOAD => {
                let sf = r.f64()?;
                let db = TpchDb::generate(sf);
                let mut rows: Vec<(TpchTable, u64)> = Vec::new();
                for (kind, table) in db.into_tables() {
                    let part = chunk_split(&table, ctx.nodes as usize)
                        .into_iter()
                        .nth(ctx.node.idx())
                        .expect("own chunk");
                    rows.push((kind, part.rows() as u64));
                    ctx.tables.write().insert(kind, Arc::new(part));
                }
                send_reply(writer, |out| {
                    serial::put_u8(out, OP_LOAD_OK);
                    serial::put_u32(out, rows.len() as u32);
                    for (kind, n) in &rows {
                        serial::put_str(out, kind.name());
                        serial::put_u64(out, *n);
                    }
                })
                .map_err(|e| e.to_string())?;
            }
            OP_STAGE => {
                let query = r.u32()?;
                let stage_idx = r.u32()?;
                let params_len = r.u32()? as usize;
                let params = decode_values(r.take(params_len)?)?;
                let stage_len = r.u32()? as usize;
                let envelope = decode_stage_tagged(r.take(stage_len)?)?;
                let worker = workers.entry(query).or_insert_with(|| {
                    spawn_query_worker(
                        Arc::clone(ctx),
                        QueryId(query),
                        Arc::clone(writer),
                        query_stats.register(QueryId(query)),
                    )
                });
                worker
                    .jobs
                    .send(StageJob {
                        stage_idx,
                        stage: envelope.stage,
                        params,
                        deadline_us: envelope.deadline_us,
                    })
                    .map_err(|_| format!("query {query} worker is gone"))?;
            }
            OP_RETIRE => {
                let query = r.u32()?;
                // Join the stage thread first: the coordinator only retires
                // once it holds the query's result, so the thread is idle —
                // but its last sends must be counted before we read.
                let (bytes, msgs) = match workers.remove(&query) {
                    Some(w) => {
                        drop(w.jobs);
                        let _ = w.handle.join();
                        (w.stats.bytes_sent(), w.stats.messages_sent())
                    }
                    None => (0, 0),
                };
                ctx.temps.write().remove(&QueryId(query));
                ctx.hub.finish_query(QueryId(query));
                query_stats.retire(QueryId(query));
                send_reply(writer, |out| {
                    serial::put_u8(out, OP_RETIRE_OK);
                    serial::put_u32(out, query);
                    serial::put_u64(out, bytes);
                    serial::put_u64(out, msgs);
                })
                .map_err(|e| e.to_string())?;
            }
            OP_ABORT => {
                let query = r.u32()?;
                // Trip the cooperative token first so running morsel loops
                // stop, then unwedge consumers blocked on the hub.
                if let Some(w) = workers.get(&query) {
                    w.cancel.cancel();
                }
                ctx.hub.abort(QueryId(query), "aborted by the coordinator");
            }
            OP_STATS => {
                send_reply(writer, |out| {
                    serial::put_u8(out, OP_STATS_OK);
                    serial::put_u64(out, net_stats.bytes_sent());
                    serial::put_u64(out, net_stats.bytes_received());
                    serial::put_u64(out, net_stats.messages_sent());
                    serial::put_u64(out, net_stats.messages_received());
                })
                .map_err(|e| e.to_string())?;
            }
            OP_SHUTDOWN => return Ok(false),
            op => return Err(format!("unknown control opcode {op}")),
        }
        Ok(true)
    }
}

/// Send one reply frame under the writer lock.
fn send_reply(writer: &Arc<Mutex<TcpStream>>, build: impl FnOnce(&mut Vec<u8>)) -> io::Result<()> {
    let mut out = Vec::new();
    build(&mut out);
    let mut w = writer.lock();
    write_frame(&mut *w, &out)?;
    w.flush()
}

/// Spawn the per-query stage-execution thread on a node.
fn spawn_query_worker(
    ctx: Arc<NodeCtx>,
    query: QueryId,
    writer: Arc<Mutex<TcpStream>>,
    stats: Arc<QueryNetStats>,
) -> QueryWorker {
    let (jobs, rx): (Sender<StageJob>, Receiver<StageJob>) = unbounded();
    let cancel = CancelToken::new();
    let token = cancel.clone();
    let handle = std::thread::Builder::new()
        .name(format!("query-{}", query.0))
        .spawn(move || run_query_worker(&ctx, query, &rx, &writer, &token))
        .expect("spawn query worker");
    QueryWorker {
        jobs,
        handle,
        stats,
        cancel,
    }
}

fn run_query_worker(
    ctx: &NodeCtx,
    query: QueryId,
    rx: &Receiver<StageJob>,
    writer: &Arc<Mutex<TcpStream>>,
    cancel: &CancelToken,
) {
    // Schemas of temps this query materialized, for local stage compilation
    // (deterministic: every node compiles the same plan against the same
    // generated base schemas).
    let mut temp_schemas: HashMap<String, Schema> = HashMap::new();
    while let Ok(job) = rx.recv() {
        let outcome = if ctx.hub.is_aborted(query) {
            Err("query aborted".to_string())
        } else {
            let base = |t: TpchTable| ctx.tables.read().get(&t).map(|tbl| tbl.schema().clone());
            let (compiled, out_schema) =
                crate::vm::compile_stage(&job.stage.plan, &base, &temp_schemas);
            let programs = (!compiled.is_empty()).then_some(&compiled);
            // The per-stage token shares the coordinator-abort tripwire and
            // adds this stage's remaining deadline budget, so morsel loops
            // stop within one morsel of either signal.
            let stage_cancel = cancel.child_with_deadline(
                job.deadline_us
                    .map(|us| Instant::now() + Duration::from_micros(us)),
            );
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                NodeExec::new(ctx, query, &job.params, job.stage_idx * 100_000)
                    .with_programs(programs)
                    .with_cancel(Some(&stage_cancel))
                    .execute(&job.stage.plan)
            }))
            .map(|batch| (batch, out_schema))
            .map_err(|payload| panic_message(payload.as_ref()))
        };
        match outcome {
            Ok((batch, out_schema)) => {
                let rows = batch.rows() as u64;
                let table = match &job.stage.role {
                    StageRole::Materialize(name) => {
                        if let Some(s) = out_schema {
                            temp_schemas.insert(name.clone(), s);
                        }
                        ctx.temps
                            .write()
                            .entry(query)
                            .or_default()
                            .insert(name.clone(), batch.into_arc());
                        None
                    }
                    // Only node 0 holds the gathered output; shipping the
                    // other nodes' empty remainders would be wasted bytes.
                    StageRole::Params | StageRole::Result => {
                        (ctx.node.0 == 0).then(|| batch.into_table())
                    }
                };
                let r = send_reply(writer, |out| {
                    serial::put_u8(out, OP_STAGE_DONE);
                    serial::put_u32(out, query.0);
                    serial::put_u32(out, job.stage_idx);
                    serial::put_u64(out, rows);
                    match &table {
                        Some(t) => {
                            serial::put_u8(out, 1);
                            out.extend_from_slice(&encode_table(t));
                        }
                        None => serial::put_u8(out, 0),
                    }
                });
                if r.is_err() {
                    return; // coordinator gone
                }
            }
            Err(msg) => {
                // The cross-node abort protocol: unblock local consumers,
                // then tell every peer so their blocked pops panic out
                // instead of waiting for last-markers that will never come.
                ctx.hub
                    .abort(query, &format!("node {} failed: {msg}", ctx.node.0));
                let mut frame = Vec::with_capacity(HEADER_LEN);
                encode_header(query, 0, FLAG_ABORT, 0, 0, &mut frame);
                let payload = Bytes::from(frame);
                for t in 0..ctx.nodes {
                    if t != ctx.node.0 {
                        let _ = ctx.to_mux.send(MuxCmd::Send {
                            target: NodeId(t),
                            payload: payload.clone(),
                            pool_socket: SocketId(0),
                        });
                    }
                }
                let r = send_reply(writer, |out| {
                    serial::put_u8(out, OP_STAGE_FAIL);
                    serial::put_u32(out, query.0);
                    serial::put_u32(out, job.stage_idx);
                    serial::put_str(out, &msg);
                });
                if r.is_err() {
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Coordinator-side configuration for an out-of-process cluster.
#[derive(Debug, Clone, Copy)]
pub struct ProcessClusterConfig {
    /// Engine knobs shipped to every node.
    pub engine: RemoteEngineConfig,
    /// How long to keep retrying a node dial at connect time.
    pub connect_timeout: Duration,
    /// Watchdog for any single control reply; a cluster that goes silent
    /// longer than this fails the query instead of hanging forever.
    pub reply_timeout: Duration,
}

impl Default for ProcessClusterConfig {
    fn default() -> Self {
        Self {
            engine: RemoteEngineConfig::default(),
            connect_timeout: Duration::from_secs(10),
            reply_timeout: Duration::from_secs(60),
        }
    }
}

/// Where one query execution gets its stages from: a pre-planned physical
/// [`Query`], or an adaptive [`QueryPlanner`] that lowers each stage only
/// after the previous one's observed cardinalities were fed back.
enum StageFeed<'a> {
    Fixed(&'a Query),
    Adaptive(&'a mut QueryPlanner),
}

/// A control reply routed to the query (or control op) that awaits it.
enum NodeReply {
    StageDone {
        stage: u32,
        /// The node's local result cardinality for the stage, fed back to
        /// the adaptive planner in [`StatsMode::Feedback`].
        rows: u64,
        table: Option<Table>,
    },
    StageFail {
        stage: u32,
        msg: String,
    },
    RetireOk {
        bytes: u64,
        msgs: u64,
    },
    /// The node's control connection died.
    NodeDown(String),
}

/// Replies to coordinator-wide (non-query) requests.
enum CtlReply {
    LoadOk(Vec<(String, u64)>),
    /// bytes sent, bytes received, messages sent, messages received.
    StatsOk(u64, u64, u64, u64),
}

struct CoordShared {
    /// Per-query reply channels, keyed by query id.
    pending: Mutex<HashMap<u32, Sender<(usize, NodeReply)>>>,
    /// Channel for Load/Stats replies (one control op at a time).
    ctl_tx: Sender<(usize, CtlReply)>,
    /// Set as soon as any node's control connection dies.
    dead: AtomicBool,
}

struct NodeConn {
    writer: Mutex<TcpStream>,
    /// Kept to force-close the connection at shutdown.
    stream: TcpStream,
}

/// Coordinator for a cluster of out-of-process [`NodeServer`]s.
///
/// Thread-safe: [`run`](Self::run) can be called from many closed-loop
/// client threads at once; replies are demultiplexed per query id, exactly
/// like the in-process dispatcher's concurrent queries.
pub struct ProcessCluster {
    conns: Vec<NodeConn>,
    shared: Arc<CoordShared>,
    ctl_rx: Mutex<Receiver<(usize, CtlReply)>>,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_query: AtomicU32,
    table_rows: RwLock<HashMap<TpchTable, u64>>,
    query_stats: Arc<QueryStatsRegistry>,
    cfg: ProcessClusterConfig,
    down: AtomicBool,
}

impl ProcessCluster {
    /// Connect to `addrs` (one `host:port` per node process), ship the
    /// cluster topology, and wait for every node to report its data mesh
    /// up. Node `i` of the cluster is `addrs[i]`; node 0 gathers results.
    pub fn connect(addrs: &[String], cfg: ProcessClusterConfig) -> Result<Self, EngineError> {
        if addrs.is_empty() {
            return Err(EngineError::Config("need at least one node address".into()));
        }
        let nodes = addrs.len() as u16;
        let io_err = |what: &str, e: io::Error| {
            EngineError::Execution(format!("cluster connect: {what}: {e}"))
        };

        // Dial every node and send its Join; JoinOks only come back once
        // the whole mesh is up, so all Joins must be in flight first.
        let mut streams = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut stream = dial_retry(addr, cfg.connect_timeout)
                .map_err(|e| io_err(&format!("dialing {addr}"), e))?;
            send_preamble(
                &mut stream,
                &Preamble {
                    version: WIRE_VERSION,
                    role: HandshakeRole::Control,
                    node: 0,
                    nodes,
                },
            )
            .map_err(|e| io_err("handshake", e))?;
            streams.push(stream);
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let mut join = Vec::new();
            serial::put_u8(&mut join, OP_JOIN);
            serial::put_u16(&mut join, i as u16);
            serial::put_u16(&mut join, nodes);
            serial::put_u16(&mut join, cfg.engine.workers_per_node);
            serial::put_u16(&mut join, cfg.engine.sockets);
            serial::put_u64(&mut join, cfg.engine.message_capacity as u64);
            serial::put_strs(&mut join, addrs);
            write_frame(stream, &join).map_err(|e| io_err("sending Join", e))?;
            stream.flush().map_err(|e| io_err("sending Join", e))?;
        }
        for (i, stream) in streams.iter_mut().enumerate() {
            let frame = read_frame(stream)
                .map_err(|e| io_err(&format!("waiting for node {i} to join"), e))?;
            if frame.first() != Some(&OP_JOIN_OK) {
                return Err(EngineError::Execution(format!(
                    "node {i} rejected the Join handshake"
                )));
            }
        }

        let (ctl_tx, ctl_rx) = unbounded();
        let shared = Arc::new(CoordShared {
            pending: Mutex::new(HashMap::new()),
            ctl_tx,
            dead: AtomicBool::new(false),
        });
        let mut conns = Vec::with_capacity(streams.len());
        let mut readers = Vec::with_capacity(streams.len());
        for (i, stream) in streams.into_iter().enumerate() {
            let reader_stream = stream.try_clone().map_err(|e| io_err("clone", e))?;
            let writer = Mutex::new(stream.try_clone().map_err(|e| io_err("clone", e))?);
            conns.push(NodeConn { writer, stream });
            let shared = Arc::clone(&shared);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("coord-recv-{i}"))
                    .spawn(move || coord_reader(i, reader_stream, &shared))
                    .expect("spawn coordinator reader"),
            );
        }
        Ok(Self {
            conns,
            shared,
            ctl_rx: Mutex::new(ctl_rx),
            readers: Mutex::new(readers),
            next_query: AtomicU32::new(0),
            table_rows: RwLock::new(HashMap::new()),
            query_stats: Arc::new(QueryStatsRegistry::new()),
            cfg,
            down: AtomicBool::new(false),
        })
    }

    /// Cluster size.
    pub fn nodes(&self) -> u16 {
        self.conns.len() as u16
    }

    /// Have every node generate TPC-H at `sf` and keep its chunk. Returns
    /// once all nodes report their local row counts (summed into
    /// [`table_rows`](Self::table_rows) for exact planner cardinalities).
    pub fn load_tpch(&self, sf: f64) -> Result<(), EngineError> {
        self.ensure_up()?;
        let ctl = self.ctl_rx.lock();
        let mut frame = Vec::new();
        serial::put_u8(&mut frame, OP_LOAD);
        serial::put_f64(&mut frame, sf);
        self.broadcast(&frame)?;
        // Data generation is CPU-bound and scales with sf; be generous.
        let deadline = self.cfg.reply_timeout.max(Duration::from_secs(600));
        let mut totals: HashMap<TpchTable, u64> = HashMap::new();
        for _ in 0..self.conns.len() {
            match ctl.recv_timeout(deadline) {
                Ok((_, CtlReply::LoadOk(rows))) => {
                    for (name, n) in rows {
                        if let Some(kind) = TpchTable::from_name(&name) {
                            *totals.entry(kind).or_insert(0) += n;
                        }
                    }
                }
                Ok((_, CtlReply::StatsOk(..))) => {}
                Err(_) => {
                    return Err(EngineError::Execution(
                        "cluster went silent while loading TPC-H".into(),
                    ))
                }
            }
        }
        *self.table_rows.write() = totals;
        Ok(())
    }

    /// Total rows of `table` across all node processes (reported by the
    /// nodes at load time).
    pub fn table_rows(&self, table: TpchTable) -> Option<u64> {
        self.table_rows.read().get(&table).copied()
    }

    /// Poll every node for its socket-mesh counters and return the
    /// cluster-wide sums: `(bytes_sent, bytes_received, messages_sent,
    /// messages_received)`.
    pub fn net_stats(&self) -> Result<(u64, u64, u64, u64), EngineError> {
        self.ensure_up()?;
        let ctl = self.ctl_rx.lock();
        self.broadcast(&[OP_STATS])?;
        let mut sums = (0u64, 0u64, 0u64, 0u64);
        for _ in 0..self.conns.len() {
            match ctl.recv_timeout(self.cfg.reply_timeout) {
                Ok((_, CtlReply::StatsOk(bs, br, ms, mr))) => {
                    sums.0 += bs;
                    sums.1 += br;
                    sums.2 += ms;
                    sums.3 += mr;
                }
                Ok((_, CtlReply::LoadOk(_))) => {}
                Err(_) => {
                    return Err(EngineError::Execution(
                        "cluster went silent while reporting stats".into(),
                    ))
                }
            }
        }
        Ok(sums)
    }

    /// Run a multi-stage query across the node processes and gather the
    /// result, mirroring the in-process driver's stage loop: parameter
    /// stages bind their first result row, materialization stages leave
    /// per-node temps behind, the final stage's gathered table comes back
    /// from node 0.
    pub fn run(&self, query: &Query) -> Result<QueryResult, EngineError> {
        self.run_with(query, &SubmitOptions::default())
    }

    /// [`run`](Self::run) with serving-layer options: the submitting
    /// tenant is shipped to the nodes for observability and an optional
    /// deadline bounds the whole query — each stage carries the remaining
    /// budget, node-side morsel loops stop within one morsel of it
    /// elapsing, and the coordinator returns
    /// [`EngineError::DeadlineExceeded`] after aborting and retiring the
    /// query on every node.
    pub fn run_with(
        &self,
        query: &Query,
        opts: &SubmitOptions,
    ) -> Result<QueryResult, EngineError> {
        if query.stages.is_empty() {
            return Err(EngineError::Planner(
                "query needs at least one stage".into(),
            ));
        }
        self.run_inner(&mut StageFeed::Fixed(query), opts)
    }

    /// Run a query planned stage-at-a-time by an adaptive
    /// [`QueryPlanner`]: after each stage completes, the per-node observed
    /// cardinalities are fed back so later stages (in
    /// [`StatsMode::Feedback`](crate::stats::StatsMode)) are lowered
    /// against actuals instead of static estimates.
    pub fn run_adaptive(
        &self,
        mut planner: QueryPlanner,
        opts: &SubmitOptions,
    ) -> Result<QueryResult, EngineError> {
        self.run_inner(&mut StageFeed::Adaptive(&mut planner), opts)
    }

    fn run_inner(
        &self,
        feed: &mut StageFeed<'_>,
        opts: &SubmitOptions,
    ) -> Result<QueryResult, EngineError> {
        self.ensure_up()?;
        let start = Instant::now();
        let deadline = opts.deadline.map(|d| start + d);
        let id = self.next_query.fetch_add(1, Ordering::Relaxed);
        let stats = self.query_stats.register(QueryId(id));
        let (tx, rx) = unbounded();
        self.shared.pending.lock().insert(id, tx);

        let mut outcome = self.run_stages(id, feed, opts, deadline, &rx);
        if outcome.is_err() && !self.down.load(Ordering::SeqCst) {
            // Unwedge every node first (ordered before Retire on each
            // control connection), then clean up.
            let mut abort = Vec::new();
            serial::put_u8(&mut abort, OP_ABORT);
            serial::put_u32(&mut abort, id);
            let _ = self.broadcast(&abort);
        }
        self.retire(id, &rx, &stats);
        self.shared.pending.lock().remove(&id);
        self.query_stats.retire(QueryId(id));

        // A node that stopped at its shipped deadline reports StageFail
        // with the token's panic message; fold that back into the typed
        // error the in-process driver returns for the same condition.
        if let Err(EngineError::Execution(_)) = &outcome {
            if deadline.is_some_and(|dl| Instant::now() >= dl) {
                outcome = Err(EngineError::DeadlineExceeded);
            }
        }

        let table = outcome?;
        Ok(QueryResult {
            query: QueryId(id),
            table,
            elapsed: start.elapsed(),
            queue_wait: Duration::ZERO,
            bytes_shuffled: stats.bytes_sent(),
            messages_sent: stats.messages_sent(),
            profile: None,
        })
    }

    fn run_stages(
        &self,
        id: u32,
        feed: &mut StageFeed<'_>,
        opts: &SubmitOptions,
        deadline: Option<Instant>,
        rx: &Receiver<(usize, NodeReply)>,
    ) -> Result<Table, EngineError> {
        if self.shared.dead.load(Ordering::SeqCst) {
            return Err(EngineError::Execution("a cluster node is down".into()));
        }
        let n = self.conns.len();
        let mut params: Vec<Value> = Vec::new();
        let mut final_table: Option<Table> = None;
        let mut stage_idx = 0usize;
        loop {
            let stage: QueryStage = match &mut *feed {
                StageFeed::Adaptive(qp) => match qp.next_stage()? {
                    None => break,
                    Some(s) => s,
                },
                StageFeed::Fixed(q) => {
                    if stage_idx >= q.stages.len() {
                        break;
                    }
                    q.stages[stage_idx].clone()
                }
            };
            // Ship the remaining budget, not the absolute deadline: the
            // node processes' clocks are not synchronized with ours.
            let remaining = match deadline {
                Some(dl) => {
                    let left = dl.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(EngineError::DeadlineExceeded);
                    }
                    Some(left)
                }
                None => None,
            };
            let mut frame = Vec::new();
            serial::put_u8(&mut frame, OP_STAGE);
            serial::put_u32(&mut frame, id);
            serial::put_u32(&mut frame, stage_idx as u32);
            let params_bytes = encode_values(&params);
            serial::put_u32(&mut frame, params_bytes.len() as u32);
            frame.extend_from_slice(&params_bytes);
            let stage_bytes = encode_stage_tagged(
                &stage,
                Some(opts.tenant.as_str()),
                remaining.map(|d| d.as_micros() as u64),
            );
            serial::put_u32(&mut frame, stage_bytes.len() as u32);
            frame.extend_from_slice(&stage_bytes);
            self.broadcast(&frame)?;

            let mut done = vec![false; n];
            let mut node_rows = vec![0u64; n];
            let mut node0_table: Option<Table> = None;
            while done.iter().any(|d| !d) {
                // Wait no longer than the deadline allows; the nodes stop
                // themselves too, this is the coordinator-side backstop.
                let wait = match deadline {
                    Some(dl) => self
                        .cfg
                        .reply_timeout
                        .min(dl.saturating_duration_since(Instant::now())),
                    None => self.cfg.reply_timeout,
                };
                let (node, reply) = rx.recv_timeout(wait).map_err(|_| {
                    if deadline.is_some_and(|dl| Instant::now() >= dl) {
                        EngineError::DeadlineExceeded
                    } else {
                        EngineError::Execution(format!(
                            "stage {stage_idx} of q{id} timed out after {:?}",
                            self.cfg.reply_timeout
                        ))
                    }
                })?;
                match reply {
                    NodeReply::StageDone { stage, rows, table } if stage == stage_idx as u32 => {
                        done[node] = true;
                        node_rows[node] = rows;
                        if node == 0 {
                            node0_table = table;
                        }
                    }
                    NodeReply::StageFail { stage, msg } if stage == stage_idx as u32 => {
                        return Err(EngineError::Execution(format!(
                            "node {node} failed stage {stage_idx}: {msg}"
                        )));
                    }
                    NodeReply::NodeDown(msg) => {
                        return Err(EngineError::Execution(format!(
                            "node {node} died mid-query: {msg}"
                        )));
                    }
                    // Stale replies (earlier stage of a restarted loop, a
                    // late RetireOk) are dropped.
                    _ => {}
                }
            }

            match &stage.role {
                StageRole::Result => {
                    final_table = Some(node0_table.ok_or_else(|| {
                        EngineError::Execution("node 0 returned no result table".into())
                    })?);
                }
                StageRole::Params => {
                    let t = node0_table.ok_or_else(|| {
                        EngineError::Execution("node 0 returned no parameter table".into())
                    })?;
                    if t.rows() == 0 {
                        return Err(EngineError::Execution(
                            "parameter stage produced no rows".into(),
                        ));
                    }
                    for c in 0..t.schema().len() {
                        // Decimal scalars bind as promoted floats, exactly
                        // like the in-process driver.
                        let v = match (t.schema().fields()[c].dtype, t.value(0, c)) {
                            (DataType::Decimal, Value::I64(cents)) => {
                                Value::F64(decimal_to_f64(cents))
                            }
                            (_, v) => v,
                        };
                        params.push(v);
                    }
                }
                StageRole::Materialize(_) => {}
            }

            if let StageFeed::Adaptive(qp) = &mut *feed {
                qp.observe_rows(&node_rows);
            }
            stage_idx += 1;
        }
        final_table.ok_or_else(|| EngineError::Planner("query has no result stage".into()))
    }

    /// Release the query's state on every node and fold the per-node
    /// network counters it reports into `stats`. Best-effort: dead nodes
    /// simply do not report.
    fn retire(&self, id: u32, rx: &Receiver<(usize, NodeReply)>, stats: &QueryNetStats) {
        if self.down.load(Ordering::SeqCst) {
            return;
        }
        let mut frame = Vec::new();
        serial::put_u8(&mut frame, OP_RETIRE);
        serial::put_u32(&mut frame, id);
        if self.broadcast(&frame).is_err() {
            return;
        }
        let mut acked = 0;
        let deadline = Instant::now() + self.cfg.reply_timeout;
        while acked < self.conns.len() && Instant::now() < deadline {
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok((_, NodeReply::RetireOk { bytes, msgs })) => {
                    stats.add(bytes, msgs);
                    acked += 1;
                }
                Ok((_, NodeReply::NodeDown(_))) => acked += 1,
                Ok(_) => {} // stray stage replies of the aborted query
                Err(_) if self.shared.dead.load(Ordering::SeqCst) => return,
                Err(_) => {}
            }
        }
    }

    fn broadcast(&self, frame: &[u8]) -> Result<(), EngineError> {
        for (i, conn) in self.conns.iter().enumerate() {
            let mut w = conn.writer.lock();
            write_frame(&mut *w, frame)
                .and_then(|()| w.flush())
                .map_err(|e| EngineError::Execution(format!("node {i} unreachable: {e}")))?;
        }
        Ok(())
    }

    fn ensure_up(&self) -> Result<(), EngineError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(EngineError::ClusterDown);
        }
        Ok(())
    }

    /// Shut the node processes down and disconnect.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        let frame = [OP_SHUTDOWN];
        for conn in &self.conns {
            let mut w = conn.writer.lock();
            let _ = write_frame(&mut *w, &frame).and_then(|()| w.flush());
        }
        for conn in &self.conns {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.readers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ProcessCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Reader thread for one node's control connection: demultiplexes replies
/// to the queries awaiting them; on connection loss fails every pending
/// query instead of letting it wait forever.
fn coord_reader(node: usize, mut stream: TcpStream, shared: &CoordShared) {
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(e) => {
                shared.dead.store(true, Ordering::SeqCst);
                let msg = format!("control connection lost: {e}");
                for tx in shared.pending.lock().values() {
                    let _ = tx.send((node, NodeReply::NodeDown(msg.clone())));
                }
                return;
            }
        };
        let mut r = Rd::new(&frame);
        let routed: Result<(), String> = (|| {
            match r.u8()? {
                OP_STAGE_DONE => {
                    let query = r.u32()?;
                    let stage = r.u32()?;
                    let rows = r.u64()?;
                    let table = match r.u8()? {
                        0 => None,
                        _ => Some(decode_table(r.take_rest())?),
                    };
                    route(
                        shared,
                        node,
                        query,
                        NodeReply::StageDone { stage, rows, table },
                    );
                }
                OP_STAGE_FAIL => {
                    let query = r.u32()?;
                    let stage = r.u32()?;
                    let msg = r.str()?;
                    route(shared, node, query, NodeReply::StageFail { stage, msg });
                }
                OP_RETIRE_OK => {
                    let query = r.u32()?;
                    let bytes = r.u64()?;
                    let msgs = r.u64()?;
                    route(shared, node, query, NodeReply::RetireOk { bytes, msgs });
                }
                OP_LOAD_OK => {
                    let count = r.u32()? as usize;
                    let mut rows = Vec::with_capacity(count);
                    for _ in 0..count {
                        let name = r.str()?;
                        let n = r.u64()?;
                        rows.push((name, n));
                    }
                    let _ = shared.ctl_tx.send((node, CtlReply::LoadOk(rows)));
                }
                OP_STATS_OK => {
                    let bs = r.u64()?;
                    let br = r.u64()?;
                    let ms = r.u64()?;
                    let mr = r.u64()?;
                    let _ = shared
                        .ctl_tx
                        .send((node, CtlReply::StatsOk(bs, br, ms, mr)));
                }
                op => return Err(format!("unexpected reply opcode {op}")),
            }
            Ok(())
        })();
        if let Err(e) = routed {
            shared.dead.store(true, Ordering::SeqCst);
            let msg = format!("protocol error from node {node}: {e}");
            for tx in shared.pending.lock().values() {
                let _ = tx.send((node, NodeReply::NodeDown(msg.clone())));
            }
            return;
        }
    }
}

fn route(shared: &CoordShared, node: usize, query: u32, reply: NodeReply) {
    if let Some(tx) = shared.pending.lock().get(&query) {
        let _ = tx.send((node, reply));
    }
}

/// Dial with retries until `timeout` (node processes may still be
/// starting when the coordinator launches).
fn dial_retry(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use crate::queries::tpch_query;

    /// Spawn `n` node servers on loopback threads and return their
    /// addresses (in-process stand-ins for `hsqp-node` child processes;
    /// the real-process path is covered by `tests/process_cluster.rs`).
    fn spawn_nodes(n: usize) -> Vec<String> {
        let mut addrs = Vec::new();
        for _ in 0..n {
            let server = NodeServer::bind("127.0.0.1:0").unwrap();
            addrs.push(server.local_addr().unwrap().to_string());
            std::thread::spawn(move || {
                let _ = server.run();
            });
        }
        addrs
    }

    #[test]
    fn two_process_cluster_matches_in_process() {
        let addrs = spawn_nodes(2);
        let pc = ProcessCluster::connect(&addrs, ProcessClusterConfig::default()).unwrap();
        pc.load_tpch(0.001).unwrap();
        assert!(pc.table_rows(TpchTable::Lineitem).unwrap() > 1000);

        let local =
            crate::cluster::Cluster::start(crate::cluster::ClusterConfig::quick(2)).unwrap();
        local.load_tpch(0.001).unwrap();

        for qn in [1u32, 3, 6, 11] {
            let q = tpch_query(qn).unwrap();
            let remote = pc.run(&q).unwrap();
            let reference = local.run(&q).unwrap();
            assert_eq!(
                remote.table.rows(),
                reference.table.rows(),
                "Q{qn} row count"
            );
            if qn != 1 {
                // Q1 is single-node-gatherable only at larger SF; the join
                // queries must actually shuffle.
                continue;
            }
        }
        local.shutdown();
        pc.shutdown();
    }

    #[test]
    fn remote_failure_surfaces_as_error_not_hang() {
        let addrs = spawn_nodes(2);
        let pc = ProcessCluster::connect(&addrs, ProcessClusterConfig::default()).unwrap();
        pc.load_tpch(0.001).unwrap();
        // A plan naming a nonexistent column panics in the node's stage
        // thread; the abort protocol must carry the failure back.
        let bad = Query::single(
            0,
            Plan::scan_cols(TpchTable::Nation, &["no_such_column"])
                .repartition(&["no_such_column"])
                .gather(),
        );
        match pc.run(&bad) {
            Err(EngineError::Execution(msg)) => {
                assert!(
                    msg.contains("failed") || msg.contains("panicked"),
                    "unexpected message: {msg}"
                );
            }
            other => panic!("expected contained failure, got {other:?}"),
        }
        // The cluster survives for the next query.
        let ok = tpch_query(6).unwrap();
        assert!(pc.run(&ok).is_ok());
        pc.shutdown();
    }

    #[test]
    fn remote_deadline_cancels_instead_of_wedging() {
        let addrs = spawn_nodes(2);
        let pc = ProcessCluster::connect(&addrs, ProcessClusterConfig::default()).unwrap();
        pc.load_tpch(0.01).unwrap();
        // A heavy multi-join with a deadline far below its runtime: the
        // nodes stop at a morsel boundary and the coordinator returns the
        // typed error instead of wedging on the stage replies.
        let q = tpch_query(9).unwrap();
        let opts = SubmitOptions::tenant("gold").with_deadline(Duration::from_millis(2));
        match pc.run_with(&q, &opts) {
            Err(EngineError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The cluster survives for the next query, and the tenant tag
        // rides along on the successful path too.
        let ok = tpch_query(6).unwrap();
        let r = pc.run_with(&ok, &SubmitOptions::tenant("gold")).unwrap();
        assert!(r.table.rows() > 0);
        assert_eq!(r.queue_wait, Duration::ZERO);
        pc.shutdown();
    }

    #[test]
    fn query_net_stats_are_folded_from_node_reports() {
        let addrs = spawn_nodes(2);
        let pc = ProcessCluster::connect(&addrs, ProcessClusterConfig::default()).unwrap();
        pc.load_tpch(0.001).unwrap();
        let q = tpch_query(3).unwrap();
        let r = pc.run(&q).unwrap();
        assert!(r.bytes_shuffled > 0, "a join at 2 nodes must shuffle");
        assert!(r.messages_sent > 0);
        pc.shutdown();
    }
}
