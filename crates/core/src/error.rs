//! Engine error type.

use std::fmt;

/// Errors surfaced by the public engine API.
///
/// Internal invariant violations (plan bugs, schema mismatches) panic
/// instead — they indicate programming errors, not runtime conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced relation was not loaded into the cluster.
    UnknownTable(String),
    /// The requested TPC-H query number does not exist.
    UnknownQuery(u32),
    /// The cluster was already shut down.
    ClusterDown,
    /// Invalid configuration.
    Config(String),
    /// The distributed planner rejected a logical plan (unknown column,
    /// ambiguous name, key arity mismatch, …).
    Planner(String),
    /// A query failed at run time for a data-dependent reason (e.g. a
    /// scalar-subquery parameter stage produced no rows).
    Execution(String),
    /// The query was cancelled via
    /// [`QueryHandle::cancel`](crate::cluster::QueryHandle::cancel) before
    /// it produced a result.
    Cancelled,
    /// The submitting tenant was over one of its admission caps
    /// (`max_queued` / `max_concurrent`) and the query was rejected
    /// without being enqueued.
    Admission(String),
    /// The query's deadline elapsed before it produced a result; the
    /// engine cancelled it cooperatively and freed its resources.
    DeadlineExceeded,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::UnknownQuery(q) => write!(f, "unknown TPC-H query: {q}"),
            EngineError::ClusterDown => write!(f, "cluster already shut down"),
            EngineError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::Planner(msg) => write!(f, "planner error: {msg}"),
            EngineError::Execution(msg) => write!(f, "execution error: {msg}"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Admission(msg) => write!(f, "admission rejected: {msg}"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::UnknownTable("foo".into()).to_string(),
            "unknown table: foo"
        );
        assert_eq!(
            EngineError::UnknownQuery(23).to_string(),
            "unknown TPC-H query: 23"
        );
        assert!(EngineError::ClusterDown.to_string().contains("shut down"));
        assert!(EngineError::Config("x".into()).to_string().contains("x"));
        assert!(EngineError::Planner("no col".into())
            .to_string()
            .contains("no col"));
        assert!(EngineError::Execution("no rows".into())
            .to_string()
            .contains("no rows"));
        assert!(EngineError::Admission("tenant t over max_queued".into())
            .to_string()
            .contains("max_queued"));
        assert!(EngineError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
    }

    #[test]
    fn composes_with_question_mark_callers() {
        // The whole point of `impl std::error::Error`: downstream code can
        // use `?` into `Box<dyn Error>`.
        fn caller() -> Result<(), Box<dyn std::error::Error>> {
            Err(EngineError::UnknownQuery(99))?
        }
        let err = caller().unwrap_err();
        assert_eq!(err.to_string(), "unknown TPC-H query: 99");
    }
}
