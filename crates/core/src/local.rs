//! Morsel-driven parallelism inside one server (§3.2, \[20\]).
//!
//! Query pipelines are parallelized by splitting their input into
//! constant-size morsels that workers claim dynamically from a shared
//! dispenser — the same mechanism that gives HyPer its intra-server work
//! stealing: a fast worker simply claims more morsels, so load imbalances
//! never stall a pipeline. The classic-exchange baseline disables stealing
//! by assigning morsels to workers statically, which is what makes it skew-
//! sensitive (§3.1).

use std::sync::atomic::{AtomicUsize, Ordering};

use hsqp_numa::{SocketId, Topology};
use hsqp_storage::Morsel;

/// Identity of a worker thread inside one server.
#[derive(Debug, Clone, Copy)]
pub struct WorkerCtx {
    /// Worker index within the node, `0..workers`.
    pub id: u16,
    /// NUMA socket this worker is pinned to.
    pub socket: SocketId,
}

/// Per-node worker pool configuration for pipeline execution.
#[derive(Debug, Clone)]
pub struct MorselDriver {
    workers: u16,
    sockets: u16,
    cores_per_socket: u16,
    morsel_size: usize,
    /// Dynamic morsel dispatch (work stealing) vs static assignment.
    stealing: bool,
}

impl MorselDriver {
    /// Driver with `workers` workers spread over `topology`'s sockets.
    ///
    /// # Panics
    /// Panics if `workers` or `morsel_size` is zero.
    pub fn new(workers: u16, topology: &Topology, morsel_size: usize, stealing: bool) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(morsel_size > 0, "morsel size must be positive");
        Self {
            workers,
            sockets: topology.sockets(),
            cores_per_socket: topology.cores_per_socket(),
            morsel_size,
            stealing,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> u16 {
        self.workers
    }

    /// Configured morsel size.
    pub fn morsel_size(&self) -> usize {
        self.morsel_size
    }

    /// Whether morsels are dispatched dynamically.
    pub fn stealing(&self) -> bool {
        self.stealing
    }

    /// Socket a worker is pinned to (workers fill sockets round-robin by
    /// core, mirroring OS-level pinning of one thread per hardware context).
    pub fn worker_socket(&self, worker: u16) -> SocketId {
        let core = worker % (self.sockets * self.cores_per_socket);
        SocketId(core / self.cores_per_socket)
    }

    /// Run `work` over all morsels of `total_rows` rows in parallel and
    /// return each worker's state.
    ///
    /// Every worker gets a state from `init`; morsels are claimed from a
    /// shared atomic dispenser when stealing is on, or round-robin by
    /// worker id when off.
    pub fn run<S, I, W>(&self, total_rows: usize, init: I, work: W) -> Vec<S>
    where
        S: Send,
        I: Fn(WorkerCtx) -> S + Sync,
        W: Fn(&mut S, WorkerCtx, Morsel) + Sync,
    {
        let n_morsels = total_rows.div_ceil(self.morsel_size);
        let morsel = |i: usize| Morsel {
            start: i * self.morsel_size,
            end: ((i + 1) * self.morsel_size).min(total_rows),
        };

        if self.workers == 1 {
            let ctx = WorkerCtx {
                id: 0,
                socket: self.worker_socket(0),
            };
            let mut state = init(ctx);
            for i in 0..n_morsels {
                work(&mut state, ctx, morsel(i));
            }
            return vec![state];
        }

        let next = AtomicUsize::new(0);
        let mut states: Vec<Option<S>> = (0..self.workers).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers as usize);
            for w in 0..self.workers {
                let next = &next;
                let work = &work;
                let init = &init;
                let ctx = WorkerCtx {
                    id: w,
                    socket: self.worker_socket(w),
                };
                handles.push(scope.spawn(move || {
                    let mut state = init(ctx);
                    if self.stealing {
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_morsels {
                                break;
                            }
                            work(&mut state, ctx, morsel(i));
                        }
                    } else {
                        let mut i = w as usize;
                        while i < n_morsels {
                            work(&mut state, ctx, morsel(i));
                            i += self.workers as usize;
                        }
                    }
                    state
                }));
            }
            for (slot, h) in states.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("worker panicked"));
            }
        });
        states.into_iter().map(|s| s.expect("joined")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn driver(workers: u16, stealing: bool) -> MorselDriver {
        MorselDriver::new(workers, &Topology::uniform(workers.max(1)), 100, stealing)
    }

    #[test]
    fn all_rows_processed_exactly_once() {
        let d = driver(4, true);
        let total = AtomicU64::new(0);
        let states = d.run(
            10_042,
            |_| 0u64,
            |s, _, m| {
                *s += m.len() as u64;
                total.fetch_add(m.len() as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(states.iter().sum::<u64>(), 10_042);
        assert_eq!(total.load(Ordering::Relaxed), 10_042);
    }

    #[test]
    fn single_worker_runs_inline() {
        let d = driver(1, true);
        let states = d.run(
            250,
            |_| Vec::new(),
            |s: &mut Vec<usize>, _, m| s.push(m.len()),
        );
        assert_eq!(states.len(), 1);
        assert_eq!(states[0], vec![100, 100, 50]);
    }

    #[test]
    fn static_assignment_is_deterministic() {
        let d = driver(2, false);
        // 5 morsels: worker 0 gets 0,2,4; worker 1 gets 1,3.
        let states = d.run(
            500,
            |_| Vec::new(),
            |s: &mut Vec<usize>, _, m| s.push(m.start),
        );
        assert_eq!(states[0], vec![0, 200, 400]);
        assert_eq!(states[1], vec![100, 300]);
    }

    #[test]
    fn stealing_balances_skewed_work() {
        // One slow morsel: with stealing, other workers absorb the rest.
        let d = MorselDriver::new(4, &Topology::uniform(4), 1, true);
        let start = std::time::Instant::now();
        d.run(
            8,
            |_| (),
            |(), _, m| {
                if m.start == 0 {
                    std::thread::sleep(Duration::from_millis(60));
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                }
            },
        );
        // Work stealing: total ≈ max(60, 7×5/3) ≈ 60 ms, far below the
        // 95 ms a static 2-round schedule could cost.
        assert!(
            start.elapsed() < Duration::from_millis(90),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn worker_sockets_follow_topology() {
        let topo = Topology::new(2, 2, hsqp_numa::CostModel::free());
        let d = MorselDriver::new(4, &topo, 10, true);
        assert_eq!(d.worker_socket(0), SocketId(0));
        assert_eq!(d.worker_socket(1), SocketId(0));
        assert_eq!(d.worker_socket(2), SocketId(1));
        assert_eq!(d.worker_socket(3), SocketId(1));
    }

    #[test]
    fn zero_rows_is_fine() {
        let d = driver(3, true);
        let states = d.run(0, |_| 1u32, |_, _, _| panic!("no morsels expected"));
        assert_eq!(states, vec![1, 1, 1]);
    }
}
