//! Vectorized expression evaluation over table morsels.
//!
//! Expressions are evaluated column-at-a-time over a row range (a morsel),
//! mirroring how HyPer's generated code keeps tuples in registers within a
//! pipeline. Decimal columns (fixed-point, scale 100) are promoted to `f64`
//! on evaluation; dates stay as day numbers (`i64`).

use std::ops::Range;

use hsqp_storage::{decimal_to_f64, Bitmap, Column, DataType, StringColumn, Table, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Integer literal (also dates, via [`lit_date`]).
    LitI64(i64),
    /// Float literal (also decimal constants like `0.05`).
    LitF64(f64),
    /// String literal.
    LitStr(String),
    /// Query parameter produced by an earlier execution stage (scalar
    /// subquery results, e.g. the average quantity in Q17).
    Param(usize),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction of all children.
    And(Vec<Expr>),
    /// Disjunction of all children.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// SQL `LIKE` with `%` wildcards (no `_` support).
    Like(Box<Expr>, String),
    /// String membership test (`x IN ('A', 'B', …)`).
    InStr(Box<Expr>, Vec<String>),
    /// Integer membership test (`x IN (1, 2, …)`).
    InI64(Box<Expr>, Vec<i64>),
    /// 1-based `substring(expr, start, len)`.
    Substr(Box<Expr>, usize, usize),
    /// `extract(year from expr)`.
    ExtractYear(Box<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `expr IS NULL`.
    IsNull(Box<Expr>),
}

/// Column reference.
pub fn col(name: &str) -> Expr {
    Expr::Col(name.to_string())
}

/// Integer literal.
pub fn lit(v: i64) -> Expr {
    Expr::LitI64(v)
}

/// Float literal.
pub fn litf(v: f64) -> Expr {
    Expr::LitF64(v)
}

/// String literal.
pub fn lits(v: &str) -> Expr {
    Expr::LitStr(v.to_string())
}

/// Date literal as day number.
pub fn lit_date(y: i64, m: u32, d: u32) -> Expr {
    Expr::LitI64(hsqp_storage::date_from_ymd(y, m, d))
}

/// Reference to query parameter `i` — bound by the first result row of an
/// earlier [`LogicalQuery`](crate::logical::LogicalQuery) stage (scalar
/// subquery decorrelation: parameters are numbered across stages in column
/// order).
pub fn param(i: usize) -> Expr {
    Expr::Param(i)
}

impl Expr {
    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }
    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }
    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }
    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }
    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }
    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }
    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        match self {
            Expr::And(mut v) => {
                v.push(other);
                Expr::And(v)
            }
            e => Expr::And(vec![e, other]),
        }
    }
    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        match self {
            Expr::Or(mut v) => {
                v.push(other);
                Expr::Or(v)
            }
            e => Expr::Or(vec![e, other]),
        }
    }
    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }
    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }
    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }
    /// `self / other`.
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }
    /// `self LIKE pattern` (`%` wildcards only).
    pub fn like(self, pattern: &str) -> Expr {
        Expr::Like(Box::new(self), pattern.to_string())
    }
    /// `self BETWEEN lo AND hi` (inclusive).
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        self.clone().ge(lo).and(self.le(hi))
    }
    /// `self IN (strings…)`.
    pub fn in_str(self, options: &[&str]) -> Expr {
        Expr::InStr(
            Box::new(self),
            options.iter().map(|s| s.to_string()).collect(),
        )
    }
    /// `self IN (ints…)`.
    pub fn in_i64(self, options: &[i64]) -> Expr {
        Expr::InI64(Box::new(self), options.to_vec())
    }
    /// `substring(self, start, len)` with 1-based `start`.
    pub fn substr(self, start: usize, len: usize) -> Expr {
        Expr::Substr(Box::new(self), start, len)
    }
    /// `extract(year from self)`.
    pub fn year(self) -> Expr {
        Expr::ExtractYear(Box::new(self))
    }
    /// `CASE WHEN self THEN a ELSE b END`.
    pub fn case(self, then: Expr, els: Expr) -> Expr {
        Expr::Case(Box::new(self), Box::new(then), Box::new(els))
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// All column names referenced by this expression (sorted, deduplicated).
    /// The planner uses this for column pruning and plan validation.
    pub fn columns(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Expr::Col(name) => {
                out.insert(name.clone());
            }
            Expr::LitI64(_) | Expr::LitF64(_) | Expr::LitStr(_) | Expr::Param(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::And(children) | Expr::Or(children) => {
                for c in children {
                    c.collect_columns(out);
                }
            }
            Expr::Not(c)
            | Expr::Like(c, _)
            | Expr::InStr(c, _)
            | Expr::InI64(c, _)
            | Expr::Substr(c, _, _)
            | Expr::ExtractYear(c)
            | Expr::IsNull(c) => c.collect_columns(out),
            Expr::Case(cond, then, els) => {
                cond.collect_columns(out);
                then.collect_columns(out);
                els.collect_columns(out);
            }
        }
    }

    /// Constant-fold literal-only subtrees, preserving [`eval`] semantics
    /// exactly: integer comparisons stay integer, division promotes to
    /// float, `NaN` comparisons stay false. Foldings that would change
    /// runtime behaviour (integer overflow, type errors the evaluator
    /// reports by panicking) are left untouched. `AND`/`OR` drop children
    /// known to be neutral (`TRUE` in a conjunction, `FALSE` in a
    /// disjunction); a boolean-valued subtree has no literal form and is
    /// otherwise kept as written.
    #[must_use]
    pub fn fold(&self) -> Expr {
        if let Some(v) = fold_const(self) {
            match v {
                FoldVal::I64(x) => return Expr::LitI64(x),
                FoldVal::F64(x) => return Expr::LitF64(x),
                FoldVal::Str(s) => return Expr::LitStr(s),
                // No boolean literal exists; the VM folds these at compile
                // time instead (`ConstBool`).
                FoldVal::Bool(_) => {}
            }
        }
        match self {
            Expr::Col(_) | Expr::LitI64(_) | Expr::LitF64(_) | Expr::LitStr(_) | Expr::Param(_) => {
                self.clone()
            }
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(a.fold()), Box::new(b.fold())),
            Expr::And(cs) => Expr::And(
                cs.iter()
                    .map(Expr::fold)
                    .filter(|c| !matches!(fold_const(c), Some(FoldVal::Bool(true))))
                    .collect(),
            ),
            Expr::Or(cs) => Expr::Or(
                cs.iter()
                    .map(Expr::fold)
                    .filter(|c| !matches!(fold_const(c), Some(FoldVal::Bool(false))))
                    .collect(),
            ),
            Expr::Not(c) => Expr::Not(Box::new(c.fold())),
            Expr::Arith(op, a, b) => Expr::Arith(*op, Box::new(a.fold()), Box::new(b.fold())),
            Expr::Like(c, p) => Expr::Like(Box::new(c.fold()), p.clone()),
            Expr::InStr(c, o) => Expr::InStr(Box::new(c.fold()), o.clone()),
            Expr::InI64(c, o) => Expr::InI64(Box::new(c.fold()), o.clone()),
            Expr::Substr(c, s, l) => Expr::Substr(Box::new(c.fold()), *s, *l),
            Expr::ExtractYear(c) => Expr::ExtractYear(Box::new(c.fold())),
            Expr::Case(c, t, e) => {
                Expr::Case(Box::new(c.fold()), Box::new(t.fold()), Box::new(e.fold()))
            }
            Expr::IsNull(c) => Expr::IsNull(Box::new(c.fold())),
        }
    }

    /// The largest [`Expr::Param`] index referenced by this expression, if
    /// any. The planner uses this to reject stages that reference
    /// parameters no earlier stage binds.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            Expr::Param(i) => Some(*i),
            Expr::Col(_) | Expr::LitI64(_) | Expr::LitF64(_) | Expr::LitStr(_) => None,
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => a.max_param().max(b.max_param()),
            Expr::And(children) | Expr::Or(children) => {
                children.iter().filter_map(Expr::max_param).max()
            }
            Expr::Not(c)
            | Expr::Like(c, _)
            | Expr::InStr(c, _)
            | Expr::InI64(c, _)
            | Expr::Substr(c, _, _)
            | Expr::ExtractYear(c)
            | Expr::IsNull(c) => c.max_param(),
            Expr::Case(cond, then, els) => {
                cond.max_param().max(then.max_param()).max(els.max_param())
            }
        }
    }
}

/// Physical payload of an evaluated expression.
#[derive(Debug, Clone, PartialEq)]
pub enum VecData {
    /// Integers / dates / years.
    I64(Vec<i64>),
    /// Floats (including promoted decimals).
    F64(Vec<f64>),
    /// Strings.
    Str(StringColumn),
    /// Booleans (filter masks).
    Bool(Vec<bool>),
}

/// An evaluated expression: data plus optional validity.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalVec {
    /// The values.
    pub data: VecData,
    /// Validity; `None` means all rows valid.
    pub validity: Option<Bitmap>,
}

impl EvalVec {
    fn dense(data: VecData) -> Self {
        Self {
            data,
            validity: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            VecData::I64(v) => v.len(),
            VecData::F64(v) => v.len(),
            VecData::Str(v) => v.len(),
            VecData::Bool(v) => v.len(),
        }
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether row `i` is valid.
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|b| b.get(i))
    }

    /// The boolean mask, for filter predicates.
    ///
    /// # Panics
    /// Panics if the expression did not evaluate to booleans.
    pub fn into_mask(self) -> Vec<bool> {
        match self.data {
            VecData::Bool(mut v) => {
                if let Some(bm) = self.validity {
                    for (i, x) in v.iter_mut().enumerate() {
                        *x = *x && bm.get(i);
                    }
                }
                v
            }
            other => panic!("expected boolean expression, got {other:?}"),
        }
    }

    /// Scalar at row `i`.
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            VecData::I64(v) => Value::I64(v[i]),
            VecData::F64(v) => Value::F64(v[i]),
            VecData::Str(v) => Value::Str(v.get(i).to_owned()),
            VecData::Bool(v) => Value::I64(i64::from(v[i])),
        }
    }

    /// Convert to a storage column with inferred type.
    pub fn into_column(self) -> (Column, DataType) {
        let v = self.validity;
        match self.data {
            VecData::I64(d) => (Column::I64(d, v), DataType::Int64),
            VecData::F64(d) => (Column::F64(d, v), DataType::Float64),
            VecData::Str(d) => (Column::Str(d, v), DataType::Utf8),
            VecData::Bool(d) => (
                Column::I64(d.into_iter().map(i64::from).collect(), v),
                DataType::Int64,
            ),
        }
    }
}

/// Evaluate `expr` over rows `range` of `table`; `params` resolves
/// [`Expr::Param`] references.
pub fn eval(expr: &Expr, table: &Table, range: Range<usize>, params: &[Value]) -> EvalVec {
    let n = range.len();
    match expr {
        Expr::Col(name) => eval_col(table, name, range),
        Expr::LitI64(v) => EvalVec::dense(VecData::I64(vec![*v; n])),
        Expr::LitF64(v) => EvalVec::dense(VecData::F64(vec![*v; n])),
        Expr::LitStr(s) => {
            let mut c = StringColumn::with_capacity(n, s.len());
            for _ in 0..n {
                c.push(s);
            }
            EvalVec::dense(VecData::Str(c))
        }
        Expr::Param(i) => {
            let v = params
                .get(*i)
                .unwrap_or_else(|| panic!("parameter {i} not bound"));
            match v {
                Value::I64(x) => EvalVec::dense(VecData::I64(vec![*x; n])),
                Value::F64(x) => EvalVec::dense(VecData::F64(vec![*x; n])),
                Value::Str(s) => {
                    let mut c = StringColumn::with_capacity(n, s.len());
                    for _ in 0..n {
                        c.push(s);
                    }
                    EvalVec::dense(VecData::Str(c))
                }
                Value::Null => EvalVec {
                    data: VecData::I64(vec![0; n]),
                    validity: Some(Bitmap::filled(n, false)),
                },
            }
        }
        Expr::Cmp(op, a, b) => {
            let va = eval(a, table, range.clone(), params);
            let vb = eval(b, table, range, params);
            eval_cmp(*op, &va, &vb)
        }
        Expr::And(children) => {
            let mut acc = vec![true; n];
            for c in children {
                let m = eval(c, table, range.clone(), params).into_mask();
                for (a, b) in acc.iter_mut().zip(m) {
                    *a = *a && b;
                }
            }
            EvalVec::dense(VecData::Bool(acc))
        }
        Expr::Or(children) => {
            let mut acc = vec![false; n];
            for c in children {
                let m = eval(c, table, range.clone(), params).into_mask();
                for (a, b) in acc.iter_mut().zip(m) {
                    *a = *a || b;
                }
            }
            EvalVec::dense(VecData::Bool(acc))
        }
        Expr::Not(c) => {
            let m = eval(c, table, range, params).into_mask();
            EvalVec::dense(VecData::Bool(m.into_iter().map(|b| !b).collect()))
        }
        Expr::Arith(op, a, b) => {
            let va = eval(a, table, range.clone(), params);
            let vb = eval(b, table, range, params);
            eval_arith(*op, va, vb)
        }
        Expr::Like(input, pattern) => {
            let v = eval(input, table, range, params);
            let matcher = LikeMatcher::new(pattern);
            let strs = expect_str(&v);
            let mask: Vec<bool> = (0..v.len())
                .map(|i| v.is_valid(i) && matcher.matches(strs.get(i)))
                .collect();
            EvalVec::dense(VecData::Bool(mask))
        }
        Expr::InStr(input, options) => {
            let v = eval(input, table, range, params);
            let strs = expect_str(&v);
            let mask: Vec<bool> = (0..v.len())
                .map(|i| v.is_valid(i) && options.iter().any(|o| o == strs.get(i)))
                .collect();
            EvalVec::dense(VecData::Bool(mask))
        }
        Expr::InI64(input, options) => {
            let v = eval(input, table, range, params);
            let ints = match &v.data {
                VecData::I64(d) => d,
                other => panic!("IN over integers needs integer input, got {other:?}"),
            };
            let mask: Vec<bool> = ints
                .iter()
                .enumerate()
                .map(|(i, x)| v.is_valid(i) && options.contains(x))
                .collect();
            EvalVec::dense(VecData::Bool(mask))
        }
        Expr::Substr(input, start, len) => {
            let v = eval(input, table, range, params);
            let strs = expect_str(&v);
            let mut out = StringColumn::with_capacity(v.len(), *len);
            for i in 0..v.len() {
                let s = strs.get(i);
                let from = (*start - 1).min(s.len());
                let to = (from + *len).min(s.len());
                out.push(s.get(from..to).unwrap_or(""));
            }
            EvalVec {
                data: VecData::Str(out),
                validity: v.validity,
            }
        }
        Expr::ExtractYear(input) => {
            let v = eval(input, table, range, params);
            let days = match &v.data {
                VecData::I64(d) => d,
                other => panic!("extract(year) needs a date column, got {other:?}"),
            };
            EvalVec {
                data: VecData::I64(
                    days.iter()
                        .map(|&d| hsqp_storage::year_of_date(d))
                        .collect(),
                ),
                validity: v.validity,
            }
        }
        Expr::Case(cond, then, els) => {
            let mask = eval(cond, table, range.clone(), params).into_mask();
            let vt = eval(then, table, range.clone(), params);
            let ve = eval(els, table, range, params);
            eval_case(&mask, vt, ve)
        }
        Expr::IsNull(input) => {
            let v = eval(input, table, range, params);
            let mask: Vec<bool> = (0..v.len()).map(|i| !v.is_valid(i)).collect();
            EvalVec::dense(VecData::Bool(mask))
        }
    }
}

fn eval_col(table: &Table, name: &str, range: Range<usize>) -> EvalVec {
    let idx = table.schema().index_of(name);
    let dtype = table.schema().fields()[idx].dtype;
    let column = table.column(idx);
    let validity = column
        .validity()
        .map(|bm| range.clone().map(|i| bm.get(i)).collect());
    let data = match (column, dtype) {
        (Column::I64(v, _), DataType::Decimal) => {
            VecData::F64(v[range].iter().map(|&x| decimal_to_f64(x)).collect())
        }
        (Column::I64(v, _), _) => VecData::I64(v[range].to_vec()),
        (Column::F64(v, _), _) => VecData::F64(v[range].to_vec()),
        (Column::Str(v, _), _) => {
            let mut out = StringColumn::with_capacity(range.len(), 16);
            for i in range {
                out.push(v.get(i));
            }
            VecData::Str(out)
        }
    };
    EvalVec { data, validity }
}

fn expect_str(v: &EvalVec) -> &StringColumn {
    match &v.data {
        VecData::Str(s) => s,
        other => panic!("expected string expression, got {other:?}"),
    }
}

/// Whether ordering `o` satisfies comparison `op` — the single definition
/// shared by the tree walker, constant folding, and the compiled VM so the
/// three can never disagree.
pub(crate) fn cmp_keeps(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => o == Ordering::Equal,
        CmpOp::Ne => o != Ordering::Equal,
        CmpOp::Lt => o == Ordering::Less,
        CmpOp::Le => o != Ordering::Greater,
        CmpOp::Gt => o == Ordering::Greater,
        CmpOp::Ge => o != Ordering::Less,
    }
}

fn eval_cmp(op: CmpOp, a: &EvalVec, b: &EvalVec) -> EvalVec {
    let n = a.len();
    assert_eq!(n, b.len(), "comparison arity mismatch");
    let ord_ok = |o| cmp_keeps(op, o);
    let mut mask = Vec::with_capacity(n);
    match (&a.data, &b.data) {
        (VecData::I64(x), VecData::I64(y)) => {
            for i in 0..n {
                mask.push(ord_ok(x[i].cmp(&y[i])));
            }
        }
        (VecData::Str(x), VecData::Str(y)) => {
            for i in 0..n {
                mask.push(ord_ok(x.get(i).cmp(y.get(i))));
            }
        }
        _ => {
            // Mixed numeric: promote to f64.
            let x = as_f64(&a.data);
            let y = as_f64(&b.data);
            for i in 0..n {
                mask.push(x[i].partial_cmp(&y[i]).is_some_and(&ord_ok));
            }
        }
    }
    // NULL comparisons are never true.
    for (i, m) in mask.iter_mut().enumerate() {
        *m = *m && a.is_valid(i) && b.is_valid(i);
    }
    EvalVec::dense(VecData::Bool(mask))
}

fn as_f64(data: &VecData) -> Vec<f64> {
    match data {
        VecData::I64(v) => v.iter().map(|&x| x as f64).collect(),
        VecData::F64(v) => v.clone(),
        other => panic!("expected numeric expression, got {other:?}"),
    }
}

fn eval_arith(op: ArithOp, a: EvalVec, b: EvalVec) -> EvalVec {
    let n = a.len();
    assert_eq!(n, b.len(), "arithmetic arity mismatch");
    let validity = merge_validity(&a, &b, n);
    let data = match (&a.data, &b.data) {
        (VecData::I64(x), VecData::I64(y)) if op != ArithOp::Div => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match op {
                    ArithOp::Add => x[i] + y[i],
                    ArithOp::Sub => x[i] - y[i],
                    ArithOp::Mul => x[i] * y[i],
                    ArithOp::Div => unreachable!(),
                });
            }
            VecData::I64(out)
        }
        _ => {
            let x = as_f64(&a.data);
            let y = as_f64(&b.data);
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match op {
                    ArithOp::Add => x[i] + y[i],
                    ArithOp::Sub => x[i] - y[i],
                    ArithOp::Mul => x[i] * y[i],
                    ArithOp::Div => x[i] / y[i],
                });
            }
            VecData::F64(out)
        }
    };
    EvalVec { data, validity }
}

fn merge_validity(a: &EvalVec, b: &EvalVec, n: usize) -> Option<Bitmap> {
    if a.validity.is_none() && b.validity.is_none() {
        return None;
    }
    Some((0..n).map(|i| a.is_valid(i) && b.is_valid(i)).collect())
}

fn eval_case(mask: &[bool], vt: EvalVec, ve: EvalVec) -> EvalVec {
    let n = mask.len();
    let validity = if vt.validity.is_some() || ve.validity.is_some() {
        Some(
            (0..n)
                .map(|i| {
                    if mask[i] {
                        vt.is_valid(i)
                    } else {
                        ve.is_valid(i)
                    }
                })
                .collect(),
        )
    } else {
        None
    };
    let data = match (vt.data, ve.data) {
        (VecData::I64(t), VecData::I64(e)) => {
            VecData::I64((0..n).map(|i| if mask[i] { t[i] } else { e[i] }).collect())
        }
        (t, e) => {
            let t = as_f64(&t);
            let e = as_f64(&e);
            VecData::F64((0..n).map(|i| if mask[i] { t[i] } else { e[i] }).collect())
        }
    };
    EvalVec { data, validity }
}

/// A compiled `%`-wildcard LIKE pattern.
#[derive(Debug, Clone)]
pub struct LikeMatcher {
    parts: Vec<String>,
    anchored_start: bool,
    anchored_end: bool,
}

impl LikeMatcher {
    /// Compile `pattern`.
    pub fn new(pattern: &str) -> Self {
        Self {
            parts: pattern
                .split('%')
                .filter(|p| !p.is_empty())
                .map(str::to_owned)
                .collect(),
            anchored_start: !pattern.starts_with('%'),
            anchored_end: !pattern.ends_with('%'),
        }
    }

    /// Whether `text` matches the pattern.
    pub fn matches(&self, text: &str) -> bool {
        if self.parts.is_empty() {
            // Pattern was "" (matches only empty text) or all-% (matches
            // everything).
            return !(self.anchored_start && self.anchored_end) || text.is_empty();
        }
        let mut rest = text;
        for (i, part) in self.parts.iter().enumerate() {
            let first = i == 0;
            let last = i + 1 == self.parts.len();
            if first && self.anchored_start {
                if !rest.starts_with(part.as_str()) {
                    return false;
                }
                rest = &rest[part.len()..];
                if last && self.anchored_end {
                    return rest.is_empty();
                }
            } else if last && self.anchored_end {
                return rest.ends_with(part.as_str());
            } else {
                match rest.find(part.as_str()) {
                    Some(pos) => rest = &rest[pos + part.len()..],
                    None => return false,
                }
            }
        }
        true
    }
}

/// The value a literal-only subtree folds to at plan/compile time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FoldVal {
    /// Integer (also dates).
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean (no [`Expr`] literal form; consumed by the VM compiler).
    Bool(bool),
}

impl FoldVal {
    fn as_f64(&self) -> Option<f64> {
        match self {
            FoldVal::I64(x) => Some(*x as f64),
            FoldVal::F64(x) => Some(*x),
            FoldVal::Str(_) | FoldVal::Bool(_) => None,
        }
    }
}

/// Fold a literal-only expression to its value, mirroring [`eval`] exactly.
/// Returns `None` for anything whose value depends on the input table or on
/// query parameters, and for foldings that would change observable
/// behaviour: integer overflow (panics in debug builds, wraps in release —
/// folding would move the panic to plan time) and type errors (the
/// evaluator reports those by panicking during execution).
pub(crate) fn fold_const(e: &Expr) -> Option<FoldVal> {
    match e {
        Expr::Col(_) | Expr::Param(_) => None,
        Expr::LitI64(v) => Some(FoldVal::I64(*v)),
        Expr::LitF64(v) => Some(FoldVal::F64(*v)),
        Expr::LitStr(s) => Some(FoldVal::Str(s.clone())),
        Expr::Cmp(op, a, b) => {
            let (a, b) = (fold_const(a)?, fold_const(b)?);
            let ok = match (&a, &b) {
                (FoldVal::I64(x), FoldVal::I64(y)) => cmp_keeps(*op, x.cmp(y)),
                (FoldVal::Str(x), FoldVal::Str(y)) => cmp_keeps(*op, x.as_str().cmp(y)),
                _ => {
                    let (x, y) = (a.as_f64()?, b.as_f64()?);
                    // NaN comparisons are false for every operator,
                    // including `<>`, exactly like [`eval_cmp`].
                    x.partial_cmp(&y).is_some_and(|o| cmp_keeps(*op, o))
                }
            };
            Some(FoldVal::Bool(ok))
        }
        Expr::And(children) => {
            let mut acc = true;
            for c in children {
                match fold_const(c)? {
                    FoldVal::Bool(b) => acc = acc && b,
                    _ => return None,
                }
            }
            Some(FoldVal::Bool(acc))
        }
        Expr::Or(children) => {
            let mut acc = false;
            for c in children {
                match fold_const(c)? {
                    FoldVal::Bool(b) => acc = acc || b,
                    _ => return None,
                }
            }
            Some(FoldVal::Bool(acc))
        }
        Expr::Not(c) => match fold_const(c)? {
            FoldVal::Bool(b) => Some(FoldVal::Bool(!b)),
            _ => None,
        },
        Expr::Arith(op, a, b) => {
            let (a, b) = (fold_const(a)?, fold_const(b)?);
            if let (FoldVal::I64(x), FoldVal::I64(y)) = (&a, &b) {
                if *op != ArithOp::Div {
                    // Checked: folding an overflow would turn a debug-build
                    // execution panic into a plan-time panic.
                    let v = match op {
                        ArithOp::Add => x.checked_add(*y),
                        ArithOp::Sub => x.checked_sub(*y),
                        ArithOp::Mul => x.checked_mul(*y),
                        ArithOp::Div => unreachable!(),
                    }?;
                    return Some(FoldVal::I64(v));
                }
            }
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Some(FoldVal::F64(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
            }))
        }
        Expr::Like(c, pattern) => match fold_const(c)? {
            FoldVal::Str(s) => Some(FoldVal::Bool(LikeMatcher::new(pattern).matches(&s))),
            _ => None,
        },
        Expr::InStr(c, options) => match fold_const(c)? {
            FoldVal::Str(s) => Some(FoldVal::Bool(options.contains(&s))),
            _ => None,
        },
        Expr::InI64(c, options) => match fold_const(c)? {
            FoldVal::I64(x) => Some(FoldVal::Bool(options.contains(&x))),
            _ => None,
        },
        Expr::Substr(c, start, len) => match fold_const(c)? {
            FoldVal::Str(s) => {
                if *start == 0 {
                    return None; // underflows in eval; keep the runtime behaviour
                }
                let from = (*start - 1).min(s.len());
                let to = (from + *len).min(s.len());
                Some(FoldVal::Str(s.get(from..to).unwrap_or("").to_string()))
            }
            _ => None,
        },
        Expr::ExtractYear(c) => match fold_const(c)? {
            FoldVal::I64(d) => Some(FoldVal::I64(hsqp_storage::year_of_date(d))),
            _ => None,
        },
        Expr::Case(cond, then, els) => {
            // `eval` is strict in both branches, so fold only when all
            // three parts fold (a non-folding branch could panic).
            let (c, t, e) = (fold_const(cond)?, fold_const(then)?, fold_const(els)?);
            let FoldVal::Bool(c) = c else { return None };
            if let (FoldVal::I64(t), FoldVal::I64(e)) = (&t, &e) {
                return Some(FoldVal::I64(if c { *t } else { *e }));
            }
            let (t, e) = (t.as_f64()?, e.as_f64()?);
            Some(FoldVal::F64(if c { t } else { e }))
        }
        // A folded operand is a literal, and literals are never NULL.
        Expr::IsNull(c) => fold_const(c).map(|_| FoldVal::Bool(false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsqp_storage::{Field, Schema};

    fn test_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("price", DataType::Decimal),
            Field::new("name", DataType::Utf8),
            Field::new("d", DataType::Date),
        ]);
        Table::new(
            schema,
            vec![
                Column::I64(vec![1, 2, 3, 4], None),
                Column::I64(vec![100, 250, 999, 0], None), // 1.00, 2.50, 9.99, 0
                Column::Str(
                    ["apple", "banana", "apricot", "kiwi"].into_iter().collect(),
                    None,
                ),
                Column::I64(
                    vec![
                        hsqp_storage::date_from_ymd(1995, 1, 1),
                        hsqp_storage::date_from_ymd(1996, 7, 4),
                        hsqp_storage::date_from_ymd(1996, 12, 31),
                        hsqp_storage::date_from_ymd(1997, 2, 2),
                    ],
                    None,
                ),
            ],
        )
    }

    fn run(e: &Expr) -> EvalVec {
        let t = test_table();
        eval(e, &t, 0..t.rows(), &[])
    }

    #[test]
    fn decimal_columns_promote_to_f64() {
        let v = run(&col("price"));
        assert_eq!(v.data, VecData::F64(vec![1.0, 2.5, 9.99, 0.0]));
    }

    #[test]
    fn comparison_masks() {
        let v = run(&col("k").gt(lit(2))).into_mask();
        assert_eq!(v, vec![false, false, true, true]);
        let v = run(&col("price").le(litf(2.5))).into_mask();
        assert_eq!(v, vec![true, true, false, true]);
        let v = run(&col("name").eq(lits("kiwi"))).into_mask();
        assert_eq!(v, vec![false, false, false, true]);
    }

    #[test]
    fn boolean_combinators() {
        let e = col("k").gt(lit(1)).and(col("k").lt(lit(4)));
        assert_eq!(run(&e).into_mask(), vec![false, true, true, false]);
        let e = col("k").eq(lit(1)).or(col("k").eq(lit(4)));
        assert_eq!(run(&e).into_mask(), vec![true, false, false, true]);
        let e = col("k").eq(lit(1)).not();
        assert_eq!(run(&e).into_mask(), vec![false, true, true, true]);
    }

    #[test]
    fn arithmetic_promotes() {
        let v = run(&col("k").add(lit(10)));
        assert_eq!(v.data, VecData::I64(vec![11, 12, 13, 14]));
        let v = run(&col("price").mul(litf(2.0)));
        assert_eq!(v.data, VecData::F64(vec![2.0, 5.0, 19.98, 0.0]));
        let v = run(&col("k").div(lit(2)));
        assert_eq!(v.data, VecData::F64(vec![0.5, 1.0, 1.5, 2.0]));
    }

    #[test]
    fn like_patterns() {
        assert!(LikeMatcher::new("PROMO%").matches("PROMO POLISHED TIN"));
        assert!(!LikeMatcher::new("PROMO%").matches("STANDARD TIN"));
        assert!(LikeMatcher::new("%BRASS").matches("LARGE PLATED BRASS"));
        assert!(LikeMatcher::new("%special%requests%").matches("xx special yy requests zz"));
        assert!(!LikeMatcher::new("%special%requests%").matches("requests then special"));
        assert!(LikeMatcher::new("green").matches("green"));
        assert!(!LikeMatcher::new("green").matches("greenish"));
        let v = run(&col("name").like("ap%"));
        assert_eq!(v.into_mask(), vec![true, false, true, false]);
        let v = run(&col("name").like("%an%"));
        assert_eq!(v.into_mask(), vec![false, true, false, false]);
    }

    #[test]
    fn between_is_inclusive() {
        let e = col("k").between(lit(2), lit(3));
        assert_eq!(run(&e).into_mask(), vec![false, true, true, false]);
    }

    #[test]
    fn in_lists() {
        let e = col("name").in_str(&["kiwi", "apple"]);
        assert_eq!(run(&e).into_mask(), vec![true, false, false, true]);
        let e = col("k").in_i64(&[2, 4]);
        assert_eq!(run(&e).into_mask(), vec![false, true, false, true]);
    }

    #[test]
    fn substr_and_year() {
        let v = run(&col("name").substr(1, 2));
        match v.data {
            VecData::Str(s) => {
                assert_eq!(s.get(0), "ap");
                assert_eq!(s.get(3), "ki");
            }
            other => panic!("{other:?}"),
        }
        let v = run(&col("d").year());
        assert_eq!(v.data, VecData::I64(vec![1995, 1996, 1996, 1997]));
    }

    #[test]
    fn case_expression() {
        let e = col("k").gt(lit(2)).case(col("price"), litf(0.0));
        let v = run(&e);
        assert_eq!(v.data, VecData::F64(vec![0.0, 0.0, 9.99, 0.0]));
    }

    #[test]
    fn params_resolve() {
        let t = test_table();
        let e = col("k").gt(Expr::Param(0));
        let v = eval(&e, &t, 0..4, &[Value::I64(3)]);
        assert_eq!(v.into_mask(), vec![false, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "parameter 0 not bound")]
    fn unbound_param_panics() {
        run(&Expr::Param(0));
    }

    #[test]
    fn null_comparisons_are_false() {
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int64)]);
        let mut c = Column::empty(DataType::Int64);
        c.push_value(&Value::I64(5));
        c.push_value(&Value::Null);
        let t = Table::new(schema, vec![c]);
        let v = eval(&col("x").eq(lit(5)), &t, 0..2, &[]);
        assert_eq!(v.into_mask(), vec![true, false]);
        let v = eval(&col("x").is_null(), &t, 0..2, &[]);
        assert_eq!(v.into_mask(), vec![false, true]);
    }

    #[test]
    fn columns_walks_every_variant() {
        let e = col("a")
            .gt(lit(1))
            .and(col("b").like("x%"))
            .or(col("c").add(col("d")).eq(litf(2.0)))
            .and(col("e").is_null().not())
            .and(col("f").substr(1, 2).in_str(&["q"]))
            .and(col("g").year().in_i64(&[1995]))
            .and(col("h").case(col("i"), Expr::Param(0)).ne(lit(0)));
        let cols: Vec<String> = e.columns().into_iter().collect();
        assert_eq!(cols, ["a", "b", "c", "d", "e", "f", "g", "h", "i"]);
        assert!(lit(1).columns().is_empty());
    }

    #[test]
    fn subrange_evaluation() {
        let t = test_table();
        let v = eval(&col("k"), &t, 1..3, &[]);
        assert_eq!(v.data, VecData::I64(vec![2, 3]));
    }

    #[test]
    fn eval_vec_into_column_roundtrip() {
        let v = run(&col("k").mul(lit(2)));
        let (c, dt) = v.into_column();
        assert_eq!(dt, DataType::Int64);
        assert_eq!(c.i64_values(), &[2, 4, 6, 8]);
    }

    #[test]
    fn fold_collapses_literal_subtrees() {
        assert_eq!(lit(2).add(lit(3)).fold(), lit(5));
        assert_eq!(lit(10).div(lit(4)).fold(), litf(2.5));
        assert_eq!(lits("ab").substr(1, 1).fold(), lits("a"));
        assert_eq!(lit_date(1995, 6, 1).year().fold(), lit(1995));
        // Mixed subtrees fold only their constant parts.
        assert_eq!(
            col("k").add(lit(2).mul(lit(3))).fold(),
            col("k").add(lit(6))
        );
    }

    #[test]
    fn fold_preserves_eval_semantics() {
        // Integer comparison stays integer; float NaN comparisons stay false.
        assert_eq!(fold_const(&lit(3).lt(lit(4))), Some(FoldVal::Bool(true)));
        assert_eq!(
            fold_const(&litf(f64::NAN).ne(litf(1.0))),
            Some(FoldVal::Bool(false))
        );
        // Division by zero promotes to float infinity, it does not panic.
        assert_eq!(
            fold_const(&lit(1).div(lit(0))),
            Some(FoldVal::F64(f64::INFINITY))
        );
        // Overflow does not fold (eval panics in debug builds).
        assert_eq!(fold_const(&lit(i64::MAX).add(lit(1))), None);
        // Type errors do not fold (eval panics at runtime).
        assert_eq!(fold_const(&lits("x").add(lit(1))), None);
        assert_eq!(fold_const(&Expr::And(vec![lit(1)])), None);
    }

    #[test]
    fn fold_drops_neutral_boolean_children() {
        let e = col("k").gt(lit(2)).and(lit(1).lt(lit(2)));
        assert_eq!(e.fold(), Expr::And(vec![col("k").gt(lit(2))]));
        let t = test_table();
        let folded = e.fold();
        assert_eq!(
            eval(&e, &t, 0..4, &[]).into_mask(),
            eval(&folded, &t, 0..4, &[]).into_mask()
        );
    }
}
