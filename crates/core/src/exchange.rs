//! Decoupled exchange operators and the communication multiplexer (§3.2).
//!
//! The decoupled exchange operator only ever talks to its node-local
//! multiplexer: workers partition and serialize tuples into pooled message
//! buffers (Figure 7, steps 1–4); the multiplexer — one dedicated network
//! thread per server — ships full messages according to the round-robin
//! network schedule and routes incoming messages into per-NUMA-socket
//! receive queues (step 5); workers deserialize NUMA-local messages first
//! and steal from other sockets when idle (steps 5a/5b).
//!
//! The classic exchange operator model is supported as a baseline: `n·t`
//! parallel units, hash space split `n·t` ways, static unit↔partition
//! binding (no stealing), broadcast duplicated per *unit* rather than per
//! server, and no network scheduling.
//!
//! Message layout on the wire (after Figure 7's message header): the first
//! part of a message (RDMA key, NUMA node, retain count) never leaves the
//! machine; only the second part is transmitted — query id, exchange id,
//! last-message flag, partition bucket, used byte count, then serialized
//! tuples in the Figure 8 format. The query id lets the multiplexers route
//! and account traffic of several concurrently running queries over the
//! same fabric.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex};

use hsqp_net::{
    Fabric, NodeId, QueryId, QueryStatsRegistry, Schedule, Transport as NetTransport,
    TransportEvent,
};
use hsqp_numa::{AllocPolicy, SocketId, Topology};

/// Size of the wire header preceding serialized tuples.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 2 + 4;

/// Header flag: the sender's final message for this exchange.
pub const FLAG_LAST: u8 = 1;
/// Header flag: a classic-mode broadcast duplicate — it pays wire and
/// receive cost but its tuple data must not be consumed again.
pub const FLAG_DUP: u8 = 2;
/// Header flag: the sending node failed this query mid-exchange; receivers
/// abort the query's receive-hub state so blocked consumers unblock
/// instead of waiting for last-markers that will never come.
pub const FLAG_ABORT: u8 = 4;

/// Encode the transmitted message header.
pub fn encode_header(
    query: QueryId,
    exchange: u32,
    flags: u8,
    bucket: u16,
    used: u32,
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(&query.0.to_le_bytes());
    out.extend_from_slice(&exchange.to_le_bytes());
    out.push(flags);
    out.extend_from_slice(&bucket.to_le_bytes());
    out.extend_from_slice(&used.to_le_bytes());
}

/// Overwrite the header at the front of an already-built message.
pub fn patch_header(query: QueryId, exchange: u32, flags: u8, bucket: u16, buf: &mut [u8]) {
    let used = (buf.len() - HEADER_LEN) as u32;
    buf[0..4].copy_from_slice(&query.0.to_le_bytes());
    buf[4..8].copy_from_slice(&exchange.to_le_bytes());
    buf[8] = flags;
    buf[9..11].copy_from_slice(&bucket.to_le_bytes());
    buf[11..15].copy_from_slice(&used.to_le_bytes());
}

/// Decoded message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Query this message belongs to.
    pub query: QueryId,
    /// Logical exchange operator (unique within the query) this message
    /// belongs to.
    pub exchange: u32,
    /// Whether this is the sender's final message for this exchange.
    pub last: bool,
    /// Whether this is a classic-mode broadcast duplicate.
    pub dup: bool,
    /// Whether the sender aborted this query mid-exchange.
    pub abort: bool,
    /// Partition bucket (classic mode routes on it; 0 in hybrid mode).
    pub bucket: u16,
    /// Bytes of tuple data following the header.
    pub used: u32,
}

/// Decode a wire message header.
///
/// # Panics
/// Panics if the buffer is shorter than [`HEADER_LEN`].
pub fn decode_header(buf: &[u8]) -> Header {
    assert!(buf.len() >= HEADER_LEN, "message shorter than header");
    Header {
        query: QueryId(u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"))),
        exchange: u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
        last: buf[8] & FLAG_LAST != 0,
        dup: buf[8] & FLAG_DUP != 0,
        abort: buf[8] & FLAG_ABORT != 0,
        bucket: u16::from_le_bytes(buf[9..11].try_into().expect("2 bytes")),
        used: u32::from_le_bytes(buf[11..15].try_into().expect("4 bytes")),
    }
}

// ---------------------------------------------------------------------------
// Message pool
// ---------------------------------------------------------------------------

/// NUMA-aware message pool with memory-region registration accounting.
///
/// RDMA buffers must be pinned and registered with the HCA — expensive, so
/// the engine reuses buffers (§2.2.2, §3.2.2). The pool tracks how many
/// registered buffers are idle per socket; taking one from the pool is
/// free, taking one when the pool is empty pays the registration cost on
/// the fabric's CPU accounting.
pub struct MessagePool {
    fabric: Arc<Fabric>,
    node: NodeId,
    capacity: usize,
    idle: Vec<AtomicU64>,
    registrations: AtomicU64,
    reuses: AtomicU64,
    alloc_seq: AtomicU64,
    registration_cost: Duration,
}

impl MessagePool {
    /// Pool for `sockets` sockets handing out buffers of `capacity` bytes.
    pub fn new(fabric: Arc<Fabric>, node: NodeId, sockets: u16, capacity: usize) -> Self {
        Self {
            fabric,
            node,
            capacity,
            idle: (0..sockets).map(|_| AtomicU64::new(0)).collect(),
            registrations: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            alloc_seq: AtomicU64::new(0),
            registration_cost: Duration::from_micros(40),
        }
    }

    /// Buffer capacity (message size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Take a message buffer for a worker on `worker_socket` under `policy`.
    /// Returns the buffer and the socket its memory lives on.
    pub fn take(
        &self,
        policy: AllocPolicy,
        worker_socket: SocketId,
        topology: &Topology,
    ) -> (Vec<u8>, SocketId) {
        let seq = self.alloc_seq.fetch_add(1, Ordering::Relaxed);
        let socket = topology.alloc_socket(policy, worker_socket, seq);
        let shelf = &self.idle[socket.0 as usize];
        let mut cur = shelf.load(Ordering::Relaxed);
        let reused = loop {
            if cur == 0 {
                break false;
            }
            match shelf.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break true,
                Err(c) => cur = c,
            }
        };
        if reused {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.registrations.fetch_add(1, Ordering::Relaxed);
            // Pin + register the fresh region with the HCA.
            self.fabric
                .charge_send_cpu(self.node, self.registration_cost);
        }
        (Vec::with_capacity(self.capacity + HEADER_LEN), socket)
    }

    /// Return a buffer's registration to the pool after its message was
    /// sent (reference count dropped to zero, Figure 7 step 4).
    pub fn recycle(&self, socket: SocketId) {
        self.idle[socket.0 as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of memory-region registrations paid so far.
    pub fn registrations(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    /// Number of times a pooled registration was reused.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Receive hub
// ---------------------------------------------------------------------------

/// A received message awaiting deserialization.
#[derive(Debug)]
pub struct RecvMsg {
    /// Tuple bytes (header stripped).
    pub data: Bytes,
    /// NUMA socket the receive buffer lives on.
    pub mem_socket: SocketId,
}

struct ExchangeState {
    /// One queue per NUMA socket (hybrid) or per parallel unit (classic).
    queues: Vec<std::collections::VecDeque<RecvMsg>>,
    lasts_received: u32,
    expected_lasts: Option<u32>,
}

impl ExchangeState {
    fn done_receiving(&self) -> bool {
        self.expected_lasts
            .is_some_and(|e| self.lasts_received >= e)
    }
}

/// Composite hub key: query id in the high half, exchange id in the low —
/// two in-flight queries can use identical exchange sequence numbers
/// without their tuples ever mixing.
fn hub_key(query: QueryId, exchange: u32) -> u64 {
    (u64::from(query.0) << 32) | u64::from(exchange)
}

/// Mutable hub state under one lock: the per-exchange queues plus the
/// abort markers that unblock consumers when a query or the whole fabric
/// fails mid-exchange.
struct HubState {
    exchanges: HashMap<u64, ExchangeState>,
    /// Queries aborted mid-flight (cross-node abort frame, peer panic, or
    /// coordinator abort), with the first recorded reason.
    aborted: HashMap<u32, String>,
    /// Set when the node's connectivity is irrecoverably gone (a peer
    /// process died): every current and future consumer unblocks.
    dead: Option<String>,
}

/// Per-node routing point between the multiplexer and the exchange
/// operators: per-socket receive queues with cross-socket work stealing,
/// keyed by (query, exchange) so concurrent queries stay isolated.
pub struct RecvHub {
    state: Mutex<HubState>,
    wakeup: Condvar,
    queues: usize,
}

impl RecvHub {
    /// Hub with `queues` receive queues (sockets in hybrid mode, units in
    /// classic mode).
    pub fn new(queues: usize) -> Arc<Self> {
        assert!(queues > 0, "need at least one receive queue");
        Arc::new(Self {
            state: Mutex::new(HubState {
                exchanges: HashMap::new(),
                aborted: HashMap::new(),
                dead: None,
            }),
            wakeup: Condvar::new(),
            queues,
        })
    }

    /// Number of receive queues.
    pub fn queue_count(&self) -> usize {
        self.queues
    }

    /// Announce how many last-markers exchange `id` of `query` will
    /// receive; consumers block until that many have arrived and all data
    /// is drained.
    pub fn expect_lasts(&self, query: QueryId, id: u32, expected: u32) {
        let mut st = self.state.lock();
        let queues = self.queues;
        let ex = st
            .exchanges
            .entry(hub_key(query, id))
            .or_insert_with(|| ExchangeState {
                queues: (0..queues).map(|_| Default::default()).collect(),
                lasts_received: 0,
                expected_lasts: None,
            });
        ex.expected_lasts = Some(expected);
        drop(st);
        self.wakeup.notify_all();
    }

    /// Deliver a message (the multiplexer calls this; also used for
    /// node-local partitions that never touch the network).
    pub fn deliver(&self, query: QueryId, id: u32, queue: usize, msg: Option<RecvMsg>, last: bool) {
        let mut st = self.state.lock();
        let queues = self.queues;
        let ex = st
            .exchanges
            .entry(hub_key(query, id))
            .or_insert_with(|| ExchangeState {
                queues: (0..queues).map(|_| Default::default()).collect(),
                lasts_received: 0,
                expected_lasts: None,
            });
        if let Some(m) = msg {
            ex.queues[queue % self.queues].push_back(m);
        }
        if last {
            ex.lasts_received += 1;
        }
        drop(st);
        self.wakeup.notify_all();
    }

    /// Pop the next message for exchange `id` of `query`, preferring `own`
    /// queue and stealing from others when `steal` is set. Returns `None`
    /// once the exchange is fully drained (all lasts received, queues
    /// empty).
    ///
    /// # Panics
    /// Panics when the query (or the whole hub) was aborted while the
    /// consumer was blocked — the panic unwinds the consumer out of the
    /// exchange and is contained at the SPMD scope, surfacing as
    /// [`EngineError::Execution`](crate::error::EngineError::Execution).
    pub fn pop(&self, query: QueryId, id: u32, own: usize, steal: bool) -> Option<RecvMsg> {
        self.pop_cancellable(query, id, own, steal, None)
    }

    /// [`pop`](Self::pop) that additionally polls a cooperative
    /// cancellation token while blocked: a cancel or deadline trip lands
    /// within one poll interval even when this consumer is starved
    /// waiting on peer nodes' messages.
    ///
    /// # Panics
    /// Panics (like [`pop`](Self::pop)'s abort path) when the token trips
    /// — the panic unwinds the consumer out of the exchange and is
    /// contained at the SPMD scope.
    pub fn pop_cancellable(
        &self,
        query: QueryId,
        id: u32,
        own: usize,
        steal: bool,
        cancel: Option<&crate::serve::CancelToken>,
    ) -> Option<RecvMsg> {
        // Bounds how long a blocked consumer can outlive a cancel.
        const CANCEL_POLL: std::time::Duration = std::time::Duration::from_millis(5);
        let mut st = self.state.lock();
        loop {
            if let Some(reason) = &st.dead {
                panic!("query {query} aborted: {reason}");
            }
            if let Some(reason) = st.aborted.get(&query.0) {
                panic!("query {query} aborted: {reason}");
            }
            if let Some(token) = cancel {
                if let Some(reason) = token.should_stop() {
                    panic!("query {query} stopped at exchange wait: {reason:?}");
                }
            }
            let ex = st
                .exchanges
                .get_mut(&hub_key(query, id))
                .expect("exchange must be registered before popping");
            // 5a: NUMA-local receive queue first.
            if let Some(m) = ex.queues[own % self.queues].pop_front() {
                return Some(m);
            }
            // 5b: steal work from other queues.
            if steal {
                for q in 0..self.queues {
                    if q != own % self.queues {
                        if let Some(m) = ex.queues[q].pop_front() {
                            return Some(m);
                        }
                    }
                }
            }
            let drained = if steal {
                ex.queues.iter().all(|q| q.is_empty())
            } else {
                ex.queues[own % self.queues].is_empty()
            };
            if ex.done_receiving() && drained {
                return None;
            }
            match cancel {
                // A timed wait so the token is re-polled even when no
                // deliver/abort notification ever arrives.
                Some(_) => {
                    let _ = self.wakeup.wait_for(&mut st, CANCEL_POLL);
                }
                None => self.wakeup.wait(&mut st),
            }
        }
    }

    /// Mark `query` aborted (first reason wins) and wake every blocked
    /// consumer; their `pop`s panic out of the exchange. Cleared by
    /// [`finish_query`](Self::finish_query).
    pub fn abort(&self, query: QueryId, reason: &str) {
        self.state
            .lock()
            .aborted
            .entry(query.0)
            .or_insert_with(|| reason.to_string());
        self.wakeup.notify_all();
    }

    /// Mark the whole hub dead — a peer process disconnected, so *no*
    /// in-flight or future exchange on this node can complete. Every
    /// blocked and future `pop` panics with `reason`.
    pub fn abort_all(&self, reason: &str) {
        let mut st = self.state.lock();
        if st.dead.is_none() {
            st.dead = Some(reason.to_string());
        }
        drop(st);
        self.wakeup.notify_all();
    }

    /// Whether `query` is marked aborted (or the hub is dead).
    pub fn is_aborted(&self, query: QueryId) -> bool {
        let st = self.state.lock();
        st.dead.is_some() || st.aborted.contains_key(&query.0)
    }

    /// Remove a completed exchange's state.
    pub fn finish(&self, query: QueryId, id: u32) {
        self.state.lock().exchanges.remove(&hub_key(query, id));
    }

    /// Remove every residual exchange state and the abort marker of
    /// `query` (completion and cancellation cleanup: nothing of a finished
    /// query may linger in the hub, however its stages ended).
    pub fn finish_query(&self, query: QueryId) {
        let mut st = self.state.lock();
        st.exchanges.retain(|&k, _| (k >> 32) as u32 != query.0);
        st.aborted.remove(&query.0);
    }

    /// Number of exchange states currently held (tests and leak checks).
    pub fn active_exchanges(&self) -> usize {
        self.state.lock().exchanges.len()
    }
}

// ---------------------------------------------------------------------------
// Multiplexer
// ---------------------------------------------------------------------------

/// Commands from exchange operators to their multiplexer.
pub enum MuxCmd {
    /// Queue one message for `target`. `pool_socket` is returned to the
    /// message pool once the send completed.
    Send {
        /// Destination node.
        target: NodeId,
        /// Full wire message (header + tuples).
        payload: Bytes,
        /// Socket whose pool registration to recycle after sending.
        pool_socket: SocketId,
    },
    /// Queue one message for every other node, serialized once and retained
    /// per target (the broadcast retain counter of §3.2).
    Broadcast {
        /// Full wire message.
        payload: Bytes,
        /// Pool registration to recycle.
        pool_socket: SocketId,
        /// Copies to send to each remote node (1 in hybrid mode; `t` in
        /// classic mode, where every remote exchange unit gets its own).
        copies_per_node: u16,
    },
    /// Shut the multiplexer down.
    Shutdown,
}

/// Configuration of one node's multiplexer.
pub struct MuxConfig {
    /// This node.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: u16,
    /// Network scheduling on/off (§3.2.3).
    pub scheduling: bool,
    /// Messages sent to one target before re-synchronizing (the paper uses
    /// 8 per phase).
    pub batch_per_phase: usize,
    /// Receive queues (sockets in hybrid mode, units in classic mode).
    pub classic_units: Option<u16>,
    /// Sockets for round-robin receive-buffer placement.
    pub sockets: u16,
    /// Receive-buffer allocation policy (Figure 9).
    pub alloc_policy: AllocPolicy,
}

/// Spawn the multiplexer thread for one node.
///
/// The multiplexer is transport-agnostic: `transport` may be a simulated
/// endpoint (RDMA or TCP cost model, in-process) or a
/// [`SocketTransport`](hsqp_net::SocketTransport) over genuine OS sockets
/// between processes. Every message it puts on the wire is attributed to
/// the query id in its header via `query_stats`, giving per-query fabric
/// accounting even when several queries share the multiplexer.
///
/// Returns the command sender; the thread exits on [`MuxCmd::Shutdown`].
pub fn spawn_multiplexer(
    cfg: MuxConfig,
    transport: Box<dyn NetTransport>,
    hub: Arc<RecvHub>,
    pool: Arc<MessagePool>,
    scheduler: Option<Arc<hsqp_net::NetScheduler>>,
    query_stats: Arc<QueryStatsRegistry>,
) -> (Sender<MuxCmd>, std::thread::JoinHandle<()>) {
    let (tx, rx) = unbounded();
    let handle = std::thread::Builder::new()
        .name(format!("mux-{}", cfg.node.0))
        .spawn(move || {
            mux_loop(
                &cfg,
                transport.as_ref(),
                &hub,
                &pool,
                scheduler.as_deref(),
                &query_stats,
                &rx,
            )
        })
        .expect("spawn multiplexer");
    (tx, handle)
}

fn mux_loop(
    cfg: &MuxConfig,
    endpoint: &dyn NetTransport,
    hub: &RecvHub,
    pool: &MessagePool,
    scheduler: Option<&hsqp_net::NetScheduler>,
    query_stats: &QueryStatsRegistry,
    rx: &Receiver<MuxCmd>,
) {
    let n = cfg.nodes;
    let mut queues: Vec<std::collections::VecDeque<(Bytes, SocketId)>> =
        (0..n).map(|_| Default::default()).collect();
    let schedule = Schedule::new(n.max(1));
    let mut phase: u16 = 1;
    let mut recv_rr: u64 = 0;
    let mut shutdown = false;

    loop {
        // Route incoming completions to the receive queues, alternating
        // NUMA sockets ("receives messages for every NUMA region in turn").
        let mut received = false;
        while let Some(ev) = endpoint.try_recv() {
            received = true;
            handle_event(cfg, hub, ev, &mut recv_rr);
        }

        // Accept new work from the exchange operators.
        loop {
            match rx.try_recv() {
                Ok(MuxCmd::Send {
                    target,
                    payload,
                    pool_socket,
                }) => queues[target.idx()].push_back((payload, pool_socket)),
                Ok(MuxCmd::Broadcast {
                    payload,
                    pool_socket,
                    copies_per_node,
                }) => {
                    for t in 0..n {
                        if t == cfg.node.0 {
                            continue;
                        }
                        for _ in 0..copies_per_node {
                            // Retain: cheap Bytes clone, no data copy.
                            queues[t as usize].push_back((payload.clone(), pool_socket));
                        }
                    }
                }
                Ok(MuxCmd::Shutdown) => shutdown = true,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }

        if shutdown && queues.iter().all(|q| q.is_empty()) {
            if let Some(s) = scheduler {
                s.leave();
            }
            // Drain any final in-flight messages for receivers still alive.
            while let Some(ev) = endpoint.try_recv() {
                handle_event(cfg, hub, ev, &mut recv_rr);
            }
            return;
        }

        if n <= 1 {
            std::thread::sleep(Duration::from_micros(20));
            continue;
        }

        if cfg.scheduling {
            // Round-robin phases in lockstep with all other multiplexers:
            // send a batch to this phase's target, synchronize, advance.
            let target = schedule.target(cfg.node, phase);
            let mut sent = 0;
            while sent < cfg.batch_per_phase {
                match queues[target.idx()].pop_front() {
                    Some((payload, pool_socket)) => {
                        ship(endpoint, query_stats, target, &payload);
                        pool.recycle(pool_socket);
                        sent += 1;
                    }
                    None => break,
                }
            }
            if let Some(s) = scheduler {
                s.sync();
            }
            phase = phase % schedule.phases() + 1;
            // Fully idle round (nothing shipped, received, or queued):
            // back off like the uncoordinated path does, so an idle
            // fabric's phase barrier does not busy-spin compute threads
            // off small hosts. Under load at least one of these is true
            // on every node, so the hot path never sleeps.
            if sent == 0 && !received && queues.iter().all(|q| q.is_empty()) {
                std::thread::sleep(Duration::from_micros(20));
            }
        } else {
            // Uncoordinated: ship whatever is queued, all targets at once.
            let mut any = false;
            for t in 0..n {
                if let Some((payload, pool_socket)) = queues[t as usize].pop_front() {
                    ship(endpoint, query_stats, NodeId(t), &payload);
                    pool.recycle(pool_socket);
                    any = true;
                }
            }
            if !any {
                std::thread::sleep(Duration::from_micros(20));
            }
        }
    }
}

/// Put one message on the wire and attribute it to its query.
fn ship(
    endpoint: &dyn NetTransport,
    query_stats: &QueryStatsRegistry,
    target: NodeId,
    payload: &Bytes,
) {
    let h = decode_header(payload);
    query_stats.record_send(h.query, payload.len() as u64);
    endpoint.send(target, payload.clone());
}

/// React to one transport event: route a message into the receive queues,
/// or — on a real transport reporting a dead peer — abort everything in
/// flight on this node (no exchange can complete without the peer).
fn handle_event(cfg: &MuxConfig, hub: &RecvHub, ev: TransportEvent, recv_rr: &mut u64) {
    match ev {
        TransportEvent::Message { payload, .. } => route_incoming(cfg, hub, payload, recv_rr),
        TransportEvent::PeerGone { reason, .. } => hub.abort_all(&reason),
    }
}

fn route_incoming(cfg: &MuxConfig, hub: &RecvHub, payload: Bytes, recv_rr: &mut u64) {
    let h = decode_header(&payload);
    if h.abort {
        // Cross-node abort frame: the sender failed this query; unblock
        // our consumers waiting on it.
        hub.abort(h.query, "aborted by a peer node");
        return;
    }
    let data = payload.slice(HEADER_LEN..HEADER_LEN + h.used as usize);
    let queue = match cfg.classic_units {
        // Classic: static unit binding — the bucket picks the queue.
        Some(units) => (h.bucket % units) as usize,
        // Hybrid: NUMA sockets in turn.
        None => {
            let q = (*recv_rr % u64::from(cfg.sockets)) as usize;
            *recv_rr += 1;
            q
        }
    };
    // Receive-buffer placement policy (Figure 9).
    let mem_socket = match cfg.alloc_policy {
        AllocPolicy::NumaAware => SocketId((queue as u16) % cfg.sockets),
        AllocPolicy::Interleaved => {
            let s = SocketId((*recv_rr % u64::from(cfg.sockets)) as u16);
            *recv_rr += 1;
            s
        }
        AllocPolicy::SingleSocket => SocketId(0),
    };
    let has_data = h.used > 0 && !h.dup;
    hub.deliver(
        h.query,
        h.exchange,
        queue,
        has_data.then_some(RecvMsg { data, mem_socket }),
        h.last,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsqp_net::{FabricConfig, RdmaConfig, RdmaNetwork};

    #[test]
    fn header_roundtrip() {
        let mut buf = Vec::new();
        encode_header(QueryId(9), 77, FLAG_LAST, 5, 1234, &mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let h = decode_header(&buf);
        assert_eq!(
            h,
            Header {
                query: QueryId(9),
                exchange: 77,
                last: true,
                dup: false,
                abort: false,
                bucket: 5,
                used: 1234
            }
        );
    }

    #[test]
    #[should_panic(expected = "shorter than header")]
    fn short_header_panics() {
        decode_header(&[1, 2, 3]);
    }

    #[test]
    fn pool_accounts_registrations_and_reuses() {
        let fabric = Arc::new(Fabric::new(1, FabricConfig::qdr()));
        let pool = MessagePool::new(fabric, NodeId(0), 2, 1024);
        let topo = Topology::uniform(2);
        let (_, s) = pool.take(AllocPolicy::NumaAware, SocketId(0), &topo);
        assert_eq!(pool.registrations(), 1);
        assert_eq!(pool.reuses(), 0);
        pool.recycle(s);
        let (_, _) = pool.take(AllocPolicy::NumaAware, SocketId(0), &topo);
        assert_eq!(pool.registrations(), 1);
        assert_eq!(pool.reuses(), 1);
    }

    const Q: QueryId = QueryId(1);

    #[test]
    fn hub_delivers_and_drains() {
        let hub = RecvHub::new(2);
        hub.expect_lasts(Q, 1, 1);
        hub.deliver(
            Q,
            1,
            0,
            Some(RecvMsg {
                data: Bytes::from_static(b"abc"),
                mem_socket: SocketId(0),
            }),
            false,
        );
        hub.deliver(Q, 1, 0, None, true);
        let m = hub.pop(Q, 1, 0, true).unwrap();
        assert_eq!(&m.data[..], b"abc");
        assert!(hub.pop(Q, 1, 0, true).is_none());
        hub.finish(Q, 1);
        assert_eq!(hub.active_exchanges(), 0);
    }

    #[test]
    fn hub_isolates_queries_with_identical_exchange_ids() {
        let hub = RecvHub::new(1);
        let (qa, qb) = (QueryId(7), QueryId(8));
        hub.expect_lasts(qa, 1, 1);
        hub.expect_lasts(qb, 1, 1);
        hub.deliver(
            qa,
            1,
            0,
            Some(RecvMsg {
                data: Bytes::from_static(b"for-a"),
                mem_socket: SocketId(0),
            }),
            true,
        );
        hub.deliver(qb, 1, 0, None, true);
        // Query B's exchange 1 drains empty; A's holds its message.
        assert!(hub.pop(qb, 1, 0, true).is_none());
        assert_eq!(&hub.pop(qa, 1, 0, true).unwrap().data[..], b"for-a");
        assert!(hub.pop(qa, 1, 0, true).is_none());
        hub.finish_query(qa);
        hub.finish_query(qb);
        assert_eq!(hub.active_exchanges(), 0);
    }

    #[test]
    fn hub_steals_across_queues() {
        let hub = RecvHub::new(2);
        hub.expect_lasts(Q, 9, 1);
        hub.deliver(
            Q,
            9,
            1, // other queue
            Some(RecvMsg {
                data: Bytes::from_static(b"x"),
                mem_socket: SocketId(1),
            }),
            true,
        );
        // Worker on queue 0 with stealing finds it.
        assert!(hub.pop(Q, 9, 0, true).is_some());
        assert!(hub.pop(Q, 9, 0, true).is_none());
    }

    #[test]
    fn hub_without_stealing_ignores_other_queues() {
        let hub = RecvHub::new(2);
        hub.expect_lasts(Q, 3, 1);
        hub.deliver(
            Q,
            3,
            1,
            Some(RecvMsg {
                data: Bytes::from_static(b"y"),
                mem_socket: SocketId(1),
            }),
            true,
        );
        // Queue-0 consumer without stealing drains (sees none).
        assert!(hub.pop(Q, 3, 0, false).is_none());
        // Queue-1 consumer picks it up.
        assert!(hub.pop(Q, 3, 1, false).is_some());
    }

    #[test]
    fn hub_pop_blocks_until_last_arrives() {
        let hub = RecvHub::new(1);
        hub.expect_lasts(Q, 5, 1);
        let h2 = Arc::clone(&hub);
        let h = std::thread::spawn(move || h2.pop(Q, 5, 0, true));
        std::thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "pop returned before last marker");
        hub.deliver(Q, 5, 0, None, true);
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn abort_unblocks_blocked_pop() {
        let hub = RecvHub::new(1);
        hub.expect_lasts(Q, 5, 1);
        let h2 = Arc::clone(&hub);
        let h = std::thread::spawn(move || {
            let r =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h2.pop(Q, 5, 0, true)));
            r.is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        hub.abort(Q, "peer node failed");
        assert!(h.join().unwrap(), "pop must panic out on abort");
        assert!(hub.is_aborted(Q));
        // finish_query clears the abort marker for id reuse.
        hub.finish_query(Q);
        assert!(!hub.is_aborted(Q));
    }

    #[test]
    fn abort_all_kills_every_query() {
        let hub = RecvHub::new(1);
        let (qa, qb) = (QueryId(3), QueryId(4));
        hub.expect_lasts(qa, 1, 1);
        hub.expect_lasts(qb, 1, 1);
        hub.abort_all("node 1 connection lost");
        for q in [qa, qb] {
            let h2 = Arc::clone(&hub);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                h2.pop(q, 1, 0, true)
            }));
            assert!(r.is_err(), "pop must panic on a dead hub");
        }
    }

    #[test]
    fn abort_frame_routes_to_hub_abort() {
        let hub = RecvHub::new(1);
        hub.expect_lasts(Q, 2, 1);
        let cfg = MuxConfig {
            node: NodeId(0),
            nodes: 2,
            scheduling: false,
            batch_per_phase: 8,
            classic_units: None,
            sockets: 1,
            alloc_policy: AllocPolicy::NumaAware,
        };
        let mut frame = Vec::new();
        encode_header(Q, 2, FLAG_ABORT, 0, 0, &mut frame);
        let mut rr = 0;
        route_incoming(&cfg, &hub, Bytes::from(frame), &mut rr);
        assert!(hub.is_aborted(Q));
    }

    #[test]
    fn multiplexer_ships_messages_end_to_end() {
        let fabric = Arc::new(Fabric::new(2, FabricConfig::qdr()));
        let net = RdmaNetwork::new(Arc::clone(&fabric), RdmaConfig::default());
        let mut handles = Vec::new();
        let mut senders = Vec::new();
        let hubs: Vec<_> = (0..2).map(|_| RecvHub::new(2)).collect();
        let sched = hsqp_net::NetScheduler::new(2);
        let stats = Arc::new(QueryStatsRegistry::new());
        let q_stats = stats.register(Q);
        for node in 0..2u16 {
            let ep = net.endpoint(NodeId(node));
            ep.post_recvs(1 << 20);
            let pool = Arc::new(MessagePool::new(Arc::clone(&fabric), NodeId(node), 2, 4096));
            let cfg = MuxConfig {
                node: NodeId(node),
                nodes: 2,
                scheduling: true,
                batch_per_phase: 8,
                classic_units: None,
                sockets: 2,
                alloc_policy: AllocPolicy::NumaAware,
            };
            let (tx, h) = spawn_multiplexer(
                cfg,
                Box::new(ep),
                Arc::clone(&hubs[node as usize]),
                pool,
                Some(Arc::clone(&sched)),
                Arc::clone(&stats),
            );
            senders.push(tx);
            handles.push(h);
        }

        // Node 0 sends one data message + last marker to node 1.
        let mut msg = Vec::new();
        encode_header(Q, 42, 0, 0, 5, &mut msg);
        msg.extend_from_slice(b"hello");
        let msg_len = msg.len() as u64;
        senders[0]
            .send(MuxCmd::Send {
                target: NodeId(1),
                payload: Bytes::from(msg),
                pool_socket: SocketId(0),
            })
            .unwrap();
        let mut lastmsg = Vec::new();
        encode_header(Q, 42, FLAG_LAST, 0, 0, &mut lastmsg);
        senders[0]
            .send(MuxCmd::Send {
                target: NodeId(1),
                payload: Bytes::from(lastmsg),
                pool_socket: SocketId(0),
            })
            .unwrap();

        hubs[1].expect_lasts(Q, 42, 1);
        let got = hubs[1].pop(Q, 42, 0, true).unwrap();
        assert_eq!(&got.data[..], b"hello");
        assert!(hubs[1].pop(Q, 42, 0, true).is_none());
        // Both wire messages were attributed to the query.
        assert_eq!(q_stats.messages_sent(), 2);
        assert_eq!(q_stats.bytes_sent(), msg_len + HEADER_LEN as u64);

        for tx in &senders {
            tx.send(MuxCmd::Shutdown).unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
