//! Physical query plans.
//!
//! Plans are trees of physical operators, built by hand per query (the
//! paper's plans are produced by HyPer's optimizer; ours are the unnested,
//! distributed plans of Figure 6 written out explicitly). Exchange
//! operators mark where tuples cross server boundaries; everything else
//! runs node-locally with morsel-driven parallelism.

use hsqp_storage::DataType;
use hsqp_tpch::TpchTable;

use crate::expr::Expr;

/// Join variants used by the TPC-H plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Emit probe ⨝ build matches.
    Inner,
    /// Emit every probe row; build columns NULL when unmatched (Q13).
    LeftOuter,
    /// Emit probe rows with ≥ 1 match, probe columns only (EXISTS).
    LeftSemi,
    /// Emit probe rows with no match, probe columns only (NOT EXISTS).
    LeftAnti,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `sum(expr)`.
    Sum,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `count(expr)` — counts non-NULL rows; use a literal for `count(*)`.
    Count,
    /// `count(distinct expr)`.
    CountDistinct,
    /// `avg(expr)`.
    Avg,
}

/// One aggregate in an [`Plan::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Function to apply.
    pub func: AggFunc,
    /// Input expression, evaluated per row before aggregation.
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Construct an aggregate.
    pub fn new(func: AggFunc, expr: Expr, name: &str) -> Self {
        Self {
            func,
            expr,
            name: name.to_string(),
        }
    }
}

/// Aggregation phase (pre-aggregation is the Figure 6(c) optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPhase {
    /// Complete aggregation in one step (input already partitioned by key).
    Single,
    /// Local pre-aggregation producing partial states, to be shuffled.
    Partial,
    /// Merge partial states into final results.
    Final,
}

/// One output of a [`Plan::Map`] projection.
#[derive(Debug, Clone, PartialEq)]
pub struct MapExpr {
    /// Output column name.
    pub name: String,
    /// Expression computing the column.
    pub expr: Expr,
    /// Optional logical-type override (default: inferred from the data).
    pub dtype: Option<DataType>,
}

impl MapExpr {
    /// Projection with inferred output type.
    pub fn new(name: &str, expr: Expr) -> Self {
        Self {
            name: name.to_string(),
            expr,
            dtype: None,
        }
    }

    /// Projection with an explicit logical type (e.g. keep a date a Date).
    pub fn typed(name: &str, expr: Expr, dtype: DataType) -> Self {
        Self {
            dtype: Some(dtype),
            ..Self::new(name, expr)
        }
    }
}

/// Sort key: column name + direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Column to sort by.
    pub column: String,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(column: &str) -> Self {
        Self {
            column: column.to_string(),
            desc: false,
        }
    }

    /// Descending sort key.
    pub fn desc(column: &str) -> Self {
        Self {
            column: column.to_string(),
            desc: true,
        }
    }
}

/// How an exchange redistributes tuples (§3.2.1).
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeKind {
    /// Hash-partition by CRC32 of the named columns; every node keeps its
    /// own bucket and ships the rest.
    HashPartition(Vec<String>),
    /// Replicate the full input to every node (broadcast join build sides;
    /// serialized once, retained per target — §3.2).
    Broadcast,
    /// Ship everything to node 0 (final result collection).
    Gather,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a base relation, with optional pushed-down filter and pruned
    /// column set ("columns that are not required … are pruned as early as
    /// possible", §3.2.1).
    Scan {
        /// Relation to scan.
        table: TpchTable,
        /// Pushed-down predicate.
        filter: Option<Expr>,
        /// Columns to keep (None = all).
        project: Option<Vec<String>>,
    },
    /// Scan this node's share of a temporary relation materialized by an
    /// earlier query stage (a [`LogicalQuery`](crate::logical::LogicalQuery)
    /// CTE registered via `.with(name, plan)`).
    TempScan {
        /// Name of the materialized relation.
        name: String,
        /// Columns to keep (None = all). A projected temp scan copies only
        /// the named columns; an unprojected one shares the materialized
        /// table without copying.
        project: Option<Vec<String>>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate; rows evaluating to true survive.
        predicate: Expr,
    },
    /// Compute a full projection list.
    Map {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns.
        outputs: Vec<MapExpr>,
    },
    /// Hash join; `build` side is materialized into the hash table.
    HashJoin {
        /// Probe (streaming) side.
        probe: Box<Plan>,
        /// Build side.
        build: Box<Plan>,
        /// Probe-side key columns.
        probe_keys: Vec<String>,
        /// Build-side key columns.
        build_keys: Vec<String>,
        /// Join semantics.
        kind: JoinKind,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by column names (empty = global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
        /// Aggregation phase.
        phase: AggPhase,
    },
    /// Sort with optional limit (top-k).
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
        /// Keep only the first `limit` rows.
        limit: Option<usize>,
    },
    /// Redistribute tuples between servers.
    Exchange {
        /// Input plan.
        input: Box<Plan>,
        /// Redistribution scheme.
        kind: ExchangeKind,
    },
}

impl Plan {
    /// Scan all columns of `table`.
    pub fn scan(table: TpchTable) -> Plan {
        Plan::Scan {
            table,
            filter: None,
            project: None,
        }
    }

    /// Scan selected columns of `table`.
    pub fn scan_cols(table: TpchTable, cols: &[&str]) -> Plan {
        Plan::Scan {
            table,
            filter: None,
            project: Some(cols.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Scan selected columns with a pushed-down filter.
    pub fn scan_filtered(table: TpchTable, cols: &[&str], filter: Expr) -> Plan {
        Plan::Scan {
            table,
            filter: Some(filter),
            project: Some(cols.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Scan a temporary relation materialized by an earlier query stage.
    pub fn temp_scan(name: &str) -> Plan {
        Plan::TempScan {
            name: name.to_string(),
            project: None,
        }
    }

    /// Scan selected columns of a materialized temporary relation.
    pub fn temp_scan_cols(name: &str, cols: &[&str]) -> Plan {
        Plan::TempScan {
            name: name.to_string(),
            project: Some(cols.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Add a filter on top.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Add a projection on top.
    pub fn map(self, outputs: Vec<MapExpr>) -> Plan {
        Plan::Map {
            input: Box::new(self),
            outputs,
        }
    }

    /// Join `self` (probe) with `build`.
    pub fn join(
        self,
        build: Plan,
        probe_keys: &[&str],
        build_keys: &[&str],
        kind: JoinKind,
    ) -> Plan {
        assert_eq!(
            probe_keys.len(),
            build_keys.len(),
            "join key arity mismatch"
        );
        Plan::HashJoin {
            probe: Box::new(self),
            build: Box::new(build),
            probe_keys: probe_keys.iter().map(|s| s.to_string()).collect(),
            build_keys: build_keys.iter().map(|s| s.to_string()).collect(),
            kind,
        }
    }

    /// Single-phase aggregation.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
            phase: AggPhase::Single,
        }
    }

    /// Sort (optionally limited).
    pub fn sort(self, keys: Vec<SortKey>, limit: Option<usize>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
            limit,
        }
    }

    /// Hash-repartition by `keys`.
    pub fn repartition(self, keys: &[&str]) -> Plan {
        Plan::Exchange {
            input: Box::new(self),
            kind: ExchangeKind::HashPartition(keys.iter().map(|s| s.to_string()).collect()),
        }
    }

    /// Broadcast to all nodes.
    pub fn broadcast(self) -> Plan {
        Plan::Exchange {
            input: Box::new(self),
            kind: ExchangeKind::Broadcast,
        }
    }

    /// Gather at node 0.
    pub fn gather(self) -> Plan {
        Plan::Exchange {
            input: Box::new(self),
            kind: ExchangeKind::Gather,
        }
    }

    /// Render the plan as an indented operator tree, one operator per
    /// line — exchange placement (gather / broadcast / hash-partition) is
    /// what `hsqp --explain` exists to show.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Plan::Scan {
                table,
                filter,
                project,
            } => {
                let _ = write!(out, "Scan {}", table.name());
                if let Some(cols) = project {
                    let _ = write!(out, " [{}]", cols.join(", "));
                }
                if filter.is_some() {
                    out.push_str(" (filtered)");
                }
            }
            Plan::TempScan { name, project } => {
                let _ = write!(out, "TempScan {name:?}");
                if let Some(cols) = project {
                    let _ = write!(out, " [{}]", cols.join(", "));
                }
            }
            Plan::Filter { .. } => out.push_str("Filter"),
            Plan::Map { outputs, .. } => {
                let names: Vec<&str> = outputs.iter().map(|o| o.name.as_str()).collect();
                let _ = write!(out, "Map [{}]", names.join(", "));
            }
            Plan::HashJoin {
                probe_keys,
                build_keys,
                kind,
                ..
            } => {
                let _ = write!(
                    out,
                    "HashJoin {kind:?} on {} = {}",
                    probe_keys.join(", "),
                    build_keys.join(", ")
                );
            }
            Plan::Aggregate {
                group_by, phase, ..
            } => {
                let _ = write!(out, "Aggregate {phase:?}");
                if !group_by.is_empty() {
                    let _ = write!(out, " by [{}]", group_by.join(", "));
                }
            }
            Plan::Sort { keys, limit, .. } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.column, if k.desc { " desc" } else { "" }))
                    .collect();
                let _ = write!(out, "Sort [{}]", keys.join(", "));
                if let Some(n) = limit {
                    let _ = write!(out, " limit {n}");
                }
            }
            Plan::Exchange { kind, .. } => match kind {
                ExchangeKind::HashPartition(keys) => {
                    let _ = write!(out, "Exchange HashPartition [{}]", keys.join(", "));
                }
                ExchangeKind::Broadcast => out.push_str("Exchange Broadcast"),
                ExchangeKind::Gather => out.push_str("Exchange Gather"),
            },
        }
        out.push('\n');
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }

    /// Number of [`Plan::Exchange`] operators in the tree.
    pub fn exchange_count(&self) -> usize {
        let own = usize::from(matches!(self, Plan::Exchange { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.exchange_count())
            .sum::<usize>()
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } | Plan::TempScan { .. } => vec![],
            Plan::Filter { input, .. }
            | Plan::Map { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Exchange { input, .. } => vec![input],
            Plan::HashJoin { probe, build, .. } => vec![probe, build],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn builder_constructs_expected_tree() {
        let p = Plan::scan(TpchTable::Lineitem)
            .filter(col("l_quantity").lt(lit(24)))
            .repartition(&["l_orderkey"])
            .aggregate(
                &["l_orderkey"],
                vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
            )
            .gather();
        assert_eq!(p.exchange_count(), 2);
        match &p {
            Plan::Exchange { kind, .. } => assert_eq!(*kind, ExchangeKind::Gather),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "key arity")]
    fn join_key_arity_checked() {
        Plan::scan(TpchTable::Orders).join(
            Plan::scan(TpchTable::Customer),
            &["o_custkey"],
            &[],
            JoinKind::Inner,
        );
    }

    #[test]
    fn children_enumerates_both_join_sides() {
        let p = Plan::scan(TpchTable::Orders).join(
            Plan::scan(TpchTable::Customer),
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::Inner,
        );
        assert_eq!(p.children().len(), 2);
        assert_eq!(Plan::scan(TpchTable::Region).children().len(), 0);
    }

    #[test]
    fn sort_keys_capture_direction() {
        let k = SortKey::desc("revenue");
        assert!(k.desc);
        assert_eq!(k.column, "revenue");
        assert!(!SortKey::asc("x").desc);
    }
}
