//! The densely-packed binary serialization format of Figure 8.
//!
//! A serialized tuple has three sections:
//!
//! 1. **fixed** — all fixed-size attributes declared NOT NULL, in a
//!    deterministic order (first by data type, then by schema position);
//!    each is 8 bytes little-endian,
//! 2. **null** — nullable fixed-size attributes as a 1-byte null indicator
//!    followed by the value only when present,
//! 3. **dynamic** — variable-length attributes (strings) as a `u32` length
//!    plus the bytes; nullable varlen attributes carry a null indicator.
//!
//! The paper generates this code with LLVM specifically for each schema so
//! the hot loop never interprets a schema. We substitute a precompiled
//! per-schema *plan* ([`RowSerializer`]) whose field classification and
//! ordering are resolved once at construction — the per-row loop is a
//! branch-light walk over that plan.

use hsqp_storage::{Bitmap, Column, DataType, Schema, StringColumn, Table};

/// How one field travels on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FieldClass {
    /// 8-byte value, never NULL.
    FixedDense,
    /// 1-byte indicator, then 8-byte value when present.
    FixedNullable,
    /// u32 length + bytes.
    VarDense,
    /// 1-byte indicator, then u32 length + bytes when present.
    VarNullable,
}

fn classify(dtype: DataType, nullable: bool) -> FieldClass {
    match (dtype.is_fixed_size(), nullable) {
        (true, false) => FieldClass::FixedDense,
        (true, true) => FieldClass::FixedNullable,
        (false, false) => FieldClass::VarDense,
        (false, true) => FieldClass::VarNullable,
    }
}

fn wire_order(schema: &Schema) -> Vec<(usize, FieldClass)> {
    let mut plan: Vec<(usize, FieldClass)> = schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| (i, classify(f.dtype, f.nullable)))
        .collect();
    // Section order: fixed-dense, fixed-nullable, var-dense, var-nullable;
    // within a section by data type, then schema position (Figure 8).
    let section = |c: FieldClass| match c {
        FieldClass::FixedDense => 0,
        FieldClass::FixedNullable => 1,
        FieldClass::VarDense => 2,
        FieldClass::VarNullable => 3,
    };
    let type_rank = |i: usize| match schema.fields()[i].dtype {
        DataType::Decimal => 0,
        DataType::Int64 => 1,
        DataType::Date => 2,
        DataType::Float64 => 3,
        DataType::Utf8 => 4,
    };
    plan.sort_by_key(|&(i, c)| (section(c), type_rank(i), i));
    plan
}

/// Schema-specialized tuple serializer (sender side of Figure 8).
#[derive(Debug, Clone)]
pub struct RowSerializer {
    plan: Vec<(usize, FieldClass)>,
}

impl RowSerializer {
    /// Compile the wire plan for `schema`.
    pub fn new(schema: &Schema) -> Self {
        Self {
            plan: wire_order(schema),
        }
    }

    /// Append row `row` of `table` to `out`.
    ///
    /// # Panics
    /// Panics if the table does not match the serializer's schema shape.
    pub fn serialize_row(&self, table: &Table, row: usize, out: &mut Vec<u8>) {
        for &(idx, class) in &self.plan {
            let column = table.column(idx);
            match class {
                FieldClass::FixedDense => write_fixed(column, row, out),
                FieldClass::FixedNullable => {
                    if column.is_valid(row) {
                        out.push(1);
                        write_fixed(column, row, out);
                    } else {
                        out.push(0);
                    }
                }
                FieldClass::VarDense => write_var(column, row, out),
                FieldClass::VarNullable => {
                    if column.is_valid(row) {
                        out.push(1);
                        write_var(column, row, out);
                    } else {
                        out.push(0);
                    }
                }
            }
        }
    }

    /// Serialize a contiguous row range.
    pub fn serialize_range(&self, table: &Table, rows: std::ops::Range<usize>, out: &mut Vec<u8>) {
        for row in rows {
            self.serialize_row(table, row, out);
        }
    }

    /// Upper-bound estimate of the wire size of one row of `table` at `row`
    /// (exact for the current encoding).
    pub fn row_size(&self, table: &Table, row: usize) -> usize {
        let mut size = 0;
        for &(idx, class) in &self.plan {
            let column = table.column(idx);
            size += match class {
                FieldClass::FixedDense => 8,
                FieldClass::FixedNullable => {
                    if column.is_valid(row) {
                        9
                    } else {
                        1
                    }
                }
                FieldClass::VarDense => 4 + var_len(column, row),
                FieldClass::VarNullable => {
                    if column.is_valid(row) {
                        5 + var_len(column, row)
                    } else {
                        1
                    }
                }
            };
        }
        size
    }
}

fn write_fixed(column: &Column, row: usize, out: &mut Vec<u8>) {
    match column {
        Column::I64(v, _) => out.extend_from_slice(&v[row].to_le_bytes()),
        Column::F64(v, _) => out.extend_from_slice(&v[row].to_le_bytes()),
        Column::Str(..) => panic!("string column classified as fixed"),
    }
}

fn write_var(column: &Column, row: usize, out: &mut Vec<u8>) {
    let s = column.str_values().get(row);
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn var_len(column: &Column, row: usize) -> usize {
    column.str_values().get(row).len()
}

/// Schema-specialized tuple deserializer (receiver side of Figure 8).
#[derive(Debug, Clone)]
pub struct RowDeserializer {
    plan: Vec<(usize, FieldClass)>,
    schema: Schema,
}

impl RowDeserializer {
    /// Compile the wire plan for `schema`.
    pub fn new(schema: &Schema) -> Self {
        Self {
            plan: wire_order(schema),
            schema: schema.clone(),
        }
    }

    /// Decode a full message body back into a table.
    ///
    /// # Panics
    /// Panics on a malformed buffer (truncated rows).
    pub fn deserialize(&self, mut bytes: &[u8]) -> Table {
        let n_cols = self.schema.len();
        let mut data: Vec<ColBuilder> = self
            .schema
            .fields()
            .iter()
            .map(|f| ColBuilder::new(f.dtype))
            .collect();
        while !bytes.is_empty() {
            for &(idx, class) in &self.plan {
                let b = &mut data[idx];
                match class {
                    FieldClass::FixedDense => {
                        b.push_fixed(take8(&mut bytes), true);
                    }
                    FieldClass::FixedNullable => {
                        if take1(&mut bytes) == 1 {
                            b.push_fixed(take8(&mut bytes), true);
                        } else {
                            b.push_fixed([0; 8], false);
                        }
                    }
                    FieldClass::VarDense => {
                        let s = take_str(&mut bytes);
                        b.push_str(s, true);
                    }
                    FieldClass::VarNullable => {
                        if take1(&mut bytes) == 1 {
                            let s = take_str(&mut bytes);
                            b.push_str(s, true);
                        } else {
                            b.push_str("", false);
                        }
                    }
                }
            }
        }
        let columns: Vec<Column> = data.into_iter().map(ColBuilder::finish).collect();
        debug_assert_eq!(columns.len(), n_cols);
        Table::new(self.schema.clone(), columns)
    }
}

fn take1(bytes: &mut &[u8]) -> u8 {
    let (head, rest) = bytes.split_first().expect("truncated wire row");
    *bytes = rest;
    *head
}

fn take8(bytes: &mut &[u8]) -> [u8; 8] {
    assert!(bytes.len() >= 8, "truncated wire row");
    let (head, rest) = bytes.split_at(8);
    *bytes = rest;
    head.try_into().expect("8 bytes")
}

fn take_str<'a>(bytes: &mut &'a [u8]) -> &'a str {
    assert!(bytes.len() >= 4, "truncated wire row");
    let (len_bytes, rest) = bytes.split_at(4);
    let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    assert!(rest.len() >= len, "truncated wire row");
    let (s, rest) = rest.split_at(len);
    *bytes = rest;
    std::str::from_utf8(s).expect("wire strings are UTF-8")
}

enum ColBuilder {
    I64(Vec<i64>, Option<Bitmap>),
    F64(Vec<f64>, Option<Bitmap>),
    Str(StringColumn, Option<Bitmap>),
}

impl ColBuilder {
    fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 | DataType::Date | DataType::Decimal => {
                ColBuilder::I64(Vec::new(), None)
            }
            DataType::Float64 => ColBuilder::F64(Vec::new(), None),
            DataType::Utf8 => ColBuilder::Str(StringColumn::new(), None),
        }
    }

    fn push_fixed(&mut self, raw: [u8; 8], valid: bool) {
        match self {
            ColBuilder::I64(v, bm) => {
                v.push(i64::from_le_bytes(raw));
                track_validity(bm, v.len(), valid);
            }
            ColBuilder::F64(v, bm) => {
                v.push(f64::from_le_bytes(raw));
                track_validity(bm, v.len(), valid);
            }
            ColBuilder::Str(..) => panic!("fixed data for string column"),
        }
    }

    fn push_str(&mut self, s: &str, valid: bool) {
        match self {
            ColBuilder::Str(v, bm) => {
                v.push(s);
                track_validity(bm, v.len(), valid);
            }
            _ => panic!("string data for fixed column"),
        }
    }

    fn finish(self) -> Column {
        match self {
            ColBuilder::I64(v, bm) => Column::I64(v, bm),
            ColBuilder::F64(v, bm) => Column::F64(v, bm),
            ColBuilder::Str(v, bm) => Column::Str(v, bm),
        }
    }
}

fn track_validity(bm: &mut Option<Bitmap>, len: usize, valid: bool) {
    match bm {
        Some(b) => b.push(valid),
        None if valid => {}
        None => {
            let mut b = Bitmap::filled(len - 1, true);
            b.push(false);
            *bm = Some(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsqp_storage::{Field, Value};

    fn partsupp_like_schema() -> Schema {
        // Mirrors Figure 8: decimal + integers (fixed, not null), a
        // nullable integer, and a varchar.
        Schema::new(vec![
            Field::new("supplycost", DataType::Decimal),
            Field::new("partkey", DataType::Int64),
            Field::new("suppkey", DataType::Int64),
            Field::nullable("availqty", DataType::Int64),
            Field::new("comment", DataType::Utf8),
        ])
    }

    fn sample_table() -> Table {
        let schema = partsupp_like_schema();
        let mut avail = Column::empty(DataType::Int64);
        avail.push_value(&Value::I64(7));
        avail.push_value(&Value::Null);
        avail.push_value(&Value::I64(9));
        Table::new(
            schema,
            vec![
                Column::I64(vec![199, 250, 301], None),
                Column::I64(vec![1, 2, 3], None),
                Column::I64(vec![10, 20, 30], None),
                avail,
                Column::Str(["fast", "", "réliable"].into_iter().collect(), None),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_all_rows() {
        let t = sample_table();
        let ser = RowSerializer::new(t.schema());
        let de = RowDeserializer::new(t.schema());
        let mut buf = Vec::new();
        ser.serialize_range(&t, 0..t.rows(), &mut buf);
        let back = de.deserialize(&buf);
        assert_eq!(back.rows(), 3);
        for row in 0..3 {
            for col in 0..t.schema().len() {
                assert_eq!(back.value(row, col), t.value(row, col), "({row},{col})");
            }
        }
    }

    #[test]
    fn fixed_section_precedes_varlen() {
        // The decimal (type rank 0) must come first, the comment last.
        let t = sample_table();
        let ser = RowSerializer::new(t.schema());
        let mut buf = Vec::new();
        ser.serialize_row(&t, 0, &mut buf);
        // First 8 bytes: supplycost = 199.
        assert_eq!(i64::from_le_bytes(buf[0..8].try_into().unwrap()), 199);
        // Fixed dense section: 3 × 8 bytes, then nullable (1+8), then
        // varlen "fast" (4 + 4).
        assert_eq!(buf.len(), 24 + 9 + 8);
        assert_eq!(&buf[24 + 9 + 4..], b"fast");
    }

    #[test]
    fn null_rows_are_compact() {
        let t = sample_table();
        let ser = RowSerializer::new(t.schema());
        let mut buf = Vec::new();
        ser.serialize_row(&t, 1, &mut buf); // availqty NULL, comment ""
        assert_eq!(buf.len(), 24 + 1 + 4);
        assert_eq!(ser.row_size(&t, 1), buf.len());
    }

    #[test]
    fn row_size_matches_actual_encoding() {
        let t = sample_table();
        let ser = RowSerializer::new(t.schema());
        for row in 0..t.rows() {
            let mut buf = Vec::new();
            ser.serialize_row(&t, row, &mut buf);
            assert_eq!(ser.row_size(&t, row), buf.len(), "row {row}");
        }
    }

    #[test]
    fn empty_buffer_decodes_to_empty_table() {
        let de = RowDeserializer::new(&partsupp_like_schema());
        let t = de.deserialize(&[]);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.schema().len(), 5);
    }

    #[test]
    fn unicode_strings_survive() {
        let t = sample_table();
        let ser = RowSerializer::new(t.schema());
        let de = RowDeserializer::new(t.schema());
        let mut buf = Vec::new();
        ser.serialize_row(&t, 2, &mut buf);
        let back = de.deserialize(&buf);
        assert_eq!(back.value(0, 4), Value::Str("réliable".into()));
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_buffer_panics() {
        let t = sample_table();
        let ser = RowSerializer::new(t.schema());
        let de = RowDeserializer::new(t.schema());
        let mut buf = Vec::new();
        ser.serialize_row(&t, 0, &mut buf);
        buf.pop();
        de.deserialize(&buf);
    }
}
