//! The SPMD cluster driver and its concurrent-query dispatcher.
//!
//! A [`Cluster`] simulates `n` database servers in one process: each node
//! owns a worker pool, a NUMA topology, a message pool, and a communication
//! multiplexer thread attached to the shared network fabric. Queries run
//! SPMD — every node executes the same plan, exchanges redistribute tuples,
//! and the final result is gathered at node 0 (the coordinator).
//!
//! Queries are *admitted* rather than executed inline:
//! [`Cluster::submit`] assigns a [`QueryId`], tags every wire message with
//! it, and hands the query to a dispatcher pool that runs up to
//! [`ClusterConfig::max_concurrent`] queries' stages concurrently over the
//! shared multiplexers — the [`NetScheduler`] arbitrates the fabric among
//! them, which is exactly the contended regime the paper's global network
//! scheduling is designed for. The returned [`QueryHandle`] exposes
//! `wait`, `try_result`, `cancel`, and live per-query fabric statistics;
//! [`Cluster::run`] remains as `submit(..)` + `wait()` sugar.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex, RwLock};

use hsqp_net::{
    CompletionMode, Fabric, FabricConfig, LinkSpec, NetScheduler, NodeId, QueryId, QueryNetStats,
    QueryStatsRegistry, RdmaConfig, RdmaNetwork, TcpConfig, TcpNetwork, Transport as NetTransport,
};
use hsqp_numa::{AllocPolicy, CostModel, Topology};
use hsqp_storage::placement::{chunk_split, hash_partition, Placement};
use hsqp_storage::{decimal_to_f64, DataType, Schema, Table, Value};
use hsqp_tpch::{TpchDb, TpchTable};

use crate::error::EngineError;
use crate::exchange::{spawn_multiplexer, MessagePool, MuxCmd, MuxConfig, RecvHub};
use crate::exec::{Batch, NodeCtx, NodeExec};
use crate::expr::Expr;
use crate::local::MorselDriver;
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
use crate::plan::Plan;
use crate::planner::QueryPlanner;
use crate::profile::{plan_node_count, QueryProfile, StageRecorder};
use crate::queries::{Query, QueryStage, StageRole};
use crate::serve::{CancelToken, SubmitOptions, TenantConfig, TenantId, TenantMetrics, WdrrQueue};
use crate::stats::StatsCatalog;
use crate::vm::{compile_stage, CompiledStage};

/// Which network stack the multiplexers use (the three lines of Figure 3).
#[derive(Debug, Clone)]
pub enum Transport {
    /// RDMA verbs with optional round-robin network scheduling (§3.2.3).
    Rdma {
        /// Low-latency round-robin scheduling on/off.
        scheduling: bool,
        /// Completion notification mode (§2.2.4).
        completion: CompletionMode,
    },
    /// TCP sockets (IPoIB or Ethernet, depending on the fabric link).
    Tcp {
        /// Socket tuning (Figure 5 ladder).
        config: TcpConfig,
        /// Round-robin scheduling (the paper found it does not help TCP).
        scheduling: bool,
    },
}

impl Transport {
    /// The default RDMA transport (alias for
    /// [`rdma_scheduled`](Self::rdma_scheduled), the paper's engine).
    pub fn rdma() -> Self {
        Self::rdma_scheduled()
    }

    /// The paper's engine: RDMA + network scheduling, event completions.
    pub fn rdma_scheduled() -> Self {
        Transport::Rdma {
            scheduling: true,
            completion: CompletionMode::Event,
        }
    }

    /// RDMA without network scheduling (ablation).
    pub fn rdma_unscheduled() -> Self {
        Transport::Rdma {
            scheduling: false,
            completion: CompletionMode::Event,
        }
    }

    /// Tuned TCP (connected mode, 64 k MTU, separate IRQ core).
    pub fn tcp() -> Self {
        Transport::Tcp {
            config: TcpConfig::tuned(),
            scheduling: false,
        }
    }
}

/// Exchange operator model to use (§3.1 vs §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Hybrid parallelism: decoupled exchanges, n parallel units, work
    /// stealing (the paper's contribution).
    #[default]
    Hybrid,
    /// Classic exchange operators: n·t parallel units, static partition
    /// ownership, no stealing, per-unit broadcast copies.
    Classic,
}

/// How the nodes evaluate filter/map/aggregate expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExprEngine {
    /// Compile expressions once at submit time into flat
    /// [`ExprProgram`](crate::vm::ExprProgram)s run by the vector VM;
    /// anything that cannot be compiled or bound falls back to the tree
    /// walker per operator.
    #[default]
    Compiled,
    /// Tree-walking interpreter only (the differential oracle).
    Ast,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated servers.
    pub nodes: u16,
    /// Worker threads per server (the paper's servers run 20 hyper-threaded
    /// cores; scale to the host machine).
    pub workers_per_node: u16,
    /// Link standard of the fabric (Table 1).
    pub link: LinkSpec,
    /// Network stack.
    pub transport: Transport,
    /// Exchange operator model.
    pub engine: EngineKind,
    /// NUMA sockets per server.
    pub sockets: u16,
    /// Remote-access penalty in ns/byte (0 disables NUMA simulation).
    pub numa_cost_ns: f64,
    /// Message-buffer allocation policy (Figure 9).
    pub alloc_policy: AllocPolicy,
    /// Tuple bytes per network message (the paper uses 512 KB).
    pub message_capacity: usize,
    /// Base-relation placement (§4.1).
    pub placement: Placement,
    /// Switch-contention modeling on/off.
    pub switch_contention: bool,
    /// Queries the dispatcher runs concurrently; further submissions queue
    /// (admission control). Each in-flight query's stages run SPMD over
    /// the shared multiplexers.
    pub max_concurrent: u16,
    /// Collect per-query [`QueryProfile`]s (span-based profiler). The
    /// recorder is lock-free atomics per node thread; turning it off
    /// removes even that overhead for benchmark baselines.
    pub profiling: bool,
    /// Expression engine: compiled vector programs (default) or the
    /// tree-walking oracle.
    pub expr_engine: ExprEngine,
    /// Pre-registered tenants with their scheduling weights and admission
    /// caps. Tenants not listed here self-register with
    /// [`TenantConfig::default`] (weight 1, no caps) on first submission.
    pub tenants: Vec<(String, TenantConfig)>,
}

impl ClusterConfig {
    /// The paper's configuration scaled to a host machine: RDMA +
    /// scheduling over 4×QDR InfiniBand, hybrid parallelism, chunked
    /// placement.
    pub fn paper(nodes: u16) -> Self {
        Self {
            nodes,
            workers_per_node: 4,
            link: LinkSpec::IB_4X_QDR,
            transport: Transport::rdma_scheduled(),
            engine: EngineKind::Hybrid,
            sockets: 2,
            numa_cost_ns: 0.6,
            alloc_policy: AllocPolicy::NumaAware,
            message_capacity: 512 * 1024,
            placement: Placement::Chunked,
            switch_contention: true,
            max_concurrent: 4,
            profiling: true,
            expr_engine: ExprEngine::Compiled,
            tenants: Vec::new(),
        }
    }

    /// Small/fast configuration for tests and examples: two workers, small
    /// messages, NUMA cost off.
    pub fn quick(nodes: u16) -> Self {
        Self {
            workers_per_node: 2,
            numa_cost_ns: 0.0,
            message_capacity: 32 * 1024,
            ..Self::paper(nodes)
        }
    }

    /// Gigabit-Ethernet TCP configuration (Figure 3's bottom line).
    pub fn tcp_gbe(nodes: u16) -> Self {
        Self {
            link: LinkSpec::GBE,
            transport: Transport::tcp(),
            ..Self::paper(nodes)
        }
    }

    /// TCP over InfiniBand (Figure 3's middle line).
    pub fn tcp_infiniband(nodes: u16) -> Self {
        Self {
            transport: Transport::tcp(),
            ..Self::paper(nodes)
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.nodes == 0 {
            return Err(EngineError::Config("need at least one node".into()));
        }
        if self.workers_per_node == 0 {
            return Err(EngineError::Config("need at least one worker".into()));
        }
        if self.sockets == 0 {
            return Err(EngineError::Config("need at least one socket".into()));
        }
        if self.message_capacity < 1024 {
            return Err(EngineError::Config("message capacity below 1 KiB".into()));
        }
        if self.max_concurrent == 0 {
            return Err(EngineError::Config(
                "need at least one concurrent query slot".into(),
            ));
        }
        for (name, tenant) in &self.tenants {
            tenant.validate(name)?;
        }
        Ok(())
    }
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryResult {
    /// Id the query ran under.
    pub query: QueryId,
    /// The gathered result table (node 0's output).
    pub table: Table,
    /// Wall-clock execution time (includes time spent queued for a
    /// dispatcher slot).
    pub elapsed: Duration,
    /// Time the query spent queued for admission before a dispatcher
    /// slot picked it up (a component of [`elapsed`](Self::elapsed)).
    pub queue_wait: Duration,
    /// Bytes this query shipped over the fabric (per-query accounting —
    /// concurrent queries do not pollute each other's numbers).
    pub bytes_shuffled: u64,
    /// Network messages this query sent.
    pub messages_sent: u64,
    /// The query's execution profile (`None` when
    /// [`ClusterConfig::profiling`] is off).
    pub profile: Option<QueryProfile>,
}

impl QueryResult {
    /// Rows in the result.
    pub fn row_count(&self) -> usize {
        self.table.rows()
    }
}

enum HandleState {
    Pending,
    /// Completed; `None` once the result has been taken.
    Done(Option<Result<QueryResult, EngineError>>),
}

/// State shared between a [`QueryHandle`] and the dispatcher.
struct QueryShared {
    id: QueryId,
    tenant: TenantId,
    cancel: CancelToken,
    stats: Arc<QueryNetStats>,
    state: Mutex<HandleState>,
    done: Condvar,
    /// Accumulating profile; stages are appended as they complete, so a
    /// cancelled or failed query keeps the stages that finished. The lock
    /// is touched once per stage, not on the execution hot path.
    profile: Mutex<QueryProfile>,
    profiling: bool,
}

impl QueryShared {
    fn complete(&self, result: Result<QueryResult, EngineError>) {
        *self.state.lock() = HandleState::Done(Some(result));
        self.done.notify_all();
    }
}

/// Handle to a submitted query.
///
/// Returned by [`Cluster::submit`] (and
/// [`Session::submit`](crate::session::Session::submit)). The query runs
/// asynchronously on the cluster's dispatcher; the handle observes and
/// controls it.
pub struct QueryHandle {
    shared: Arc<QueryShared>,
}

impl QueryHandle {
    /// The id the cluster assigned to this query (tags all its wire
    /// messages and temp relations).
    pub fn id(&self) -> QueryId {
        self.shared.id
    }

    /// Block until the query completes and take its result.
    ///
    /// Returns [`EngineError::Cancelled`] if [`cancel`](Self::cancel) took
    /// effect first, and an execution error if the result was already
    /// taken through [`try_result`](Self::try_result).
    pub fn wait(self) -> Result<QueryResult, EngineError> {
        let mut state = self.shared.state.lock();
        loop {
            match &mut *state {
                HandleState::Pending => self.shared.done.wait(&mut state),
                HandleState::Done(result) => {
                    return result.take().unwrap_or_else(|| {
                        Err(EngineError::Execution("query result already taken".into()))
                    });
                }
            }
        }
    }

    /// Block until the query completes or `timeout` elapses. Returns
    /// `None` on timeout (the query keeps running — pair with
    /// [`cancel`](Self::cancel) to abandon it); otherwise takes the
    /// result exactly like [`wait`](Self::wait).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<QueryResult, EngineError>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let HandleState::Done(result) = &mut *state {
                return Some(result.take().unwrap_or_else(|| {
                    Err(EngineError::Execution("query result already taken".into()))
                }));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            if self.shared.done.wait_for(&mut state, remaining).timed_out()
                && matches!(&*state, HandleState::Pending)
            {
                return None;
            }
        }
    }

    /// The tenant this query was submitted as.
    pub fn tenant(&self) -> &TenantId {
        &self.shared.tenant
    }

    /// Take the result if the query has completed; `None` while it is
    /// still queued or running. A completed result can be taken once.
    pub fn try_result(&self) -> Option<Result<QueryResult, EngineError>> {
        match &mut *self.shared.state.lock() {
            HandleState::Pending => None,
            HandleState::Done(result) => result.take(),
        }
    }

    /// Whether the query has completed (successfully or not).
    pub fn is_finished(&self) -> bool {
        matches!(&*self.shared.state.lock(), HandleState::Done(_))
    }

    /// Request cancellation. Cooperative and morsel-bounded: a queued
    /// query never starts, a running one stops at its next morsel (or
    /// exchange-wait poll) rather than its next stage boundary; either
    /// way its temp relations, receive-hub slots, and stats registration
    /// are released and [`wait`](Self::wait) returns
    /// [`EngineError::Cancelled`]. A query already past its last check
    /// completes normally.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// Live per-query fabric statistics (bytes/messages this query has put
    /// on the wire so far). Remains readable after completion.
    pub fn net_stats(&self) -> &QueryNetStats {
        &self.shared.stats
    }

    /// Snapshot of the query's execution profile: the stages that have
    /// completed so far (all of them once the query finished; a partial
    /// prefix while it runs or after cancellation). Empty when the cluster
    /// runs with [`ClusterConfig::profiling`] off.
    pub fn profile(&self) -> QueryProfile {
        self.shared.profile.lock().clone()
    }
}

/// One admitted query waiting for (or holding) a dispatcher slot.
struct Submission {
    stages: Vec<QueryStage>,
    /// Compiled expression programs per stage (compile-once at submit
    /// time; `None` = no program compiled, run the tree walker).
    programs: Vec<Option<CompiledStage>>,
    /// Feedback-driven incremental planner: when set, `stages`/`programs`
    /// are empty and each stage is planned (and compiled) just in time,
    /// with observed cardinalities fed back between stages.
    adaptive: Option<Mutex<QueryPlanner>>,
    submitted: Instant,
    shared: Arc<QueryShared>,
}

/// A simulated database cluster.
///
/// Execution state lives in an inner `Arc` shared with the dispatcher
/// threads; the `Cluster` value itself owns the thread handles and tears
/// everything down on [`shutdown`](Self::shutdown) or drop.
pub struct Cluster {
    inner: Arc<ClusterInner>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    mux_handles: Vec<std::thread::JoinHandle<()>>,
}

struct ClusterInner {
    cfg: ClusterConfig,
    fabric: Arc<Fabric>,
    nodes: Vec<Arc<NodeCtx>>,
    mux_senders: Vec<Sender<MuxCmd>>,
    query_stats: Arc<QueryStatsRegistry>,
    next_query: AtomicU32,
    down: AtomicBool,
    scheduler: Option<Arc<NetScheduler>>,
    metrics: MetricsRegistry,
    dm: DispatchMetrics,
    /// Per-tenant admission queues drained weighted-deficit round-robin
    /// by the dispatcher pool (replaces the old single FIFO channel).
    submit_queue: WdrrQueue<Submission>,
    /// Column statistics sampled while loading data, consumed by
    /// [`Planner::for_cluster`](crate::planner::Planner::for_cluster).
    stats: Mutex<Option<Arc<StatsCatalog>>>,
}

/// Pre-resolved dispatcher instruments, so admission and completion paths
/// never look up the registry by name.
struct DispatchMetrics {
    queue_depth: Arc<Gauge>,
    active: Arc<Gauge>,
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
    admission_wait_us: Arc<Histogram>,
    stage_rounds: Arc<Counter>,
}

impl DispatchMetrics {
    fn new(reg: &MetricsRegistry) -> Self {
        Self {
            queue_depth: reg.gauge("dispatcher.queue_depth"),
            active: reg.gauge("queries.active"),
            submitted: reg.counter("queries.submitted"),
            completed: reg.counter("queries.completed"),
            failed: reg.counter("queries.failed"),
            cancelled: reg.counter("queries.cancelled"),
            admission_wait_us: reg.histogram("dispatcher.admission_wait_us"),
            stage_rounds: reg.counter("stages.executed"),
        }
    }
}

impl Cluster {
    /// Start a cluster: build the fabric, endpoints, message pools, spawn
    /// one multiplexer thread per node and the dispatcher pool
    /// (`max_concurrent` workers).
    pub fn start(cfg: ClusterConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        let n = cfg.nodes;
        let fabric_cfg = FabricConfig {
            link: cfg.link,
            switch_contention: cfg.switch_contention,
            ..FabricConfig::default()
        };
        let fabric = Arc::new(Fabric::new(n, fabric_cfg));
        let query_stats = Arc::new(QueryStatsRegistry::new());

        let (scheduling, rdma_net, tcp_net) = match &cfg.transport {
            Transport::Rdma {
                scheduling,
                completion,
            } => {
                let rc = RdmaConfig {
                    completion: *completion,
                    ..RdmaConfig::default()
                };
                (
                    *scheduling,
                    Some(RdmaNetwork::new(Arc::clone(&fabric), rc)),
                    None,
                )
            }
            Transport::Tcp { config, scheduling } => (
                *scheduling,
                None,
                Some(TcpNetwork::new(Arc::clone(&fabric), *config)),
            ),
        };

        let scheduler = (scheduling && n > 1).then(|| NetScheduler::new(n as usize));
        let cores_per_socket = cfg.workers_per_node.div_ceil(cfg.sockets).max(1);
        let cost = CostModel::new(cfg.numa_cost_ns);

        let mut nodes = Vec::with_capacity(n as usize);
        let mut mux_senders = Vec::with_capacity(n as usize);
        let mut mux_handles = Vec::with_capacity(n as usize);
        for i in 0..n {
            let node = NodeId(i);
            let topology = Arc::new(Topology::new(cfg.sockets, cores_per_socket, cost));
            let classic_units = (cfg.engine == EngineKind::Classic).then_some(cfg.workers_per_node);
            let hub_queues = match classic_units {
                Some(u) => u as usize,
                None => cfg.sockets as usize,
            };
            let hub = RecvHub::new(hub_queues);
            let pool = Arc::new(MessagePool::new(
                Arc::clone(&fabric),
                node,
                cfg.sockets,
                cfg.message_capacity,
            ));
            let endpoint: Box<dyn NetTransport> = match (&rdma_net, &tcp_net) {
                (Some(net), _) => {
                    let ep = net.endpoint(node);
                    // The paper posts the hardware maximum of 16 k work
                    // requests; we provision generously.
                    ep.post_recvs(1 << 30);
                    Box::new(ep)
                }
                (_, Some(net)) => Box::new(net.endpoint(node)),
                _ => unreachable!("one transport is always built"),
            };
            let mux_cfg = MuxConfig {
                node,
                nodes: n,
                scheduling,
                batch_per_phase: 8,
                classic_units,
                sockets: cfg.sockets,
                alloc_policy: cfg.alloc_policy,
            };
            let (tx, handle) = spawn_multiplexer(
                mux_cfg,
                endpoint,
                Arc::clone(&hub),
                Arc::clone(&pool),
                scheduler.clone(),
                Arc::clone(&query_stats),
            );
            let driver = MorselDriver::new(
                cfg.workers_per_node,
                &topology,
                hsqp_storage::table::MORSEL_SIZE,
                cfg.engine == EngineKind::Hybrid,
            );
            nodes.push(Arc::new(NodeCtx {
                node,
                nodes: n,
                driver,
                topology,
                alloc_policy: cfg.alloc_policy,
                classic_units,
                message_capacity: cfg.message_capacity,
                pool,
                hub,
                to_mux: tx.clone(),
                tables: RwLock::new(HashMap::new()),
                temps: RwLock::new(HashMap::new()),
                consume_loads: parking_lot::Mutex::new(Vec::new()),
                fabric: Arc::clone(&fabric),
            }));
            mux_senders.push(tx);
            mux_handles.push(handle);
        }

        let metrics = MetricsRegistry::new();
        let dm = DispatchMetrics::new(&metrics);
        let submit_queue = WdrrQueue::new(&cfg.tenants);
        let inner = Arc::new(ClusterInner {
            cfg,
            fabric,
            nodes,
            mux_senders,
            query_stats,
            next_query: AtomicU32::new(0),
            down: AtomicBool::new(false),
            scheduler,
            metrics,
            dm,
            submit_queue,
            stats: Mutex::new(None),
        });

        // Admission/dispatch pool: up to `max_concurrent` queries run
        // their stages at once; the rest wait in their tenant's queue and
        // are drained weighted-deficit round-robin across tenants.
        let dispatchers = (0..inner.cfg.max_concurrent)
            .map(|d| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dispatch-{d}"))
                    .spawn(move || {
                        while let Some((tenant, sub)) = inner.submit_queue.pop() {
                            inner.execute_submission(sub);
                            inner.submit_queue.finish(&tenant);
                        }
                    })
                    .expect("spawn dispatcher")
            })
            .collect();

        Ok(Self {
            inner,
            dispatchers,
            mux_handles,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.cfg
    }

    /// The network fabric (statistics).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.inner.fabric
    }

    /// Per-node execution contexts (benchmark instrumentation).
    pub fn node_ctx(&self, node: u16) -> &Arc<NodeCtx> {
        &self.inner.nodes[node as usize]
    }

    /// Snapshot the cluster-wide metrics: dispatcher counters/gauges and
    /// the admission-wait histogram, plus derived fabric counters (network
    /// scheduler barrier rounds, per-link bytes and messages).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.inner.metrics.snapshot();
        if let Some(sched) = &self.inner.scheduler {
            snap.push_counter("net.scheduler.rounds", sched.rounds());
        }
        for i in 0..self.inner.cfg.nodes {
            let stats = self.inner.fabric.stats(NodeId(i));
            snap.push_counter(&format!("net.node{i}.bytes_sent"), stats.bytes_sent());
            snap.push_counter(
                &format!("net.node{i}.bytes_received"),
                stats.bytes_received(),
            );
            snap.push_counter(&format!("net.node{i}.messages_sent"), stats.messages_sent());
        }
        snap
    }

    /// Generate TPC-H at `sf` and distribute it per the configured
    /// placement (§4.1).
    pub fn load_tpch(&self, sf: f64) -> Result<(), EngineError> {
        self.load_tpch_db(TpchDb::generate(sf))
    }

    /// Distribute an already-generated TPC-H database.
    ///
    /// Each relation is sampled into the cluster's statistics catalog
    /// before it is split, so planners built with
    /// [`Planner::for_cluster`](crate::planner::Planner::for_cluster) see
    /// whole-table NDV/min-max/null-fraction statistics.
    pub fn load_tpch_db(&self, db: TpchDb) -> Result<(), EngineError> {
        self.ensure_up()?;
        let n = self.inner.cfg.nodes as usize;
        let mut catalog = match &*self.inner.stats.lock() {
            Some(existing) => (**existing).clone(),
            None => StatsCatalog::new(),
        };
        for (kind, table) in db.into_tables() {
            catalog.sample_table(kind, &table);
            let parts: Vec<Table> = match self.inner.cfg.placement {
                Placement::Chunked => chunk_split(&table, n),
                // Plans are placement-oblivious: a broadcast of a replicated
                // relation would duplicate rows, so replication is rejected
                // for query processing and treated as partitioned here.
                Placement::Partitioned | Placement::Replicated => hash_partition(&table, 0, n),
            };
            for (node, part) in self.inner.nodes.iter().zip(parts) {
                node.tables.write().insert(kind, Arc::new(part));
            }
        }
        *self.inner.stats.lock() = Some(Arc::new(catalog));
        Ok(())
    }

    /// Load an arbitrary relation with explicit per-node parts.
    pub fn load_table(&self, kind: TpchTable, parts: Vec<Table>) -> Result<(), EngineError> {
        self.ensure_up()?;
        if parts.len() != self.inner.nodes.len() {
            return Err(EngineError::Config(format!(
                "expected {} parts, got {}",
                self.inner.nodes.len(),
                parts.len()
            )));
        }
        for (node, part) in self.inner.nodes.iter().zip(parts) {
            node.tables.write().insert(kind, Arc::new(part));
        }
        Ok(())
    }

    /// The column statistics sampled at load time, if data was loaded via
    /// [`load_tpch`](Self::load_tpch) / [`load_tpch_db`](Self::load_tpch_db).
    pub fn stats_catalog(&self) -> Option<Arc<StatsCatalog>> {
        self.inner.stats.lock().clone()
    }

    /// Total rows of `table` across all nodes, if it is loaded (the
    /// planner's source of exact cardinalities).
    pub fn table_rows(&self, table: TpchTable) -> Option<u64> {
        let mut total = 0u64;
        let mut loaded = false;
        for node in &self.inner.nodes {
            if let Some(t) = node.tables.read().get(&table) {
                total += t.rows() as u64;
                loaded = true;
            }
        }
        loaded.then_some(total)
    }

    /// Compile every stage's expression sites once, at submit time
    /// (compile-once / execute-many: dispatcher threads and all node
    /// threads share the same programs). Never fails: whatever cannot be
    /// compiled simply stays on the tree walker, and
    /// [`ExprEngine::Ast`] skips compilation entirely.
    fn compile_programs(&self, query: &Query) -> Vec<Option<CompiledStage>> {
        if self.inner.cfg.expr_engine == ExprEngine::Ast {
            return vec![None; query.stages.len()];
        }
        let base = |t: TpchTable| {
            self.inner.nodes[0]
                .tables
                .read()
                .get(&t)
                .map(|tbl| tbl.schema().clone())
        };
        // Materialized temps become compile targets for later stages.
        let mut temps: HashMap<String, Schema> = HashMap::new();
        query
            .stages
            .iter()
            .map(|stage| {
                let (compiled, schema) = compile_stage(&stage.plan, &base, &temps);
                if let StageRole::Materialize(name) = &stage.role {
                    if let Some(s) = schema {
                        temps.insert(name.clone(), s);
                    }
                }
                (!compiled.is_empty()).then_some(compiled)
            })
            .collect()
    }

    /// Submit a query for asynchronous execution as the default tenant
    /// with no deadline, returning immediately with a [`QueryHandle`]. At
    /// most [`max_concurrent`](ClusterConfig::max_concurrent) queries run
    /// at once; the rest wait their turn per the weighted-fair schedule.
    pub fn submit(&self, query: &Query) -> Result<QueryHandle, EngineError> {
        self.submit_with(query, &SubmitOptions::default())
    }

    /// Submit a query under explicit serving options: the tenant it is
    /// scheduled and accounted as, and an optional deadline after which
    /// it is cooperatively cancelled (morsel-bounded) and resolves to
    /// [`EngineError::DeadlineExceeded`].
    ///
    /// Fails fast with [`EngineError::Admission`] when the tenant is at
    /// its `max_queued` cap.
    pub fn submit_with(
        &self,
        query: &Query,
        opts: &SubmitOptions,
    ) -> Result<QueryHandle, EngineError> {
        self.ensure_up()?;
        if query.stages.is_empty() {
            return Err(EngineError::Planner(
                "query needs at least one stage".into(),
            ));
        }
        let submitted = Instant::now();
        let shared = self.new_query_shared(query.number, submitted, opts);
        let submission = Submission {
            stages: query.stages.clone(),
            programs: self.compile_programs(query),
            adaptive: None,
            submitted,
            shared: Arc::clone(&shared),
        };
        self.enqueue(submission, opts)
    }

    /// Submit a query for feedback-driven adaptive execution: each stage
    /// is planned just before it runs, against the cardinalities observed
    /// from the stages that already finished (see
    /// [`Planner::begin_query`](crate::planner::Planner::begin_query)).
    /// `number` tags the query's profile for reporting (0 for ad-hoc).
    pub fn submit_adaptive(
        &self,
        planner: QueryPlanner,
        number: u32,
        opts: &SubmitOptions,
    ) -> Result<QueryHandle, EngineError> {
        self.ensure_up()?;
        let submitted = Instant::now();
        let shared = self.new_query_shared(number, submitted, opts);
        let submission = Submission {
            stages: Vec::new(),
            programs: Vec::new(),
            adaptive: Some(Mutex::new(planner)),
            submitted,
            shared: Arc::clone(&shared),
        };
        self.enqueue(submission, opts)
    }

    fn new_query_shared(
        &self,
        number: u32,
        submitted: Instant,
        opts: &SubmitOptions,
    ) -> Arc<QueryShared> {
        let id = QueryId(self.inner.next_query.fetch_add(1, Ordering::Relaxed));
        Arc::new(QueryShared {
            id,
            tenant: opts.tenant.clone(),
            cancel: CancelToken::with_deadline(opts.deadline.map(|d| submitted + d)),
            stats: self.inner.query_stats.register(id),
            state: Mutex::new(HandleState::Pending),
            done: Condvar::new(),
            profile: Mutex::new(QueryProfile::new(id, number)),
            profiling: self.inner.cfg.profiling,
        })
    }

    fn enqueue(
        &self,
        submission: Submission,
        opts: &SubmitOptions,
    ) -> Result<QueryHandle, EngineError> {
        let id = submission.shared.id;
        let shared = Arc::clone(&submission.shared);
        self.inner.dm.queue_depth.inc();
        if let Err(e) = self.inner.submit_queue.push(&opts.tenant, submission) {
            // The submission never reached a dispatcher: nothing will
            // retire its stats registration, so release it here instead of
            // leaking the entry until shutdown.
            self.inner.dm.queue_depth.dec();
            self.inner.query_stats.retire(id);
            if matches!(e, EngineError::Admission(_)) {
                self.inner.tenant_counter(&opts.tenant, "rejected").inc();
            }
            return Err(e);
        }
        self.inner.dm.submitted.inc();
        self.inner.tenant_counter(&opts.tenant, "submitted").inc();
        Ok(QueryHandle { shared })
    }

    /// Register `tenant` (or update its entitlements if already known)
    /// without restarting the cluster.
    pub fn configure_tenant(&self, tenant: &str, cfg: TenantConfig) -> Result<(), EngineError> {
        cfg.validate(tenant)?;
        self.inner
            .submit_queue
            .configure(&TenantId::new(tenant), cfg);
        Ok(())
    }

    /// Per-tenant serving counters rolled up from the metrics registry,
    /// sorted by tenant name. Tenants appear once they have submitted at
    /// least one query (or had one rejected).
    pub fn tenant_metrics(&self) -> Vec<TenantMetrics> {
        let snap = self.inner.metrics.snapshot();
        let mut by_tenant: HashMap<String, TenantMetrics> = HashMap::new();
        for (name, value) in &snap.counters {
            let Some(rest) = name.strip_prefix("tenant.") else {
                continue;
            };
            let Some((tenant, field)) = rest.rsplit_once('.') else {
                continue;
            };
            let entry = by_tenant
                .entry(tenant.to_string())
                .or_insert_with(|| TenantMetrics {
                    tenant: tenant.to_string(),
                    ..TenantMetrics::default()
                });
            match field {
                "submitted" => entry.submitted = *value,
                "completed" => entry.completed = *value,
                "failed" => entry.failed = *value,
                "cancelled" => entry.cancelled = *value,
                "rejected" => entry.rejected = *value,
                "bytes_shuffled" => entry.bytes_shuffled = *value,
                "messages_sent" => entry.messages_sent = *value,
                _ => {}
            }
        }
        let mut out: Vec<TenantMetrics> = by_tenant.into_values().collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Run a single plan SPMD and return the coordinator's result
    /// (blocking sugar over [`submit`](Self::submit)).
    pub fn run_plan(&self, plan: &Plan) -> Result<QueryResult, EngineError> {
        self.run(&Query::single(0, plan.clone()))
    }

    /// Run a multi-stage query to completion: parameter stages bind their
    /// first result row as `Expr::Param` values for later stages,
    /// materialization stages register per-node temp relations for
    /// `Plan::TempScan`, and the final stage produces the result. Sugar
    /// for [`submit`](Self::submit) followed by [`QueryHandle::wait`].
    pub fn run(&self, query: &Query) -> Result<QueryResult, EngineError> {
        self.submit(query)?.wait()
    }

    /// Number of queries whose temp namespaces are still registered on
    /// node 0 (leak check: zero once no query is in flight).
    pub fn active_temp_namespaces(&self) -> usize {
        self.inner.nodes[0].temps.read().len()
    }

    fn ensure_up(&self) -> Result<(), EngineError> {
        if self.inner.down.load(Ordering::SeqCst) {
            return Err(EngineError::ClusterDown);
        }
        Ok(())
    }

    /// Stop the dispatcher pool and all multiplexer threads, then tear the
    /// cluster down. In-flight queries complete; queued ones fail with
    /// [`EngineError::ClusterDown`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.inner.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close the submission queue: dispatchers drain it (failing queued
        // submissions fast, since `down` is set) and exit.
        self.inner.submit_queue.close();
        for h in self.dispatchers.drain(..) {
            let _ = h.join();
        }
        // Every admitted query has now been executed or failed fast, and
        // both paths retire the stats registration — anything left is a
        // leak (the bug this assert guards: registrations abandoned by
        // queries that never reached a dispatcher).
        debug_assert_eq!(
            self.inner.query_stats.tracked(),
            0,
            "query stats registry leaked entries at shutdown"
        );
        // Only then stop the multiplexers the dispatchers depended on.
        for tx in &self.inner.mux_senders {
            let _ = tx.send(MuxCmd::Shutdown);
        }
        for h in self.mux_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl ClusterInner {
    /// Run one admitted query to completion on this dispatcher thread and
    /// publish its result. Whatever happens — success, error,
    /// cancellation — the query's temp namespaces, receive-hub slots, and
    /// stats registration are released afterwards, so a cancelled query
    /// can never wedge the multiplexers or leak state.
    fn execute_submission(&self, sub: Submission) {
        let queue_wait = sub.submitted.elapsed();
        self.dm.queue_depth.dec();
        self.dm
            .admission_wait_us
            .observe(queue_wait.as_micros() as u64);
        self.dm.active.inc();
        let result = if self.down.load(Ordering::SeqCst) {
            Err(EngineError::ClusterDown)
        } else {
            // Node-thread panics are contained *inside* `execute_spmd`:
            // a failing node marks the query aborted on every hub first,
            // so asymmetric mid-exchange failures unblock their peers (the
            // cross-node abort protocol). This outer net only remains for
            // panics outside the SPMD scope (stage bookkeeping itself), so
            // the submitter always gets an error rather than a
            // forever-blocked `wait()` and the dispatcher slot survives.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.run_stages(&sub, queue_wait)
            }))
            .unwrap_or_else(|payload| {
                Err(EngineError::Execution(format!(
                    "query execution panicked: {}",
                    panic_message(payload.as_ref())
                )))
            })
        };
        // Morsel-level cancellation surfaces as a contained panic in the
        // node threads; map it back to the typed error the token records.
        // Only panic-shaped failures are remapped, so an unrelated error
        // that merely races a late cancel keeps its own message.
        let result = match result {
            Err(EngineError::Execution(msg)) => match sub.shared.cancel.stop_reason() {
                Some(reason) => Err(reason.into_error()),
                None => Err(EngineError::Execution(msg)),
            },
            other => other,
        };
        for node in &self.nodes {
            node.temps.write().remove(&sub.shared.id);
            node.hub.finish_query(sub.shared.id);
        }
        self.query_stats.retire(sub.shared.id);
        self.dm.active.dec();
        let tenant = &sub.shared.tenant;
        match &result {
            Ok(_) => {
                self.dm.completed.inc();
                self.tenant_counter(tenant, "completed").inc();
            }
            Err(EngineError::Cancelled) | Err(EngineError::DeadlineExceeded) => {
                self.dm.cancelled.inc();
                self.tenant_counter(tenant, "cancelled").inc();
            }
            Err(_) => {
                self.dm.failed.inc();
                self.tenant_counter(tenant, "failed").inc();
            }
        }
        // Per-tenant network rollup: whatever this query put on the wire
        // (completed or not) is charged to its tenant.
        self.tenant_counter(tenant, "bytes_shuffled")
            .add(sub.shared.stats.bytes_sent());
        self.tenant_counter(tenant, "messages_sent")
            .add(sub.shared.stats.messages_sent());
        sub.shared.complete(result);
    }

    /// The counter `tenant.<name>.<field>`, created on first use. Tenant
    /// counters live in the shared registry so `--metrics` groups them
    /// naturally (the rendering is name-sorted).
    fn tenant_counter(&self, tenant: &TenantId, field: &str) -> Arc<Counter> {
        self.metrics.counter(&format!("tenant.{tenant}.{field}"))
    }

    /// Compile one just-planned adaptive stage, mirroring
    /// [`Cluster::compile_programs`] a stage at a time: `temps`
    /// accumulates materialized schemas so later stages compile against
    /// earlier temps.
    fn compile_adaptive_stage(
        &self,
        stage: &QueryStage,
        temps: &mut HashMap<String, Schema>,
    ) -> Option<CompiledStage> {
        if self.cfg.expr_engine == ExprEngine::Ast {
            return None;
        }
        let base = |t: TpchTable| {
            self.nodes[0]
                .tables
                .read()
                .get(&t)
                .map(|tbl| tbl.schema().clone())
        };
        let (compiled, schema) = compile_stage(&stage.plan, &base, temps);
        if let StageRole::Materialize(name) = &stage.role {
            if let Some(s) = schema {
                temps.insert(name.clone(), s);
            }
        }
        (!compiled.is_empty()).then_some(compiled)
    }

    fn run_stages(
        &self,
        sub: &Submission,
        queue_wait: Duration,
    ) -> Result<QueryResult, EngineError> {
        let query = sub.shared.id;
        let cancel = &sub.shared.cancel;
        let mut params: Vec<Value> = Vec::new();
        let mut final_table: Option<Table> = None;
        // Adaptive submissions plan (and compile) each stage just in time;
        // the temp schemas accumulate so later stages compile against the
        // materializations of earlier ones.
        let mut adaptive_temps: HashMap<String, Schema> = HashMap::new();
        let mut stage_idx = 0usize;
        loop {
            let jit: Option<(QueryStage, Option<CompiledStage>)> = match &sub.adaptive {
                Some(qp) => match qp.lock().next_stage()? {
                    None => break,
                    Some(stage) => {
                        let prog = self.compile_adaptive_stage(&stage, &mut adaptive_temps);
                        Some((stage, prog))
                    }
                },
                None => {
                    if stage_idx >= sub.stages.len() {
                        break;
                    }
                    None
                }
            };
            let (stage, jit_prog) = match &jit {
                Some((stage, prog)) => (stage, prog.as_ref()),
                None => (&sub.stages[stage_idx], None),
            };
            // Cooperative cancellation point: between stages (and before
            // the first), where no exchange is in flight. The same token
            // is checked per morsel inside the node threads.
            if let Some(reason) = cancel.should_stop() {
                return Err(reason.into_error());
            }
            // Reject dangling temp references and unbound parameters before
            // the plan reaches the node threads: a panic there would unwind
            // through the SPMD scope and crash the caller instead of
            // returning an error.
            let mut referenced = Vec::new();
            collect_temp_scans(&stage.plan, &mut referenced);
            {
                let temps = self.nodes[0].temps.read();
                let ns = temps.get(&query);
                if let Some(name) = referenced
                    .iter()
                    .find(|n| !ns.is_some_and(|m| m.contains_key(**n)))
                {
                    return Err(EngineError::Planner(format!(
                        "temp relation {name:?} is not materialized by an earlier stage"
                    )));
                }
            }
            if let Some(m) = plan_max_param(&stage.plan) {
                if m >= params.len() {
                    return Err(EngineError::Planner(format!(
                        "plan references parameter {m}, but earlier stages bind \
                         only {} parameter(s)",
                        params.len()
                    )));
                }
            }
            // Exchange ids are per-query: each stage gets its own disjoint
            // range, and the query id in the wire header isolates them
            // from every other in-flight query.
            let base = (stage_idx as u32) * 100_000;
            // One recorder per stage, anchored at submission time so every
            // stage's spans share the query's timeline. Merging under the
            // profile lock happens once per stage, after the SPMD scope
            // joined — node threads only ever touch their own cells.
            let recorder = self.cfg.profiling.then(|| {
                StageRecorder::new(sub.submitted, self.cfg.nodes, plan_node_count(&stage.plan))
            });
            let programs =
                jit_prog.or_else(|| sub.programs.get(stage_idx).and_then(Option::as_ref));
            let results = self.execute_spmd(
                query,
                &stage.plan,
                &params,
                base,
                recorder.as_ref(),
                programs,
                cancel,
            )?;
            self.dm.stage_rounds.inc();
            if let Some(rec) = &recorder {
                let profile = rec.finish(
                    &stage.plan,
                    programs,
                    stage.role.label(),
                    stage.estimated_rows,
                    stage.feedback_rows,
                );
                sub.shared.profile.lock().stages.push(profile);
            }
            // Observed per-node result cardinalities, fed back to the
            // adaptive planner after the role handling consumes the batches.
            let node_rows: Vec<u64> = results.iter().map(|b| b.rows() as u64).collect();
            match &stage.role {
                StageRole::Result => {
                    final_table = Some(
                        results
                            .into_iter()
                            .next()
                            .expect("node 0 result")
                            .into_table(),
                    );
                }
                StageRole::Params => {
                    // Bind row 0 of the stage result as parameters, in
                    // column order. (The driver broadcasts these tiny
                    // scalars; the paper piggybacks such values on the
                    // control channel.)
                    let coordinator = results.into_iter().next().expect("node 0 result");
                    if coordinator.rows() == 0 {
                        return Err(EngineError::Execution(
                            "parameter stage produced no rows".into(),
                        ));
                    }
                    for c in 0..coordinator.schema().len() {
                        // Bind Decimal scalars as promoted floats: that is
                        // how expression evaluation reads Decimal columns,
                        // so a raw fixed-point i64 here would compare 100x
                        // off against any downstream column.
                        let v = match (
                            coordinator.schema().fields()[c].dtype,
                            coordinator.value(0, c),
                        ) {
                            (DataType::Decimal, Value::I64(cents)) => {
                                Value::F64(decimal_to_f64(cents))
                            }
                            (_, v) => v,
                        };
                        params.push(v);
                    }
                }
                StageRole::Materialize(name) => {
                    for (node, part) in self.nodes.iter().zip(results) {
                        node.temps
                            .write()
                            .entry(query)
                            .or_default()
                            .insert(name.clone(), part.into_arc());
                    }
                }
            }
            if let Some(qp) = &sub.adaptive {
                qp.lock().observe_rows(&node_rows);
            }
            stage_idx += 1;
        }

        Ok(QueryResult {
            query,
            table: final_table
                .ok_or_else(|| EngineError::Planner("query has no result stage".into()))?,
            elapsed: sub.submitted.elapsed(),
            queue_wait,
            bytes_shuffled: sub.shared.stats.bytes_sent(),
            messages_sent: sub.shared.stats.messages_sent(),
            profile: sub
                .shared
                .profiling
                .then(|| sub.shared.profile.lock().clone()),
        })
    }

    /// Run one stage SPMD across all node threads.
    ///
    /// Each node thread contains its own panics: a failing node marks the
    /// query aborted on *every* node's receive hub before it dies, so
    /// peers blocked mid-exchange on last-markers that will never arrive
    /// panic out of `RecvHub::pop` instead of wedging this dispatcher
    /// slot — the cross-node abort protocol, applied in-process. The
    /// first failure is reported as [`EngineError::Execution`].
    #[allow(clippy::too_many_arguments)]
    fn execute_spmd(
        &self,
        query: QueryId,
        plan: &Plan,
        params: &[Value],
        base: u32,
        recorder: Option<&StageRecorder>,
        programs: Option<&CompiledStage>,
        cancel: &CancelToken,
    ) -> Result<Vec<Batch>, EngineError> {
        let outcomes: Vec<Result<Batch, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, ctx)| {
                    let node_rec = recorder.map(|r| r.node(i));
                    let nodes = &self.nodes;
                    scope.spawn(move || {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            NodeExec::new(ctx, query, params, base)
                                .with_recorder(node_rec)
                                .with_programs(programs)
                                .with_cancel(Some(cancel))
                                .execute(plan)
                        }));
                        r.map_err(|payload| {
                            let msg = panic_message(payload.as_ref());
                            // Unblock peers *before* this thread exits:
                            // they may be waiting on our last-markers.
                            for peer in nodes.iter() {
                                peer.hub.abort(query, &format!("node {i} panicked: {msg}"));
                            }
                            format!("node {i} panicked: {msg}")
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        });
        let mut batches = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                Ok(b) => batches.push(b),
                Err(msg) => {
                    return Err(EngineError::Execution(format!(
                        "query execution panicked: {msg}"
                    )))
                }
            }
        }
        Ok(batches)
    }
}

/// Render a caught panic payload as a message string.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Collect every temp-relation name a plan reads through `Plan::TempScan`.
fn collect_temp_scans<'p>(plan: &'p Plan, out: &mut Vec<&'p str>) {
    if let Plan::TempScan { name, .. } = plan {
        out.push(name);
    }
    for child in plan.children() {
        collect_temp_scans(child, out);
    }
}

/// Highest `Expr::Param` index referenced anywhere in a physical plan.
fn plan_max_param(plan: &Plan) -> Option<usize> {
    let own = match plan {
        Plan::Scan { filter, .. } => filter.as_ref().and_then(Expr::max_param),
        Plan::Filter { predicate, .. } => predicate.max_param(),
        Plan::Map { outputs, .. } => outputs.iter().filter_map(|o| o.expr.max_param()).max(),
        Plan::Aggregate { aggs, .. } => aggs.iter().filter_map(|a| a.expr.max_param()).max(),
        Plan::TempScan { .. }
        | Plan::HashJoin { .. }
        | Plan::Sort { .. }
        | Plan::Exchange { .. } => None,
    };
    own.max(
        plan.children()
            .iter()
            .filter_map(|c| plan_max_param(c))
            .max(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggFunc, AggSpec};

    #[test]
    fn start_and_shutdown() {
        let c = Cluster::start(ClusterConfig::quick(2)).unwrap();
        c.shutdown();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Cluster::start(ClusterConfig {
            nodes: 0,
            ..ClusterConfig::quick(1)
        })
        .is_err());
        assert!(Cluster::start(ClusterConfig {
            message_capacity: 10,
            ..ClusterConfig::quick(1)
        })
        .is_err());
        assert!(Cluster::start(ClusterConfig {
            max_concurrent: 0,
            ..ClusterConfig::quick(1)
        })
        .is_err());
    }

    #[test]
    fn single_node_scan_and_aggregate() {
        let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
        c.load_tpch(0.001).unwrap();
        let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_quantity"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
        let r = c.run_plan(&plan).unwrap();
        assert_eq!(r.row_count(), 1);
        assert!(r.table.value(0, 0).as_i64() > 1000);
        assert_eq!(r.bytes_shuffled, 0);
        c.shutdown();
    }

    #[test]
    fn distributed_count_matches_single_node() {
        let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey"])
            .repartition(&["l_orderkey"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
            .gather()
            .aggregate(&[], vec![AggSpec::new(AggFunc::Sum, col("cnt"), "total")]);
        let single = {
            let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
            c.load_tpch(0.002).unwrap();
            let r = c.run_plan(&plan).unwrap();
            c.shutdown();
            r.table.value(0, 0).as_f64()
        };
        let multi = {
            let c = Cluster::start(ClusterConfig::quick(3)).unwrap();
            c.load_tpch(0.002).unwrap();
            let r = c.run_plan(&plan).unwrap();
            assert!(r.bytes_shuffled > 0, "3 nodes must shuffle bytes");
            c.shutdown();
            r.table.value(0, 0).as_f64()
        };
        assert_eq!(single, multi);
    }

    #[test]
    fn run_after_shutdown_fails() {
        let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
        let fabric = Arc::clone(c.fabric());
        c.shutdown();
        drop(fabric);
        let c2 = Cluster::start(ClusterConfig::quick(1)).unwrap();
        c2.load_tpch(0.001).unwrap();
        c2.shutdown();
    }

    #[test]
    fn submit_returns_results_asynchronously() {
        let c = Cluster::start(ClusterConfig::quick(2)).unwrap();
        c.load_tpch(0.001).unwrap();
        let plan = Plan::scan_cols(TpchTable::Orders, &["o_orderkey"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
            .gather();
        let q = Query::single(0, plan);
        let handles: Vec<QueryHandle> = (0..6).map(|_| c.submit(&q).unwrap()).collect();
        // Ids are distinct.
        let mut ids: Vec<u32> = handles.iter().map(|h| h.id().0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 6);
        let rows: Vec<usize> = handles
            .into_iter()
            .map(|h| h.wait().unwrap().row_count())
            .collect();
        assert!(rows.iter().all(|&r| r == rows[0]));
        assert_eq!(c.active_temp_namespaces(), 0);
        c.shutdown();
    }

    #[test]
    fn try_result_and_double_take() {
        let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
        c.load_tpch(0.001).unwrap();
        let q = Query::single(
            0,
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey"]).gather(),
        );
        let h = c.submit(&q).unwrap();
        // Poll until done.
        let r = loop {
            if let Some(r) = h.try_result() {
                break r;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(r.unwrap().row_count(), 25);
        assert!(h.is_finished());
        // The result can only be taken once.
        assert!(h.try_result().is_none());
        assert!(matches!(h.wait(), Err(EngineError::Execution(_))));
        c.shutdown();
    }

    #[test]
    fn cancelled_before_start_never_runs() {
        let c = Cluster::start(ClusterConfig {
            max_concurrent: 1,
            ..ClusterConfig::quick(2)
        })
        .unwrap();
        c.load_tpch(0.002).unwrap();
        let q = Query::single(
            0,
            Plan::scan(TpchTable::Lineitem)
                .repartition(&["l_orderkey"])
                .gather(),
        );
        // Saturate the single slot, then cancel queued queries.
        let running: Vec<QueryHandle> = (0..2).map(|_| c.submit(&q).unwrap()).collect();
        let queued: Vec<QueryHandle> = (0..3).map(|_| c.submit(&q).unwrap()).collect();
        for h in &queued {
            h.cancel();
        }
        for h in running {
            assert!(h.wait().is_ok());
        }
        for h in queued {
            match h.wait() {
                // Cancelled in the queue, or the race was lost and it ran
                // to completion — both are legal; wedging is not.
                Err(EngineError::Cancelled) | Ok(_) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
        // The engine stays healthy afterwards.
        assert!(c.run(&q).is_ok());
        assert_eq!(c.active_temp_namespaces(), 0);
        c.shutdown();
    }

    #[test]
    fn node_panics_surface_as_errors_not_hangs() {
        let c = Cluster::start(ClusterConfig {
            max_concurrent: 1, // a lost dispatcher slot would wedge everything
            ..ClusterConfig::quick(2)
        })
        .unwrap();
        c.load_tpch(0.001).unwrap();
        // A hand-written plan naming a nonexistent column panics inside
        // the node threads (it never went through the planner's checks).
        let bad = Query::single(
            0,
            Plan::scan_cols(TpchTable::Nation, &["no_such_column"]).gather(),
        );
        let h = c.submit(&bad).unwrap();
        match h.wait() {
            Err(EngineError::Execution(msg)) => {
                assert!(msg.contains("panicked"), "unexpected message: {msg}")
            }
            other => panic!("expected contained panic, got {other:?}"),
        }
        assert_eq!(c.active_temp_namespaces(), 0);
        // The single dispatcher slot survived: later queries still run.
        let ok = Query::single(
            0,
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey"]).gather(),
        );
        assert_eq!(c.run(&ok).unwrap().row_count(), 25);
        c.shutdown();
    }

    #[test]
    fn asymmetric_node_failure_aborts_peers_instead_of_wedging() {
        use hsqp_storage::{Field, Schema};
        let c = Cluster::start(ClusterConfig {
            max_concurrent: 1,
            ..ClusterConfig::quick(2)
        })
        .unwrap();
        c.load_tpch(0.001).unwrap();
        // Node 1's NATION part lacks the scanned column, so only node 1
        // panics; node 0 partitions its rows and blocks waiting for
        // node 1's last-markers. The cross-node abort must unblock it.
        let good = c.inner.nodes[0]
            .tables
            .read()
            .get(&TpchTable::Nation)
            .map(|t| Table::clone(t))
            .unwrap();
        let bad = Table::empty(Schema::new(vec![Field::new("wrong", DataType::Int64)]));
        c.load_table(TpchTable::Nation, vec![good, bad]).unwrap();
        let q = Query::single(
            0,
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey"])
                .repartition(&["n_nationkey"])
                .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
                .gather(),
        );
        match c.run(&q) {
            Err(EngineError::Execution(msg)) => {
                assert!(msg.contains("panicked"), "unexpected message: {msg}")
            }
            other => panic!("expected contained failure, got {other:?}"),
        }
        assert_eq!(c.active_temp_namespaces(), 0);
        // The dispatcher slot and the hubs survived for later queries.
        let ok = Query::single(
            0,
            Plan::scan_cols(TpchTable::Orders, &["o_orderkey"])
                .repartition(&["o_orderkey"])
                .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
                .gather()
                .aggregate(&[], vec![AggSpec::new(AggFunc::Sum, col("cnt"), "total")]),
        );
        assert_eq!(c.run(&ok).unwrap().row_count(), 1);
        c.shutdown();
    }

    #[test]
    fn queued_queries_fail_cleanly_on_shutdown() {
        let c = Cluster::start(ClusterConfig {
            max_concurrent: 1,
            ..ClusterConfig::quick(1)
        })
        .unwrap();
        c.load_tpch(0.001).unwrap();
        let q = Query::single(
            0,
            Plan::scan_cols(TpchTable::Nation, &["n_nationkey"]).gather(),
        );
        let handles: Vec<QueryHandle> = (0..4).map(|_| c.submit(&q).unwrap()).collect();
        c.shutdown();
        for h in handles {
            match h.wait() {
                Ok(_) | Err(EngineError::ClusterDown) => {}
                other => panic!("unexpected: {other:?}"),
            }
        }
    }
}
