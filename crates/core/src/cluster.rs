//! The SPMD cluster driver.
//!
//! A [`Cluster`] simulates `n` database servers in one process: each node
//! owns a worker pool, a NUMA topology, a message pool, and a communication
//! multiplexer thread attached to the shared network fabric. Queries run
//! SPMD — every node executes the same plan, exchanges redistribute tuples,
//! and the final result is gathered at node 0 (the coordinator).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Sender;
use parking_lot::RwLock;

use hsqp_net::{
    CompletionMode, Fabric, FabricConfig, LinkSpec, NetScheduler, NodeId, RdmaConfig, RdmaNetwork,
    TcpConfig, TcpNetwork,
};
use hsqp_numa::{AllocPolicy, CostModel, Topology};
use hsqp_storage::placement::{chunk_split, hash_partition, Placement};
use hsqp_storage::{DataType, Table, Value};
use hsqp_tpch::{TpchDb, TpchTable};

use crate::error::EngineError;
use crate::exchange::{spawn_multiplexer, Endpoint, MessagePool, MuxCmd, MuxConfig, RecvHub};
use crate::exec::{NodeCtx, NodeExec};
use crate::expr::Expr;
use crate::local::MorselDriver;
use crate::plan::Plan;
use crate::queries::{Query, QueryStage, StageRole};

/// Which network stack the multiplexers use (the three lines of Figure 3).
#[derive(Debug, Clone)]
pub enum Transport {
    /// RDMA verbs with optional round-robin network scheduling (§3.2.3).
    Rdma {
        /// Low-latency round-robin scheduling on/off.
        scheduling: bool,
        /// Completion notification mode (§2.2.4).
        completion: CompletionMode,
    },
    /// TCP sockets (IPoIB or Ethernet, depending on the fabric link).
    Tcp {
        /// Socket tuning (Figure 5 ladder).
        config: TcpConfig,
        /// Round-robin scheduling (the paper found it does not help TCP).
        scheduling: bool,
    },
}

impl Transport {
    /// The default RDMA transport (alias for
    /// [`rdma_scheduled`](Self::rdma_scheduled), the paper's engine).
    pub fn rdma() -> Self {
        Self::rdma_scheduled()
    }

    /// The paper's engine: RDMA + network scheduling, event completions.
    pub fn rdma_scheduled() -> Self {
        Transport::Rdma {
            scheduling: true,
            completion: CompletionMode::Event,
        }
    }

    /// RDMA without network scheduling (ablation).
    pub fn rdma_unscheduled() -> Self {
        Transport::Rdma {
            scheduling: false,
            completion: CompletionMode::Event,
        }
    }

    /// Tuned TCP (connected mode, 64 k MTU, separate IRQ core).
    pub fn tcp() -> Self {
        Transport::Tcp {
            config: TcpConfig::tuned(),
            scheduling: false,
        }
    }
}

/// Exchange operator model to use (§3.1 vs §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Hybrid parallelism: decoupled exchanges, n parallel units, work
    /// stealing (the paper's contribution).
    #[default]
    Hybrid,
    /// Classic exchange operators: n·t parallel units, static partition
    /// ownership, no stealing, per-unit broadcast copies.
    Classic,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated servers.
    pub nodes: u16,
    /// Worker threads per server (the paper's servers run 20 hyper-threaded
    /// cores; scale to the host machine).
    pub workers_per_node: u16,
    /// Link standard of the fabric (Table 1).
    pub link: LinkSpec,
    /// Network stack.
    pub transport: Transport,
    /// Exchange operator model.
    pub engine: EngineKind,
    /// NUMA sockets per server.
    pub sockets: u16,
    /// Remote-access penalty in ns/byte (0 disables NUMA simulation).
    pub numa_cost_ns: f64,
    /// Message-buffer allocation policy (Figure 9).
    pub alloc_policy: AllocPolicy,
    /// Tuple bytes per network message (the paper uses 512 KB).
    pub message_capacity: usize,
    /// Base-relation placement (§4.1).
    pub placement: Placement,
    /// Switch-contention modeling on/off.
    pub switch_contention: bool,
}

impl ClusterConfig {
    /// The paper's configuration scaled to a host machine: RDMA +
    /// scheduling over 4×QDR InfiniBand, hybrid parallelism, chunked
    /// placement.
    pub fn paper(nodes: u16) -> Self {
        Self {
            nodes,
            workers_per_node: 4,
            link: LinkSpec::IB_4X_QDR,
            transport: Transport::rdma_scheduled(),
            engine: EngineKind::Hybrid,
            sockets: 2,
            numa_cost_ns: 0.6,
            alloc_policy: AllocPolicy::NumaAware,
            message_capacity: 512 * 1024,
            placement: Placement::Chunked,
            switch_contention: true,
        }
    }

    /// Small/fast configuration for tests and examples: two workers, small
    /// messages, NUMA cost off.
    pub fn quick(nodes: u16) -> Self {
        Self {
            workers_per_node: 2,
            numa_cost_ns: 0.0,
            message_capacity: 32 * 1024,
            ..Self::paper(nodes)
        }
    }

    /// Gigabit-Ethernet TCP configuration (Figure 3's bottom line).
    pub fn tcp_gbe(nodes: u16) -> Self {
        Self {
            link: LinkSpec::GBE,
            transport: Transport::tcp(),
            ..Self::paper(nodes)
        }
    }

    /// TCP over InfiniBand (Figure 3's middle line).
    pub fn tcp_infiniband(nodes: u16) -> Self {
        Self {
            transport: Transport::tcp(),
            ..Self::paper(nodes)
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.nodes == 0 {
            return Err(EngineError::Config("need at least one node".into()));
        }
        if self.workers_per_node == 0 {
            return Err(EngineError::Config("need at least one worker".into()));
        }
        if self.sockets == 0 {
            return Err(EngineError::Config("need at least one socket".into()));
        }
        if self.message_capacity < 1024 {
            return Err(EngineError::Config("message capacity below 1 KiB".into()));
        }
        Ok(())
    }
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryResult {
    /// The gathered result table (node 0's output).
    pub table: Table,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Bytes shipped over the fabric during this query.
    pub bytes_shuffled: u64,
    /// Network messages sent during this query.
    pub messages_sent: u64,
}

impl QueryResult {
    /// Rows in the result.
    pub fn row_count(&self) -> usize {
        self.table.rows()
    }
}

/// A simulated database cluster.
pub struct Cluster {
    cfg: ClusterConfig,
    fabric: Arc<Fabric>,
    nodes: Vec<Arc<NodeCtx>>,
    mux_senders: Vec<Sender<MuxCmd>>,
    mux_handles: Vec<std::thread::JoinHandle<()>>,
    run_seq: AtomicU32,
    down: AtomicBool,
}

impl Cluster {
    /// Start a cluster: build the fabric, endpoints, message pools, and
    /// spawn one multiplexer thread per node.
    pub fn start(cfg: ClusterConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        let n = cfg.nodes;
        let fabric_cfg = FabricConfig {
            link: cfg.link,
            switch_contention: cfg.switch_contention,
            ..FabricConfig::default()
        };
        let fabric = Arc::new(Fabric::new(n, fabric_cfg));

        let (scheduling, rdma_net, tcp_net) = match &cfg.transport {
            Transport::Rdma {
                scheduling,
                completion,
            } => {
                let rc = RdmaConfig {
                    completion: *completion,
                    ..RdmaConfig::default()
                };
                (
                    *scheduling,
                    Some(RdmaNetwork::new(Arc::clone(&fabric), rc)),
                    None,
                )
            }
            Transport::Tcp { config, scheduling } => (
                *scheduling,
                None,
                Some(TcpNetwork::new(Arc::clone(&fabric), *config)),
            ),
        };

        let scheduler = (scheduling && n > 1).then(|| NetScheduler::new(n as usize));
        let cores_per_socket = cfg.workers_per_node.div_ceil(cfg.sockets).max(1);
        let cost = CostModel::new(cfg.numa_cost_ns);

        let mut nodes = Vec::with_capacity(n as usize);
        let mut mux_senders = Vec::with_capacity(n as usize);
        let mut mux_handles = Vec::with_capacity(n as usize);
        for i in 0..n {
            let node = NodeId(i);
            let topology = Arc::new(Topology::new(cfg.sockets, cores_per_socket, cost));
            let classic_units = (cfg.engine == EngineKind::Classic).then_some(cfg.workers_per_node);
            let hub_queues = match classic_units {
                Some(u) => u as usize,
                None => cfg.sockets as usize,
            };
            let hub = RecvHub::new(hub_queues);
            let pool = Arc::new(MessagePool::new(
                Arc::clone(&fabric),
                node,
                cfg.sockets,
                cfg.message_capacity,
            ));
            let endpoint = match (&rdma_net, &tcp_net) {
                (Some(net), _) => {
                    let ep = net.endpoint(node);
                    // The paper posts the hardware maximum of 16 k work
                    // requests; we provision generously.
                    ep.post_recvs(1 << 30);
                    Endpoint::Rdma(ep)
                }
                (_, Some(net)) => Endpoint::Tcp(net.endpoint(node)),
                _ => unreachable!("one transport is always built"),
            };
            let mux_cfg = MuxConfig {
                node,
                nodes: n,
                scheduling,
                batch_per_phase: 8,
                classic_units,
                sockets: cfg.sockets,
                alloc_policy: cfg.alloc_policy,
            };
            let (tx, handle) = spawn_multiplexer(
                mux_cfg,
                endpoint,
                Arc::clone(&hub),
                Arc::clone(&pool),
                scheduler.clone(),
            );
            let driver = MorselDriver::new(
                cfg.workers_per_node,
                &topology,
                hsqp_storage::table::MORSEL_SIZE,
                cfg.engine == EngineKind::Hybrid,
            );
            nodes.push(Arc::new(NodeCtx {
                node,
                nodes: n,
                driver,
                topology,
                alloc_policy: cfg.alloc_policy,
                classic_units,
                message_capacity: cfg.message_capacity,
                pool,
                hub,
                to_mux: tx.clone(),
                tables: RwLock::new(HashMap::new()),
                consume_loads: parking_lot::Mutex::new(Vec::new()),
                fabric: Arc::clone(&fabric),
            }));
            mux_senders.push(tx);
            mux_handles.push(handle);
        }

        Ok(Self {
            cfg,
            fabric,
            nodes,
            mux_senders,
            mux_handles,
            run_seq: AtomicU32::new(0),
            down: AtomicBool::new(false),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The network fabric (statistics).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Per-node execution contexts (benchmark instrumentation).
    pub fn node_ctx(&self, node: u16) -> &Arc<NodeCtx> {
        &self.nodes[node as usize]
    }

    /// Generate TPC-H at `sf` and distribute it per the configured
    /// placement (§4.1).
    pub fn load_tpch(&self, sf: f64) -> Result<(), EngineError> {
        self.load_tpch_db(TpchDb::generate(sf))
    }

    /// Distribute an already-generated TPC-H database.
    pub fn load_tpch_db(&self, db: TpchDb) -> Result<(), EngineError> {
        self.ensure_up()?;
        let n = self.cfg.nodes as usize;
        for (kind, table) in db.into_tables() {
            let parts: Vec<Table> = match self.cfg.placement {
                Placement::Chunked => chunk_split(&table, n),
                // Plans are placement-oblivious: a broadcast of a replicated
                // relation would duplicate rows, so replication is rejected
                // for query processing and treated as partitioned here.
                Placement::Partitioned | Placement::Replicated => {
                    let _ = kind;
                    hash_partition(&table, 0, n)
                }
            };
            for (node, part) in self.nodes.iter().zip(parts) {
                node.tables.write().insert(kind, Arc::new(part));
            }
        }
        Ok(())
    }

    /// Load an arbitrary relation with explicit per-node parts.
    pub fn load_table(&self, kind: TpchTable, parts: Vec<Table>) -> Result<(), EngineError> {
        self.ensure_up()?;
        if parts.len() != self.nodes.len() {
            return Err(EngineError::Config(format!(
                "expected {} parts, got {}",
                self.nodes.len(),
                parts.len()
            )));
        }
        for (node, part) in self.nodes.iter().zip(parts) {
            node.tables.write().insert(kind, Arc::new(part));
        }
        Ok(())
    }

    /// Total rows of `table` across all nodes, if it is loaded (the
    /// planner's source of exact cardinalities).
    pub fn table_rows(&self, table: TpchTable) -> Option<u64> {
        let mut total = 0u64;
        let mut loaded = false;
        for node in &self.nodes {
            if let Some(t) = node.tables.read().get(&table) {
                total += t.rows() as u64;
                loaded = true;
            }
        }
        loaded.then_some(total)
    }

    /// Run a single plan SPMD and return the coordinator's result.
    pub fn run_plan(&self, plan: &Plan) -> Result<QueryResult, EngineError> {
        self.run_stages(std::slice::from_ref(&QueryStage {
            plan: plan.clone(),
            role: StageRole::Result,
        }))
    }

    /// Run a multi-stage query: parameter stages bind their first result
    /// row as `Expr::Param` values for later stages, materialization stages
    /// register per-node temp relations for `Plan::TempScan`, and the final
    /// stage produces the result.
    pub fn run(&self, query: &Query) -> Result<QueryResult, EngineError> {
        self.run_stages(&query.stages)
    }

    fn run_stages(&self, stages: &[QueryStage]) -> Result<QueryResult, EngineError> {
        self.ensure_up()?;
        if stages.is_empty() {
            return Err(EngineError::Planner(
                "query needs at least one stage".into(),
            ));
        }
        let bytes_before = self.fabric.total_bytes_sent();
        let msgs_before: u64 = (0..self.cfg.nodes)
            .map(|i| self.fabric.stats(NodeId(i)).messages_sent())
            .sum();
        let started = Instant::now();

        let mut params: Vec<Value> = Vec::new();
        let mut temps: Vec<HashMap<String, Arc<Table>>> = vec![HashMap::new(); self.nodes.len()];
        let mut final_table: Option<Table> = None;
        for stage in stages {
            // Reject dangling temp references and unbound parameters before
            // the plan reaches the node threads: a panic there would unwind
            // through the SPMD scope and crash the caller instead of
            // returning an error.
            let mut referenced = Vec::new();
            collect_temp_scans(&stage.plan, &mut referenced);
            if let Some(name) = referenced.iter().find(|n| !temps[0].contains_key(**n)) {
                return Err(EngineError::Planner(format!(
                    "temp relation {name:?} is not materialized by an earlier stage"
                )));
            }
            if let Some(m) = plan_max_param(&stage.plan) {
                if m >= params.len() {
                    return Err(EngineError::Planner(format!(
                        "plan references parameter {m}, but earlier stages bind \
                         only {} parameter(s)",
                        params.len()
                    )));
                }
            }
            let base = self.run_seq.fetch_add(1, Ordering::Relaxed) * 100_000;
            let results = self.execute_spmd(&stage.plan, &params, &temps, base);
            match &stage.role {
                StageRole::Result => {
                    final_table = Some(results.into_iter().next().expect("node 0 result"));
                }
                StageRole::Params => {
                    // Bind row 0 of the stage result as parameters, in
                    // column order. (The driver broadcasts these tiny
                    // scalars; the paper piggybacks such values on the
                    // control channel.)
                    let coordinator = results.into_iter().next().expect("node 0 result");
                    if coordinator.rows() == 0 {
                        return Err(EngineError::Execution(
                            "parameter stage produced no rows".into(),
                        ));
                    }
                    for c in 0..coordinator.schema().len() {
                        // Bind Decimal scalars as promoted floats: that is
                        // how expression evaluation reads Decimal columns,
                        // so a raw fixed-point i64 here would compare 100x
                        // off against any downstream column.
                        let v = match (
                            coordinator.schema().fields()[c].dtype,
                            coordinator.value(0, c),
                        ) {
                            (DataType::Decimal, Value::I64(cents)) => {
                                Value::F64(cents as f64 / 100.0)
                            }
                            (_, v) => v,
                        };
                        params.push(v);
                    }
                }
                StageRole::Materialize(name) => {
                    for (node_temps, part) in temps.iter_mut().zip(results) {
                        node_temps.insert(name.clone(), Arc::new(part));
                    }
                }
            }
        }

        let elapsed = started.elapsed();
        let msgs_after: u64 = (0..self.cfg.nodes)
            .map(|i| self.fabric.stats(NodeId(i)).messages_sent())
            .sum();
        Ok(QueryResult {
            table: final_table
                .ok_or_else(|| EngineError::Planner("query has no result stage".into()))?,
            elapsed,
            bytes_shuffled: self.fabric.total_bytes_sent() - bytes_before,
            messages_sent: msgs_after - msgs_before,
        })
    }

    fn execute_spmd(
        &self,
        plan: &Plan,
        params: &[Value],
        temps: &[HashMap<String, Arc<Table>>],
        base: u32,
    ) -> Vec<Table> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .nodes
                .iter()
                .zip(temps)
                .map(|(ctx, node_temps)| {
                    scope.spawn(move || {
                        NodeExec::with_temps(ctx, params, node_temps, base).execute(plan)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    fn ensure_up(&self) -> Result<(), EngineError> {
        if self.down.load(Ordering::SeqCst) {
            return Err(EngineError::ClusterDown);
        }
        Ok(())
    }

    /// Stop all multiplexer threads and tear the cluster down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.down.swap(true, Ordering::SeqCst) {
            return;
        }
        for tx in &self.mux_senders {
            let _ = tx.send(MuxCmd::Shutdown);
        }
        for h in self.mux_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Collect every temp-relation name a plan reads through `Plan::TempScan`.
fn collect_temp_scans<'p>(plan: &'p Plan, out: &mut Vec<&'p str>) {
    if let Plan::TempScan { name } = plan {
        out.push(name);
    }
    for child in plan.children() {
        collect_temp_scans(child, out);
    }
}

/// Highest `Expr::Param` index referenced anywhere in a physical plan.
fn plan_max_param(plan: &Plan) -> Option<usize> {
    let own = match plan {
        Plan::Scan { filter, .. } => filter.as_ref().and_then(Expr::max_param),
        Plan::Filter { predicate, .. } => predicate.max_param(),
        Plan::Map { outputs, .. } => outputs.iter().filter_map(|o| o.expr.max_param()).max(),
        Plan::Aggregate { aggs, .. } => aggs.iter().filter_map(|a| a.expr.max_param()).max(),
        Plan::TempScan { .. }
        | Plan::HashJoin { .. }
        | Plan::Sort { .. }
        | Plan::Exchange { .. } => None,
    };
    own.max(
        plan.children()
            .iter()
            .filter_map(|c| plan_max_param(c))
            .max(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggFunc, AggSpec};

    #[test]
    fn start_and_shutdown() {
        let c = Cluster::start(ClusterConfig::quick(2)).unwrap();
        c.shutdown();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Cluster::start(ClusterConfig {
            nodes: 0,
            ..ClusterConfig::quick(1)
        })
        .is_err());
        assert!(Cluster::start(ClusterConfig {
            message_capacity: 10,
            ..ClusterConfig::quick(1)
        })
        .is_err());
    }

    #[test]
    fn single_node_scan_and_aggregate() {
        let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
        c.load_tpch(0.001).unwrap();
        let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_quantity"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")]);
        let r = c.run_plan(&plan).unwrap();
        assert_eq!(r.row_count(), 1);
        assert!(r.table.value(0, 0).as_i64() > 1000);
        assert_eq!(r.bytes_shuffled, 0);
        c.shutdown();
    }

    #[test]
    fn distributed_count_matches_single_node() {
        let plan = Plan::scan_cols(TpchTable::Lineitem, &["l_orderkey"])
            .repartition(&["l_orderkey"])
            .aggregate(&[], vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")])
            .gather()
            .aggregate(&[], vec![AggSpec::new(AggFunc::Sum, col("cnt"), "total")]);
        let single = {
            let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
            c.load_tpch(0.002).unwrap();
            let r = c.run_plan(&plan).unwrap();
            c.shutdown();
            r.table.value(0, 0).as_f64()
        };
        let multi = {
            let c = Cluster::start(ClusterConfig::quick(3)).unwrap();
            c.load_tpch(0.002).unwrap();
            let r = c.run_plan(&plan).unwrap();
            assert!(r.bytes_shuffled > 0, "3 nodes must shuffle bytes");
            c.shutdown();
            r.table.value(0, 0).as_f64()
        };
        assert_eq!(single, multi);
    }

    #[test]
    fn run_after_shutdown_fails() {
        let c = Cluster::start(ClusterConfig::quick(1)).unwrap();
        let fabric = Arc::clone(c.fabric());
        c.shutdown();
        drop(fabric);
        let c2 = Cluster::start(ClusterConfig::quick(1)).unwrap();
        c2.load_tpch(0.001).unwrap();
        c2.shutdown();
    }
}
