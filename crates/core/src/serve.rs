//! Multi-tenant serving layer: tenant identity, weighted-fair admission
//! queues, cooperative cancellation tokens, and open-loop arrival
//! processes.
//!
//! This module holds the serving-side policy objects the rest of the
//! engine threads through its mechanisms:
//!
//! - [`TenantId`] / [`TenantConfig`] tag every submission with who it
//!   belongs to and what that tenant is entitled to (scheduling weight,
//!   `max_queued` / `max_concurrent` admission caps).
//! - [`WdrrQueue`] replaces the dispatcher's single FIFO channel with
//!   per-tenant queues drained by weighted deficit round-robin, so a
//!   heavy tenant cannot starve a light one beyond its weight share.
//! - [`CancelToken`] is the shared cooperative-cancellation flag checked
//!   at **morsel** granularity inside `NodeExec` operator loops and at
//!   exchange waits, carrying an optional deadline so per-query timeouts
//!   land within one morsel rather than one stage.
//! - [`ArrivalProcess`] generates Poisson / uniform arrival schedules for
//!   the open-loop workload driver (`hsqp --open-loop`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::EngineError;

// ---------------------------------------------------------------------------
// Tenant identity and entitlements
// ---------------------------------------------------------------------------

/// Opaque tenant identity attached to every submission.
///
/// Cheap to clone (shared string); compares by name. Queries submitted
/// without an explicit tenant run as [`TenantId::default`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// The tenant queries run as when no tenant is named.
    pub const DEFAULT_NAME: &'static str = "default";

    /// Tenant id for `name`.
    pub fn new(name: &str) -> Self {
        TenantId(Arc::from(name))
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::new(Self::DEFAULT_NAME)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId::new(name)
    }
}

/// Per-tenant scheduling weight and admission caps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Deficit round-robin weight (≥ 1): per scheduling round a tenant
    /// with weight `w` is credited `w` query starts, so two backlogged
    /// tenants with weights 4:1 complete work in a 4:1 ratio.
    pub weight: u32,
    /// Maximum queued-but-not-yet-running submissions; over-cap
    /// submissions are rejected fast with [`EngineError::Admission`].
    /// `None` = unbounded.
    pub max_queued: Option<usize>,
    /// Maximum concurrently executing queries for this tenant;
    /// submissions over this cap stay queued (they are not rejected).
    /// `None` = bounded only by the dispatcher pool.
    pub max_concurrent: Option<u16>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            max_queued: None,
            max_concurrent: None,
        }
    }
}

impl TenantConfig {
    /// Uncapped tenant with the given scheduling weight.
    pub fn weighted(weight: u32) -> Self {
        TenantConfig {
            weight,
            ..TenantConfig::default()
        }
    }

    /// Reject invalid entitlements (zero weight or zero caps).
    pub fn validate(&self, tenant: &str) -> Result<(), EngineError> {
        if self.weight == 0 {
            return Err(EngineError::Config(format!(
                "tenant {tenant:?}: weight must be >= 1"
            )));
        }
        if self.max_queued == Some(0) {
            return Err(EngineError::Config(format!(
                "tenant {tenant:?}: max_queued must be >= 1 (or unset)"
            )));
        }
        if self.max_concurrent == Some(0) {
            return Err(EngineError::Config(format!(
                "tenant {tenant:?}: max_concurrent must be >= 1 (or unset)"
            )));
        }
        Ok(())
    }
}

/// Per-submission serving options: which tenant the query runs as and an
/// optional deadline after which it is cooperatively cancelled.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Tenant the query is accounted and scheduled under.
    pub tenant: TenantId,
    /// Relative deadline: once elapsed the query stops within one morsel
    /// and resolves to [`EngineError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options running as `tenant` with no deadline.
    pub fn tenant(name: &str) -> Self {
        SubmitOptions {
            tenant: TenantId::new(name),
            ..SubmitOptions::default()
        }
    }

    /// Attach a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

/// Why a query was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline elapsed.
    DeadlineExceeded,
}

impl StopReason {
    /// The typed engine error this stop reason resolves to.
    pub fn into_error(self) -> EngineError {
        match self {
            StopReason::Cancelled => EngineError::Cancelled,
            StopReason::DeadlineExceeded => EngineError::DeadlineExceeded,
        }
    }
}

const TOKEN_LIVE: u8 = 0;
const TOKEN_CANCELLED: u8 = 1;
const TOKEN_DEADLINE: u8 = 2;

/// Shared cooperative-cancellation flag with an optional deadline.
///
/// One token is created per query; clones share the same tripwire, so a
/// `cancel()` on the handle is observed by every operator loop and
/// exchange wait polling [`CancelToken::should_stop`]. The deadline is
/// immutable per token value, but [`CancelToken::child_with_deadline`]
/// derives a token that shares the tripwire under a different deadline —
/// how a remote node applies the coordinator's remaining-time budget to
/// one shipped stage.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// Live token with no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Live token that trips once `deadline` passes (if set).
    pub fn with_deadline(deadline: Option<Instant>) -> Self {
        CancelToken {
            state: Arc::new(AtomicU8::new(TOKEN_LIVE)),
            deadline,
        }
    }

    /// Token sharing this token's tripwire but carrying `deadline`
    /// instead of the parent's.
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> Self {
        CancelToken {
            state: Arc::clone(&self.state),
            deadline,
        }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Trip the token as user-cancelled. A deadline trip that already
    /// happened wins (first reason sticks).
    pub fn cancel(&self) {
        let _ = self.state.compare_exchange(
            TOKEN_LIVE,
            TOKEN_CANCELLED,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Check the tripwire *and* the deadline: the call operator loops
    /// make once per morsel. Returns the stop reason once tripped.
    pub fn should_stop(&self) -> Option<StopReason> {
        match self.state.load(Ordering::SeqCst) {
            TOKEN_CANCELLED => return Some(StopReason::Cancelled),
            TOKEN_DEADLINE => return Some(StopReason::DeadlineExceeded),
            _ => {}
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                let _ = self.state.compare_exchange(
                    TOKEN_LIVE,
                    TOKEN_DEADLINE,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                return self.stop_reason();
            }
        }
        None
    }

    /// The recorded stop reason without re-checking the deadline — used
    /// to map an execution failure back to the typed error that caused
    /// it, without misclassifying an unrelated failure whose deadline
    /// happened to pass during teardown.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self.state.load(Ordering::SeqCst) {
            TOKEN_CANCELLED => Some(StopReason::Cancelled),
            TOKEN_DEADLINE => Some(StopReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the token has tripped (either reason).
    pub fn is_stopped(&self) -> bool {
        self.state.load(Ordering::SeqCst) != TOKEN_LIVE
    }

    /// Panic with a recognizable message if the token has tripped — the
    /// morsel-loop escape hatch. The panic unwinds to the per-query
    /// `catch_unwind`, where the dispatcher maps it back to
    /// [`EngineError::Cancelled`] / [`EngineError::DeadlineExceeded`] via
    /// [`CancelToken::stop_reason`].
    pub fn check_morsel(&self) {
        if let Some(reason) = self.should_stop() {
            panic!("query stopped between morsels: {reason:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Weighted deficit round-robin admission queue
// ---------------------------------------------------------------------------

struct TenantQueue<T> {
    id: TenantId,
    cfg: TenantConfig,
    queue: VecDeque<T>,
    deficit: u64,
    running: usize,
}

struct WdrrState<T> {
    tenants: Vec<TenantQueue<T>>,
    index: HashMap<TenantId, usize>,
    cursor: usize,
    closed: bool,
}

impl<T> WdrrState<T> {
    fn tenant_mut(&mut self, id: &TenantId) -> &mut TenantQueue<T> {
        let i = match self.index.get(id) {
            Some(&i) => i,
            None => {
                // Unknown tenants self-register with default entitlements
                // (weight 1, no caps) on first submission.
                let i = self.tenants.len();
                self.tenants.push(TenantQueue {
                    id: id.clone(),
                    cfg: TenantConfig::default(),
                    queue: VecDeque::new(),
                    deficit: 0,
                    running: 0,
                });
                self.index.insert(id.clone(), i);
                i
            }
        };
        &mut self.tenants[i]
    }
}

/// Multi-tenant admission queue drained by weighted deficit round-robin.
///
/// Each tenant owns a FIFO of pending items plus a deficit counter. A
/// scheduling round credits every backlogged tenant `weight` starts;
/// [`WdrrQueue::pop`] serves tenants round-robin, spending one credit per
/// item, skipping tenants at their `max_concurrent` cap. With unit-cost
/// items this is classic DRR: over any backlogged interval tenants are
/// served in proportion to their weights, so a flood from one tenant
/// delays another only by its weight share. An idle tenant's deficit
/// resets — weights bound *shares*, they do not bank idle time.
///
/// Shutdown protocol: [`WdrrQueue::close`] wakes all poppers; `pop` then
/// ignores concurrency caps and drains every remaining item (letting the
/// dispatcher fail them cleanly) before returning `None`.
pub struct WdrrQueue<T> {
    state: Mutex<WdrrState<T>>,
    wake: Condvar,
}

impl<T> WdrrQueue<T> {
    /// Empty queue with the given pre-registered tenants; unknown tenants
    /// self-register with [`TenantConfig::default`] on first push.
    pub fn new(tenants: &[(String, TenantConfig)]) -> Self {
        let mut state = WdrrState {
            tenants: Vec::new(),
            index: HashMap::new(),
            cursor: 0,
            closed: false,
        };
        for (name, cfg) in tenants {
            let id = TenantId::new(name);
            state.tenant_mut(&id).cfg = cfg.clone();
        }
        WdrrQueue {
            state: Mutex::new(state),
            wake: Condvar::new(),
        }
    }

    /// Register `tenant` (or update its entitlements if already known).
    pub fn configure(&self, tenant: &TenantId, cfg: TenantConfig) {
        let mut st = self.state.lock();
        st.tenant_mut(tenant).cfg = cfg;
        // A raised max_concurrent may unblock waiting poppers.
        self.wake.notify_all();
    }

    /// Entitlements currently in force for `tenant`, if registered.
    pub fn config_of(&self, tenant: &TenantId) -> Option<TenantConfig> {
        let st = self.state.lock();
        let i = *st.index.get(tenant)?;
        Some(st.tenants[i].cfg.clone())
    }

    /// Enqueue one item for `tenant`.
    ///
    /// Fails fast with [`EngineError::Admission`] when the tenant is at
    /// its `max_queued` cap, and with [`EngineError::ClusterDown`] after
    /// [`WdrrQueue::close`].
    pub fn push(&self, tenant: &TenantId, item: T) -> Result<(), EngineError> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(EngineError::ClusterDown);
        }
        let t = st.tenant_mut(tenant);
        if let Some(cap) = t.cfg.max_queued {
            if t.queue.len() >= cap {
                return Err(EngineError::Admission(format!(
                    "tenant {tenant:?} is at max_queued={cap}"
                )));
            }
        }
        t.queue.push_back(item);
        drop(st);
        self.wake.notify_one();
        Ok(())
    }

    /// Dequeue the next item per the DRR schedule, blocking while the
    /// queue is open but nothing is runnable. Returns `None` only when
    /// closed *and* fully drained. The caller owes a matching
    /// [`WdrrQueue::finish`] for the returned tenant.
    pub fn pop(&self) -> Option<(TenantId, T)> {
        let mut st = self.state.lock();
        loop {
            if let Some(hit) = Self::try_pop_locked(&mut st) {
                return Some(hit);
            }
            if st.closed && st.tenants.iter().all(|t| t.queue.is_empty()) {
                return None;
            }
            self.wake.wait(&mut st);
        }
    }

    fn try_pop_locked(st: &mut WdrrState<T>) -> Option<(TenantId, T)> {
        let n = st.tenants.len();
        if n == 0 {
            return None;
        }
        loop {
            let mut any_runnable = false;
            for k in 0..n {
                let i = (st.cursor + k) % n;
                let t = &mut st.tenants[i];
                if t.queue.is_empty() {
                    // Standard DRR: idle tenants do not bank credit.
                    t.deficit = 0;
                    continue;
                }
                // After close, caps are moot — drain everything so the
                // dispatcher can fail the leftovers and retire their
                // stats entries.
                let runnable = st.closed
                    || t.cfg
                        .max_concurrent
                        .is_none_or(|cap| t.running < cap as usize);
                if !runnable {
                    continue;
                }
                any_runnable = true;
                if t.deficit >= 1 {
                    t.deficit -= 1;
                    let item = t.queue.pop_front().expect("non-empty queue");
                    t.running += 1;
                    let id = t.id.clone();
                    st.cursor = (i + 1) % n;
                    return Some((id, item));
                }
            }
            if !any_runnable {
                return None;
            }
            // New round: credit every backlogged tenant its weight. At
            // least one runnable tenant then has deficit ≥ 1 (weights
            // are ≥ 1), so this loop terminates.
            for t in &mut st.tenants {
                if !t.queue.is_empty() {
                    t.deficit += u64::from(t.cfg.weight.max(1));
                }
            }
        }
    }

    /// Record that an item popped for `tenant` finished executing,
    /// releasing its `max_concurrent` slot.
    pub fn finish(&self, tenant: &TenantId) {
        let mut st = self.state.lock();
        let t = st.tenant_mut(tenant);
        t.running = t.running.saturating_sub(1);
        drop(st);
        self.wake.notify_all();
    }

    /// Close the queue: no further pushes are admitted; poppers drain the
    /// backlog (ignoring caps) and then observe `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.wake.notify_all();
    }

    /// Items currently queued for `tenant` (0 if unknown).
    pub fn queued(&self, tenant: &TenantId) -> usize {
        let st = self.state.lock();
        st.index
            .get(tenant)
            .map_or(0, |&i| st.tenants[i].queue.len())
    }

    /// Items currently queued across all tenants.
    pub fn total_queued(&self) -> usize {
        let st = self.state.lock();
        st.tenants.iter().map(|t| t.queue.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Per-tenant metrics rollup
// ---------------------------------------------------------------------------

/// Point-in-time per-tenant serving counters, rolled up from the cluster
/// metrics registry (`tenant.<name>.*` instruments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantMetrics {
    /// Tenant name.
    pub tenant: String,
    /// Queries accepted into the tenant's queue.
    pub submitted: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries that failed for a non-cancellation reason.
    pub failed: u64,
    /// Queries resolved as cancelled or deadline-exceeded.
    pub cancelled: u64,
    /// Submissions rejected at admission (`max_queued` cap).
    pub rejected: u64,
    /// Network bytes shuffled by the tenant's completed queries.
    pub bytes_shuffled: u64,
    /// Network messages sent by the tenant's completed queries.
    pub messages_sent: u64,
}

// ---------------------------------------------------------------------------
// Open-loop arrival processes
// ---------------------------------------------------------------------------

/// How the open-loop driver spaces query arrivals at a fixed offered
/// load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps (memoryless): the classic open-loop
    /// model where bursts contend for the dispatcher.
    Poisson,
    /// One arrival every `1/λ`: isolates queueing from burstiness.
    Uniform,
}

impl ArrivalProcess {
    /// Parse `poisson` / `uniform`.
    pub fn parse(s: &str) -> Result<Self, EngineError> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "uniform" => Ok(ArrivalProcess::Uniform),
            other => Err(EngineError::Config(format!(
                "unknown arrival process {other:?} (expected poisson | uniform)"
            ))),
        }
    }

    /// Deterministic arrival offsets (from window start) for an offered
    /// load of `rate_per_hour` queries/hour over `duration`.
    ///
    /// Poisson draws exponential gaps from a seeded generator so a run is
    /// reproducible; uniform spaces arrivals exactly `1/λ` apart.
    pub fn offsets(self, rate_per_hour: f64, duration: Duration, seed: u64) -> Vec<Duration> {
        assert!(
            rate_per_hour.is_finite() && rate_per_hour > 0.0,
            "offered load must be positive"
        );
        let mean_gap = 3600.0 / rate_per_hour; // seconds
        let horizon = duration.as_secs_f64();
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let gap = match self {
                ArrivalProcess::Uniform => mean_gap,
                ArrivalProcess::Poisson => {
                    // Inverse-CDF exponential sample; 1-u ∈ (0, 1] so the
                    // log argument never hits zero.
                    let u = rand::distr::unit_f64(&mut rng);
                    -(1.0f64 - u).ln() * mean_gap
                }
            };
            t += gap;
            if t >= horizon {
                return out;
            }
            out.push(Duration::from_secs_f64(t));
        }
    }
}

/// Parse an `--tenants name:weight[,name:weight...]` spec into tenant
/// configs (weights must be ≥ 1).
pub fn parse_tenant_spec(spec: &str) -> Result<Vec<(String, TenantConfig)>, EngineError> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, weight) = match part.split_once(':') {
            Some((name, w)) => {
                let weight: u32 = w.trim().parse().map_err(|_| {
                    EngineError::Config(format!("invalid tenant weight in {part:?}"))
                })?;
                (name.trim(), weight)
            }
            None => (part, 1),
        };
        if name.is_empty() {
            return Err(EngineError::Config(format!(
                "empty tenant name in {spec:?}"
            )));
        }
        let cfg = TenantConfig::weighted(weight);
        cfg.validate(name)?;
        out.push((name.to_string(), cfg));
    }
    if out.is_empty() {
        return Err(EngineError::Config(
            "--tenants must name at least one tenant".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn drain_order(queue: &WdrrQueue<u32>, n: usize) -> Vec<(String, u32)> {
        (0..n)
            .map(|_| {
                let (t, v) = queue.pop().expect("queue should not be drained yet");
                queue.finish(&t);
                (t.as_str().to_string(), v)
            })
            .collect()
    }

    #[test]
    fn wdrr_serves_in_weight_proportion() {
        let queue = WdrrQueue::new(&[
            ("gold".into(), TenantConfig::weighted(3)),
            ("silver".into(), TenantConfig::weighted(1)),
        ]);
        let gold = TenantId::new("gold");
        let silver = TenantId::new("silver");
        for i in 0..8 {
            queue.push(&gold, i).unwrap();
            queue.push(&silver, 100 + i).unwrap();
        }
        // First 8 pops: gold gets its 3-credit rounds, silver 1 each → 6:2.
        let first = drain_order(&queue, 8);
        let gold_served = first.iter().filter(|(t, _)| t == "gold").count();
        assert_eq!(gold_served, 6, "3:1 weights must serve 6 gold of first 8");
        // Both FIFOs preserve per-tenant order.
        let gold_vals: Vec<u32> = first
            .iter()
            .filter(|(t, _)| t == "gold")
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(gold_vals, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn wdrr_idle_tenant_does_not_bank_credit() {
        let queue = WdrrQueue::new(&[
            ("a".into(), TenantConfig::weighted(4)),
            ("b".into(), TenantConfig::weighted(1)),
        ]);
        let a = TenantId::new("a");
        let b = TenantId::new("b");
        // Only b is backlogged for a while; a must not accumulate rounds
        // of credit it can spend later to monopolize the queue.
        for i in 0..5 {
            queue.push(&b, i).unwrap();
        }
        let only_b = drain_order(&queue, 5);
        assert!(only_b.iter().all(|(t, _)| t == "b"));
        for i in 0..4 {
            queue.push(&a, i).unwrap();
            queue.push(&b, 100 + i).unwrap();
        }
        let mixed = drain_order(&queue, 5);
        let b_served = mixed.iter().filter(|(t, _)| t == "b").count();
        assert!(
            b_served >= 1,
            "b must still be served within a's first round: {mixed:?}"
        );
    }

    #[test]
    fn wdrr_rejects_over_max_queued_and_respects_max_concurrent() {
        let queue = WdrrQueue::new(&[(
            "t".into(),
            TenantConfig {
                weight: 1,
                max_queued: Some(2),
                max_concurrent: Some(1),
            },
        )]);
        let t = TenantId::new("t");
        queue.push(&t, 1).unwrap();
        queue.push(&t, 2).unwrap();
        let err = queue.push(&t, 3).unwrap_err();
        assert!(
            matches!(err, EngineError::Admission(ref m) if m.contains("max_queued")),
            "expected Admission, got {err:?}"
        );

        // One item runs; the second must wait for finish() despite being
        // queued, because max_concurrent = 1.
        let (tid, v) = queue.pop().unwrap();
        assert_eq!(v, 1);
        let got_second = Arc::new(AtomicUsize::new(0));
        let queue = Arc::new(queue);
        let waiter = {
            let queue = Arc::clone(&queue);
            let got = Arc::clone(&got_second);
            std::thread::spawn(move || {
                let (tid, v) = queue.pop().unwrap();
                got.store(v as usize, Ordering::SeqCst);
                queue.finish(&tid);
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            got_second.load(Ordering::SeqCst),
            0,
            "second item ran before the first finished"
        );
        queue.finish(&tid);
        waiter.join().unwrap();
        assert_eq!(got_second.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wdrr_close_drains_backlog_then_returns_none() {
        let queue = WdrrQueue::new(&[(
            "t".into(),
            TenantConfig {
                weight: 1,
                max_queued: None,
                max_concurrent: Some(1),
            },
        )]);
        let t = TenantId::new("t");
        for i in 0..3 {
            queue.push(&t, i).unwrap();
        }
        queue.close();
        assert!(matches!(
            queue.push(&t, 9).unwrap_err(),
            EngineError::ClusterDown
        ));
        // Caps are ignored after close: all three drain without finish().
        let mut drained = Vec::new();
        while let Some((_, v)) = queue.pop() {
            drained.push(v);
        }
        assert_eq!(drained, vec![0, 1, 2]);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn wdrr_unknown_tenant_self_registers() {
        let queue: WdrrQueue<u32> = WdrrQueue::new(&[]);
        let t = TenantId::new("walk-in");
        queue.push(&t, 7).unwrap();
        assert_eq!(queue.queued(&t), 1);
        assert_eq!(queue.config_of(&t), Some(TenantConfig::default()));
        let (tid, v) = queue.pop().unwrap();
        assert_eq!((tid.as_str(), v), ("walk-in", 7));
        queue.finish(&tid);
    }

    #[test]
    fn cancel_token_trips_once_with_first_reason() {
        let token = CancelToken::new();
        assert!(token.should_stop().is_none());
        token.cancel();
        assert_eq!(token.should_stop(), Some(StopReason::Cancelled));
        assert_eq!(token.stop_reason(), Some(StopReason::Cancelled));

        let deadline = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(deadline.should_stop(), Some(StopReason::DeadlineExceeded));
        // A later cancel() does not rewrite the reason.
        deadline.cancel();
        assert_eq!(deadline.stop_reason(), Some(StopReason::DeadlineExceeded));

        let future = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(future.should_stop().is_none());
    }

    #[test]
    fn cancel_token_child_shares_tripwire() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        // Child deadline trips the shared state; parent observes it.
        assert_eq!(child.should_stop(), Some(StopReason::DeadlineExceeded));
        assert_eq!(parent.stop_reason(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn arrival_offsets_match_offered_load() {
        // 3600 q/h over 2 s → mean gap 1 s → exactly 1 uniform arrival
        // (at t=1) inside [0, 2).
        let uniform = ArrivalProcess::Uniform.offsets(3600.0, Duration::from_secs(2), 1);
        assert_eq!(uniform.len(), 1);
        assert_eq!(uniform[0], Duration::from_secs(1));

        // Poisson at high rate: deterministic per seed, roughly λ·T
        // arrivals, strictly increasing offsets within the window.
        let a = ArrivalProcess::Poisson.offsets(360_000.0, Duration::from_secs(2), 42);
        let b = ArrivalProcess::Poisson.offsets(360_000.0, Duration::from_secs(2), 42);
        assert_eq!(a, b);
        assert!(a.len() > 100 && a.len() < 300, "got {}", a.len());
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(*a.last().unwrap() < Duration::from_secs(2));
    }

    #[test]
    fn tenant_spec_parses_and_validates() {
        let spec = parse_tenant_spec("gold:4, silver:1,bare").unwrap();
        assert_eq!(spec.len(), 3);
        assert_eq!(spec[0].0, "gold");
        assert_eq!(spec[0].1.weight, 4);
        assert_eq!(spec[2].1.weight, 1);
        assert!(parse_tenant_spec("gold:0").is_err());
        assert!(parse_tenant_spec("gold:x").is_err());
        assert!(parse_tenant_spec("").is_err());
        assert!(TenantConfig {
            weight: 1,
            max_queued: Some(0),
            max_concurrent: None
        }
        .validate("t")
        .is_err());
    }
}
