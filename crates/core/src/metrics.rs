//! Cluster-wide metrics registry: counters, gauges, and histograms.
//!
//! The registry is the engine's *self-monitoring* surface: where a
//! [`crate::profile::QueryProfile`] explains one query, the registry
//! aggregates across all queries and the fabric — dispatcher queue depth,
//! admission wait, active queries, scheduler barrier rounds, per-link
//! bytes. Instruments are cheap lock-free atomics handed out as `Arc`s;
//! the registry itself is only locked to create or enumerate them.
//!
//! [`Session::metrics`](crate::session::Session::metrics) snapshots the
//! registry into a plain-data [`MetricsSnapshot`] that the CLI prints and
//! tests assert on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous level that can move both ways (queue depths, active
/// queries).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

/// Log₂-bucketed histogram of non-negative integer observations
/// (microsecond latencies, byte sizes).
///
/// Observation `v` lands in bucket `bits(v)` — the number of significant
/// bits — so bucket `i > 0` covers `[2^(i−1), 2^i)`. Quantiles are
/// approximated by each bucket's upper bound, biasing *up* (pessimistic):
/// good enough for spotting regressions without storing samples.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Log₂ bucket counts (`buckets[i]` covers `[2^(i−1), 2^i)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the q-th observation (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Named-instrument registry shared across the cluster.
///
/// Instruments are created on first use and live for the registry's
/// lifetime; handing out `Arc`s keeps the hot paths (a counter increment
/// in the dispatcher) free of any map lookup.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(self.histograms.lock().entry(name.to_string()).or_default())
    }

    /// Consistent-enough point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time view of the cluster's metrics, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Append a derived counter (fabric/scheduler values merged in by the
    /// cluster at snapshot time), keeping name order.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        let pos = self.counters.partition_point(|(n, _)| n.as_str() < name);
        self.counters.insert(pos, (name.to_string(), value));
    }

    /// Human-readable rendering, one instrument per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name:<40} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{name:<40} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<40} count={} mean={:.1} p50={} p99={} max={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("queries.submitted");
        c.inc();
        c.add(4);
        // Same name returns the same instrument.
        assert_eq!(reg.counter("queries.submitted").get(), 5);
        let g = reg.gauge("dispatcher.queue_depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.max, 1000);
        assert_eq!(s.quantile(0.0), 0);
        // p50 of 7 obs is the 4th (value 2) → bucket [2,4) upper bound 3.
        assert_eq!(s.quantile(0.5), 3);
        // p100 is capped at the true max, not the bucket bound.
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.mean() > 158.0 && s.mean() < 159.0);
    }

    #[test]
    fn snapshot_renders_and_merges_derived() {
        let reg = MetricsRegistry::new();
        reg.counter("queries.completed").add(3);
        reg.gauge("queries.active").set(1);
        reg.histogram("admission.wait_us").observe(17);
        let mut snap = reg.snapshot();
        snap.push_counter("net.scheduler.rounds", 9);
        snap.push_counter("aaa.first", 1);
        assert_eq!(snap.counter("queries.completed"), Some(3));
        assert_eq!(snap.counter("net.scheduler.rounds"), Some(9));
        // Insertion keeps sorted order.
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.gauge("queries.active"), Some(1));
        let rendered = snap.render();
        assert!(rendered.contains("queries.completed"));
        assert!(rendered.contains("admission.wait_us"));
        assert!(rendered.contains("p99="));
    }
}
