//! Logical query plans — the programmable front-end of the engine.
//!
//! A [`LogicalPlan`] describes *what* a query computes, with no mention of
//! servers, exchange operators, or aggregation phases. The distributed
//! [`planner`](crate::planner) lowers it to a physical
//! [`Plan`](crate::plan::Plan): it places
//! exchanges at partitioning boundaries, chooses broadcast vs
//! hash-repartition joins from cardinality estimates, and inserts the
//! Figure 6(c) pre-aggregation split automatically. Where the paper relies
//! on HyPer's optimizer to produce its distributed plans, this module plus
//! the planner play that role for our reproduction.
//!
//! Plans are built fluently and combine with the [`Expr`] helpers:
//!
//! ```
//! use hsqp_engine::logical::LogicalPlan;
//! use hsqp_engine::expr::{col, lit};
//! use hsqp_engine::plan::{AggFunc, AggSpec, SortKey};
//! use hsqp_tpch::TpchTable;
//!
//! let plan = LogicalPlan::scan(TpchTable::Lineitem)
//!     .filter(col("l_quantity").lt(lit(24)))
//!     .aggregate(
//!         &["l_returnflag"],
//!         vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
//!     )
//!     .sort(vec![SortKey::asc("l_returnflag")]);
//! ```
//!
//! [`Expr`]: crate::expr::Expr

use hsqp_tpch::TpchTable;

use crate::expr::{col, Expr};
use crate::plan::{AggSpec, JoinKind, MapExpr, SortKey};

/// How the planner should distribute a join's build (right) side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Let the planner decide from cardinality estimates (§3.2's
    /// broadcast-small-inputs vs partition-both-sides choice).
    #[default]
    Auto,
    /// Force a broadcast of the build side to every node.
    Broadcast,
    /// Force hash-repartitioning both sides on the join keys.
    Repartition,
}

/// A logical relational operator tree.
///
/// Constructed with the fluent builder methods below; consumed by
/// [`Planner::plan`](crate::planner::Planner::plan). Unlike the physical
/// [`Plan`](crate::plan::Plan), a logical plan contains no
/// [`Exchange`](crate::plan::Plan::Exchange) operators and no aggregation
/// phases — distribution is entirely the planner's concern.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base relation. Column pruning and filter pushdown happen in
    /// the planner.
    Scan {
        /// Relation to scan.
        table: TpchTable,
    },
    /// Scan a named shared subplan registered on the enclosing
    /// [`LogicalQuery`] via [`with`](LogicalQuery::with). The subplan is
    /// planned and materialized once; every `CteScan` of the same name
    /// reads the materialized result.
    CteScan {
        /// Name the subplan was registered under.
        name: String,
    },
    /// Keep rows where `predicate` evaluates to true.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input's columns.
        predicate: Expr,
    },
    /// Compute a full projection list (renames, arithmetic, CASE, …).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns, replacing the input schema.
        outputs: Vec<MapExpr>,
    },
    /// Equi-join; `left` is the probe (streaming) side, `right` the build
    /// side that is materialized (and possibly broadcast).
    Join {
        /// Probe side.
        left: Box<LogicalPlan>,
        /// Build side.
        right: Box<LogicalPlan>,
        /// Probe-side key columns.
        left_keys: Vec<String>,
        /// Build-side key columns (positionally equated with `left_keys`).
        right_keys: Vec<String>,
        /// Join semantics.
        kind: JoinKind,
        /// Distribution hint for the planner.
        strategy: JoinStrategy,
    },
    /// Group-by aggregation (hash-based). The planner decides between a
    /// node-local aggregate, a raw reshuffle, or the Figure 6(c)
    /// pre-aggregation split.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column names (empty = global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Totally ordered output (the planner gathers before sorting).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `n` rows (top-k when applied to a sort).
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
}

impl LogicalPlan {
    /// Scan all columns of `table` (unused columns are pruned by the
    /// planner).
    pub fn scan(table: TpchTable) -> LogicalPlan {
        LogicalPlan::Scan { table }
    }

    /// Scan the shared subplan registered as `name` on the enclosing
    /// [`LogicalQuery`] (CTE-style reuse: the subplan is planned and
    /// materialized once, however many times it is scanned).
    pub fn from_cte(name: &str) -> LogicalPlan {
        LogicalPlan::CteScan {
            name: name.to_string(),
        }
    }

    /// Keep rows satisfying `predicate`. Filters directly above a scan are
    /// pushed into the scan by the planner.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Replace the schema with a computed projection list.
    pub fn select(self, outputs: Vec<MapExpr>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            outputs,
        }
    }

    /// Keep (and reorder to) the named columns — shorthand for a
    /// [`select`](Self::select) of plain column references.
    pub fn project(self, columns: &[&str]) -> LogicalPlan {
        self.select(columns.iter().map(|c| MapExpr::new(c, col(c))).collect())
    }

    /// Join `self` (probe side) with `build`, equating `left_keys[i]` with
    /// `right_keys[i]`. The planner picks broadcast vs repartition.
    pub fn join(
        self,
        build: LogicalPlan,
        left_keys: &[&str],
        right_keys: &[&str],
        kind: JoinKind,
    ) -> LogicalPlan {
        self.join_with(build, left_keys, right_keys, kind, JoinStrategy::Auto)
    }

    /// [`join`](Self::join) with an explicit distribution strategy.
    pub fn join_with(
        self,
        build: LogicalPlan,
        left_keys: &[&str],
        right_keys: &[&str],
        kind: JoinKind,
        strategy: JoinStrategy,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(build),
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            kind,
            strategy,
        }
    }

    /// Group by `group_by` and compute `aggs` (global aggregate when
    /// `group_by` is empty).
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
        }
    }

    /// Totally order the result by `keys`.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Keep the first `n` rows. Applied directly to a [`sort`](Self::sort)
    /// this lowers to a single top-k operator.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Sort by `keys` and keep the first `n` rows (top-k).
    pub fn top_k(self, keys: Vec<SortKey>, n: usize) -> LogicalPlan {
        self.sort(keys).limit(n)
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::CteScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Number of operators in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// The largest [`Expr::Param`] index referenced anywhere in the tree,
    /// if any. The planner rejects stages referencing parameters that no
    /// earlier stage binds.
    pub fn max_param(&self) -> Option<usize> {
        let own = match self {
            LogicalPlan::Filter { predicate, .. } => predicate.max_param(),
            LogicalPlan::Project { outputs, .. } => {
                outputs.iter().filter_map(|o| o.expr.max_param()).max()
            }
            LogicalPlan::Aggregate { aggs, .. } => {
                aggs.iter().filter_map(|a| a.expr.max_param()).max()
            }
            _ => None,
        };
        self.children()
            .iter()
            .filter_map(|c| c.max_param())
            .chain(own)
            .max()
    }
}

/// A multi-stage query: the unit the [`Planner`](crate::planner::Planner)
/// lowers and a [`Session`](crate::session::Session) runs.
///
/// A `LogicalQuery` composes three kinds of parts, mirroring how HyPer-style
/// unnesting decorrelates subqueries into earlier plan *stages* (the shape
/// of the paper's Figure 6 plans):
///
/// * **Named shared subplans** ([`with`](Self::with)) — planned and
///   materialized once per query; every [`LogicalPlan::from_cte`] scan of
///   the same name reads the materialized result. The planner decides
///   whether the temp relation is broadcast (small) or left partitioned.
/// * **Scalar stages** ([`stage`](Self::stage) / [`then`](Self::then), all
///   but the last) — each runs to completion and binds its first result
///   row as [`Expr::Param`] values, numbered in
///   column order across stages, for every later stage.
/// * **The result stage** — the last stage; its output is the query result.
///
/// A plain [`LogicalPlan`] converts into a single-stage query via `From`,
/// so `Session::run` accepts both:
///
/// ```
/// use hsqp_engine::logical::{LogicalPlan, LogicalQuery};
/// use hsqp_engine::expr::{col, param};
/// use hsqp_engine::plan::{AggFunc, AggSpec};
/// use hsqp_tpch::TpchTable;
///
/// // "suppliers whose account balance beats the average" — the average is
/// // a scalar subquery, decorrelated into an earlier stage.
/// let average = LogicalPlan::scan(TpchTable::Supplier)
///     .aggregate(&[], vec![AggSpec::new(AggFunc::Avg, col("s_acctbal"), "avg_bal")]);
/// let winners = LogicalPlan::scan(TpchTable::Supplier)
///     .filter(col("s_acctbal").gt(param(0)));
/// let query = LogicalQuery::stage(average).then(winners);
/// assert_eq!(query.stages().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalQuery {
    ctes: Vec<(String, LogicalPlan)>,
    stages: Vec<LogicalPlan>,
}

impl LogicalQuery {
    /// Start a query with `plan` as its first stage. If further stages are
    /// added with [`then`](Self::then), this stage becomes a scalar
    /// parameter stage; otherwise it is the result stage.
    pub fn stage(plan: LogicalPlan) -> LogicalQuery {
        LogicalQuery {
            ctes: Vec::new(),
            stages: vec![plan],
        }
    }

    /// Start a query by registering the shared subplan `name` (see
    /// [`with`](Self::with)); add stages with [`then`](Self::then).
    pub fn cte(name: &str, plan: LogicalPlan) -> LogicalQuery {
        LogicalQuery {
            ctes: vec![(name.to_string(), plan)],
            stages: Vec::new(),
        }
    }

    /// Append a stage. All stages before the last are scalar parameter
    /// stages: stage `k`'s first result row extends the parameter list that
    /// [`Expr::Param`] indexes in later stages.
    pub fn then(mut self, plan: LogicalPlan) -> LogicalQuery {
        self.stages.push(plan);
        self
    }

    /// Register a named shared subplan. CTEs are materialized (in
    /// registration order, before any scalar stage runs) and may reference
    /// earlier CTEs, but not stage parameters. Scanned with
    /// [`LogicalPlan::from_cte`].
    pub fn with(mut self, name: &str, plan: LogicalPlan) -> LogicalQuery {
        self.ctes.push((name.to_string(), plan));
        self
    }

    /// Registered shared subplans, in registration (= materialization)
    /// order.
    pub fn ctes(&self) -> &[(String, LogicalPlan)] {
        &self.ctes
    }

    /// The stages in execution order; the last one produces the result.
    pub fn stages(&self) -> &[LogicalPlan] {
        &self.stages
    }
}

impl From<LogicalPlan> for LogicalQuery {
    fn from(plan: LogicalPlan) -> LogicalQuery {
        LogicalQuery::stage(plan)
    }
}

impl From<&LogicalPlan> for LogicalQuery {
    fn from(plan: &LogicalPlan) -> LogicalQuery {
        LogicalQuery::stage(plan.clone())
    }
}

impl From<&LogicalQuery> for LogicalQuery {
    fn from(query: &LogicalQuery) -> LogicalQuery {
        query.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::plan::AggFunc;

    #[test]
    fn builder_constructs_expected_tree() {
        let p = LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_quantity").lt(lit(24)))
            .aggregate(
                &["l_returnflag"],
                vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
            )
            .sort(vec![SortKey::asc("l_returnflag")])
            .limit(5);
        assert_eq!(p.node_count(), 5);
        match &p {
            LogicalPlan::Limit { n, input } => {
                assert_eq!(*n, 5);
                assert!(matches!(**input, LogicalPlan::Sort { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_keys_and_strategy_recorded() {
        let p = LogicalPlan::scan(TpchTable::Orders).join_with(
            LogicalPlan::scan(TpchTable::Customer),
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::LeftSemi,
            JoinStrategy::Broadcast,
        );
        match &p {
            LogicalPlan::Join {
                left_keys,
                right_keys,
                kind,
                strategy,
                ..
            } => {
                assert_eq!(left_keys, &["o_custkey"]);
                assert_eq!(right_keys, &["c_custkey"]);
                assert_eq!(*kind, JoinKind::LeftSemi);
                assert_eq!(*strategy, JoinStrategy::Broadcast);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.children().len(), 2);
    }

    #[test]
    fn project_shorthand_builds_column_refs() {
        let p = LogicalPlan::scan(TpchTable::Nation).project(&["n_name"]);
        match &p {
            LogicalPlan::Project { outputs, .. } => {
                assert_eq!(outputs.len(), 1);
                assert_eq!(outputs[0].name, "n_name");
            }
            other => panic!("{other:?}"),
        }
    }
}
