//! Logical query plans — the programmable front-end of the engine.
//!
//! A [`LogicalPlan`] describes *what* a query computes, with no mention of
//! servers, exchange operators, or aggregation phases. The distributed
//! [`planner`](crate::planner) lowers it to a physical
//! [`Plan`](crate::plan::Plan): it places
//! exchanges at partitioning boundaries, chooses broadcast vs
//! hash-repartition joins from cardinality estimates, and inserts the
//! Figure 6(c) pre-aggregation split automatically. Where the paper relies
//! on HyPer's optimizer to produce its distributed plans, this module plus
//! the planner play that role for our reproduction.
//!
//! Plans are built fluently and combine with the [`Expr`] helpers:
//!
//! ```
//! use hsqp_engine::logical::LogicalPlan;
//! use hsqp_engine::expr::{col, lit};
//! use hsqp_engine::plan::{AggFunc, AggSpec, SortKey};
//! use hsqp_tpch::TpchTable;
//!
//! let plan = LogicalPlan::scan(TpchTable::Lineitem)
//!     .filter(col("l_quantity").lt(lit(24)))
//!     .aggregate(
//!         &["l_returnflag"],
//!         vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
//!     )
//!     .sort(vec![SortKey::asc("l_returnflag")]);
//! ```
//!
//! [`Expr`]: crate::expr::Expr

use hsqp_tpch::TpchTable;

use crate::expr::{col, Expr};
use crate::plan::{AggSpec, JoinKind, MapExpr, SortKey};

/// How the planner should distribute a join's build (right) side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Let the planner decide from cardinality estimates (§3.2's
    /// broadcast-small-inputs vs partition-both-sides choice).
    #[default]
    Auto,
    /// Force a broadcast of the build side to every node.
    Broadcast,
    /// Force hash-repartitioning both sides on the join keys.
    Repartition,
}

/// A logical relational operator tree.
///
/// Constructed with the fluent builder methods below; consumed by
/// [`Planner::plan`](crate::planner::Planner::plan). Unlike the physical
/// [`Plan`](crate::plan::Plan), a logical plan contains no
/// [`Exchange`](crate::plan::Plan::Exchange) operators and no aggregation
/// phases — distribution is entirely the planner's concern.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base relation. Column pruning and filter pushdown happen in
    /// the planner.
    Scan {
        /// Relation to scan.
        table: TpchTable,
    },
    /// Keep rows where `predicate` evaluates to true.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input's columns.
        predicate: Expr,
    },
    /// Compute a full projection list (renames, arithmetic, CASE, …).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns, replacing the input schema.
        outputs: Vec<MapExpr>,
    },
    /// Equi-join; `left` is the probe (streaming) side, `right` the build
    /// side that is materialized (and possibly broadcast).
    Join {
        /// Probe side.
        left: Box<LogicalPlan>,
        /// Build side.
        right: Box<LogicalPlan>,
        /// Probe-side key columns.
        left_keys: Vec<String>,
        /// Build-side key columns (positionally equated with `left_keys`).
        right_keys: Vec<String>,
        /// Join semantics.
        kind: JoinKind,
        /// Distribution hint for the planner.
        strategy: JoinStrategy,
    },
    /// Group-by aggregation (hash-based). The planner decides between a
    /// node-local aggregate, a raw reshuffle, or the Figure 6(c)
    /// pre-aggregation split.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group-by column names (empty = global aggregate).
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Totally ordered output (the planner gathers before sorting).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `n` rows (top-k when applied to a sort).
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
}

impl LogicalPlan {
    /// Scan all columns of `table` (unused columns are pruned by the
    /// planner).
    pub fn scan(table: TpchTable) -> LogicalPlan {
        LogicalPlan::Scan { table }
    }

    /// Keep rows satisfying `predicate`. Filters directly above a scan are
    /// pushed into the scan by the planner.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Replace the schema with a computed projection list.
    pub fn select(self, outputs: Vec<MapExpr>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            outputs,
        }
    }

    /// Keep (and reorder to) the named columns — shorthand for a
    /// [`select`](Self::select) of plain column references.
    pub fn project(self, columns: &[&str]) -> LogicalPlan {
        self.select(columns.iter().map(|c| MapExpr::new(c, col(c))).collect())
    }

    /// Join `self` (probe side) with `build`, equating `left_keys[i]` with
    /// `right_keys[i]`. The planner picks broadcast vs repartition.
    pub fn join(
        self,
        build: LogicalPlan,
        left_keys: &[&str],
        right_keys: &[&str],
        kind: JoinKind,
    ) -> LogicalPlan {
        self.join_with(build, left_keys, right_keys, kind, JoinStrategy::Auto)
    }

    /// [`join`](Self::join) with an explicit distribution strategy.
    pub fn join_with(
        self,
        build: LogicalPlan,
        left_keys: &[&str],
        right_keys: &[&str],
        kind: JoinKind,
        strategy: JoinStrategy,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(build),
            left_keys: left_keys.iter().map(|s| s.to_string()).collect(),
            right_keys: right_keys.iter().map(|s| s.to_string()).collect(),
            kind,
            strategy,
        }
    }

    /// Group by `group_by` and compute `aggs` (global aggregate when
    /// `group_by` is empty).
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<AggSpec>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
        }
    }

    /// Totally order the result by `keys`.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Keep the first `n` rows. Applied directly to a [`sort`](Self::sort)
    /// this lowers to a single top-k operator.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Sort by `keys` and keep the first `n` rows (top-k).
    pub fn top_k(self, keys: Vec<SortKey>, n: usize) -> LogicalPlan {
        self.sort(keys).limit(n)
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Number of operators in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::plan::AggFunc;

    #[test]
    fn builder_constructs_expected_tree() {
        let p = LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_quantity").lt(lit(24)))
            .aggregate(
                &["l_returnflag"],
                vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
            )
            .sort(vec![SortKey::asc("l_returnflag")])
            .limit(5);
        assert_eq!(p.node_count(), 5);
        match &p {
            LogicalPlan::Limit { n, input } => {
                assert_eq!(*n, 5);
                assert!(matches!(**input, LogicalPlan::Sort { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_keys_and_strategy_recorded() {
        let p = LogicalPlan::scan(TpchTable::Orders).join_with(
            LogicalPlan::scan(TpchTable::Customer),
            &["o_custkey"],
            &["c_custkey"],
            JoinKind::LeftSemi,
            JoinStrategy::Broadcast,
        );
        match &p {
            LogicalPlan::Join {
                left_keys,
                right_keys,
                kind,
                strategy,
                ..
            } => {
                assert_eq!(left_keys, &["o_custkey"]);
                assert_eq!(right_keys, &["c_custkey"]);
                assert_eq!(*kind, JoinKind::LeftSemi);
                assert_eq!(*strategy, JoinStrategy::Broadcast);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p.children().len(), 2);
    }

    #[test]
    fn project_shorthand_builds_column_refs() {
        let p = LogicalPlan::scan(TpchTable::Nation).project(&["n_name"]);
        match &p {
            LogicalPlan::Project { outputs, .. } => {
                assert_eq!(outputs.len(), 1);
                assert_eq!(outputs[0].name, "n_name");
            }
            other => panic!("{other:?}"),
        }
    }
}
