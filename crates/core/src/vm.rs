//! Compiled expression programs: flat postfix instruction streams executed
//! by a small stack VM over column vectors.
//!
//! [`ExprProgram::compile`] lowers an [`Expr`] tree once, at plan time.
//! Kernels are selected from an op-dictionary keyed by operation × operand
//! types using the schema's *static* types (so execution never dispatches
//! on `DType` per batch, let alone per row), literal-only subtrees are
//! folded into constant instructions, `LIKE` patterns are pre-compiled,
//! and repeated subtrees are computed once (`tee` / `load_tmp`). Mixed
//! numeric operands get explicit `cast_f64` instructions; operands whose
//! type is only known at runtime (query parameters) compile to `*_dyn`
//! instructions that dispatch once per vector.
//!
//! Execution keeps scalars (constants, parameters) unmaterialized and
//! represents validity as a [`Bitmap`] alongside each value stack slot;
//! boolean results are always dense selection masks (the
//! [`EvalVec::into_mask`] convention: NULL never passes a predicate).
//!
//! The tree-walking evaluator in [`crate::expr`] remains the semantic
//! oracle: for every expression both engines must produce the same values,
//! the same validity, and panic on the same inputs. A cluster can be
//! switched back to it with
//! [`ExprEngine::Ast`](crate::cluster::ExprEngine).

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

use hsqp_storage::{
    decimal_to_f64, year_of_date, Bitmap, Column, DataType, Field, Schema, StringColumn, Table,
    Value,
};
use hsqp_tpch::TpchTable;

use crate::expr::{
    cmp_keeps, fold_const, ArithOp, CmpOp, EvalVec, Expr, FoldVal, LikeMatcher, VecData,
};
use crate::plan::{AggFunc, AggPhase, JoinKind, Plan};

/// Static type of a compiled (sub)expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmType {
    /// Integers, dates, extracted years.
    I64,
    /// Floats (decimal columns promote on load).
    F64,
    /// Strings.
    Str,
    /// Boolean masks.
    Bool,
    /// Unknown until runtime (query parameters).
    Unknown,
}

/// Why an expression cannot be compiled. The caller falls back to the AST
/// walker, which reports genuine type errors the same way it always has:
/// by panicking during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError(msg.into()))
}

/// The static type of `e` against `schema` — the single typing judgement
/// used for kernel selection, cast insertion, and schema inference.
pub(crate) fn static_type(e: &Expr, schema: &Schema) -> Result<VmType, CompileError> {
    use VmType::*;
    Ok(match e {
        Expr::Col(name) => {
            let f = schema
                .fields()
                .iter()
                .find(|f| f.name == *name)
                .ok_or_else(|| CompileError(format!("unknown column {name:?}")))?;
            match f.dtype {
                DataType::Int64 | DataType::Date => I64,
                DataType::Decimal | DataType::Float64 => F64,
                DataType::Utf8 => Str,
            }
        }
        Expr::LitI64(_) => I64,
        Expr::LitF64(_) => F64,
        Expr::LitStr(_) => Str,
        Expr::Param(_) => Unknown,
        Expr::Cmp(_, a, b) => {
            let (ta, tb) = (static_type(a, schema)?, static_type(b, schema)?);
            match (ta, tb) {
                (Bool, _) | (_, Bool) => {
                    return err(format!("comparison over boolean operand ({ta:?}, {tb:?})"))
                }
                (Str, I64 | F64) | (I64 | F64, Str) => {
                    return err("comparison between string and number")
                }
                _ => Bool,
            }
        }
        Expr::And(children) | Expr::Or(children) => {
            for c in children {
                if static_type(c, schema)? != Bool {
                    return err("AND/OR over a non-boolean child");
                }
            }
            Bool
        }
        Expr::Not(c) => {
            if static_type(c, schema)? != Bool {
                return err("NOT over a non-boolean child");
            }
            Bool
        }
        Expr::Arith(op, a, b) => {
            let (ta, tb) = (static_type(a, schema)?, static_type(b, schema)?);
            match (ta, tb) {
                (Str | Bool, _) | (_, Str | Bool) => {
                    return err(format!("arithmetic over ({ta:?}, {tb:?})"))
                }
                (Unknown, _) | (_, Unknown) => Unknown,
                (I64, I64) if *op != ArithOp::Div => I64,
                _ => F64,
            }
        }
        Expr::Like(c, _) | Expr::InStr(c, _) => match static_type(c, schema)? {
            Str | Unknown => Bool,
            other => return err(format!("string predicate over {other:?} input")),
        },
        Expr::InI64(c, _) => match static_type(c, schema)? {
            I64 | Unknown => Bool,
            other => return err(format!("integer IN over {other:?} input")),
        },
        Expr::Substr(c, start, _) => {
            if *start == 0 {
                return err("substring start must be 1-based");
            }
            match static_type(c, schema)? {
                Str | Unknown => Str,
                other => return err(format!("substring over {other:?} input")),
            }
        }
        Expr::ExtractYear(c) => match static_type(c, schema)? {
            I64 | Unknown => I64,
            other => return err(format!("extract(year) over {other:?} input")),
        },
        Expr::Case(cond, then, els) => {
            if static_type(cond, schema)? != Bool {
                return err("CASE condition is not boolean");
            }
            let (tt, te) = (static_type(then, schema)?, static_type(els, schema)?);
            match (tt, te) {
                (Str | Bool, _) | (_, Str | Bool) => {
                    return err(format!("CASE branches of types ({tt:?}, {te:?})"))
                }
                (Unknown, _) | (_, Unknown) => Unknown,
                (I64, I64) => I64,
                _ => F64,
            }
        }
        Expr::IsNull(c) => {
            static_type(c, schema)?;
            Bool
        }
    })
}

/// The storage type an [`EvalVec`] of this static type converts to
/// ([`EvalVec::into_column`]); `None` when unknown until runtime.
pub(crate) fn vm_to_dtype(t: VmType) -> Option<DataType> {
    match t {
        VmType::I64 | VmType::Bool => Some(DataType::Int64),
        VmType::F64 => Some(DataType::Float64),
        VmType::Str => Some(DataType::Utf8),
        VmType::Unknown => None,
    }
}

/// A column reference in a program's column table: resolved to a position
/// at bind time, with name / logical type / physical representation all
/// verified so a compiled kernel can never read the wrong data.
#[derive(Debug, Clone, PartialEq)]
struct ColRef {
    name: String,
    dtype: DataType,
}

/// One VM instruction. Postfix: operands are popped off the value stack,
/// one result is pushed (except `tee`, which peeks).
#[derive(Debug, Clone)]
enum Inst {
    /// Push an integer/date column slice.
    LoadI64(u16),
    /// Push a decimal column slice, promoted to `f64` (scale 100).
    LoadDec(u16),
    /// Push a float column slice.
    LoadF64(u16),
    /// Push a string column slice.
    LoadStr(u16),
    /// Push an integer constant (scalar; never materialized per row).
    ConstI64(i64),
    /// Push a float constant.
    ConstF64(f64),
    /// Push a string constant from the pool.
    ConstStr(u16),
    /// Push a boolean constant (a folded predicate subtree).
    ConstBool(bool),
    /// Push query parameter `i` (type resolved from its runtime [`Value`]).
    Param(u16),
    /// Convert the top of stack from `i64` to `f64`.
    CastF64,
    /// Typed comparisons → dense boolean mask.
    CmpI64(CmpOp),
    /// Float comparison (`NaN` compares false for every operator).
    CmpF64(CmpOp),
    /// Lexicographic string comparison.
    CmpStr(CmpOp),
    /// Comparison dispatching once per vector on runtime operand types.
    CmpDyn(CmpOp),
    /// Pop `n` masks, push their conjunction.
    AndN(u16),
    /// Pop `n` masks, push their disjunction.
    OrN(u16),
    /// Negate the top mask.
    Not,
    /// Integer arithmetic (never division).
    ArithI64(ArithOp),
    /// Float arithmetic.
    ArithF64(ArithOp),
    /// Arithmetic dispatching once per vector on runtime operand types.
    ArithDyn(ArithOp),
    /// Match against the pre-compiled pattern in the like pool.
    Like(u16),
    /// String membership against the list pool.
    InStr(u16),
    /// Integer membership against the list pool.
    InI64(u16),
    /// 1-based byte substring.
    Substr(u32, u32),
    /// `extract(year)` from a day number.
    Year,
    /// `CASE` over two integer branches (cond, then, else on the stack).
    CaseI64,
    /// `CASE` over two float branches.
    CaseF64,
    /// `CASE` dispatching once per vector on runtime branch types.
    CaseDyn,
    /// Push the NULL mask of the top value.
    IsNull,
    /// Copy the top of stack into temp slot `i` (shared subexpression).
    Tee(u16),
    /// Push a copy of temp slot `i`.
    LoadTmp(u16),
}

/// A compiled expression: a flat postfix program plus its constant pools.
#[derive(Debug, Clone)]
pub struct ExprProgram {
    insts: Vec<Inst>,
    cols: Vec<ColRef>,
    strs: Vec<Box<str>>,
    likes: Vec<(LikeMatcher, String)>,
    str_lists: Vec<Vec<String>>,
    i64_lists: Vec<Vec<i64>>,
    n_tmps: u16,
    out: VmType,
}

fn leaf(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Col(_) | Expr::LitI64(_) | Expr::LitF64(_) | Expr::LitStr(_) | Expr::Param(_)
    )
}

fn count_subtrees(e: &Expr, counts: &mut HashMap<String, u32>) {
    if leaf(e) {
        return;
    }
    *counts.entry(format!("{e:?}")).or_insert(0) += 1;
    match e {
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
            count_subtrees(a, counts);
            count_subtrees(b, counts);
        }
        Expr::And(cs) | Expr::Or(cs) => cs.iter().for_each(|c| count_subtrees(c, counts)),
        Expr::Not(c)
        | Expr::Like(c, _)
        | Expr::InStr(c, _)
        | Expr::InI64(c, _)
        | Expr::Substr(c, _, _)
        | Expr::ExtractYear(c)
        | Expr::IsNull(c) => count_subtrees(c, counts),
        Expr::Case(c, t, e2) => {
            count_subtrees(c, counts);
            count_subtrees(t, counts);
            count_subtrees(e2, counts);
        }
        _ => {}
    }
}

struct Compiler<'a> {
    schema: &'a Schema,
    prog: ExprProgram,
    counts: HashMap<String, u32>,
    done: HashMap<String, (u16, VmType)>,
}

impl Compiler<'_> {
    fn push(&mut self, i: Inst) {
        self.prog.insts.push(i);
    }

    fn intern_col(&mut self, name: &str, dtype: DataType) -> Result<u16, CompileError> {
        if let Some(i) = self.prog.cols.iter().position(|c| c.name == name) {
            return Ok(i as u16);
        }
        let i = self.prog.cols.len();
        if i > u16::MAX as usize {
            return err("too many columns");
        }
        self.prog.cols.push(ColRef {
            name: name.to_string(),
            dtype,
        });
        Ok(i as u16)
    }

    fn emit_const(&mut self, v: FoldVal) -> VmType {
        match v {
            FoldVal::I64(x) => {
                self.push(Inst::ConstI64(x));
                VmType::I64
            }
            FoldVal::F64(x) => {
                self.push(Inst::ConstF64(x));
                VmType::F64
            }
            FoldVal::Str(s) => {
                let i = self
                    .prog
                    .strs
                    .iter()
                    .position(|x| **x == *s)
                    .unwrap_or_else(|| {
                        self.prog.strs.push(s.clone().into_boxed_str());
                        self.prog.strs.len() - 1
                    });
                self.push(Inst::ConstStr(i as u16));
                VmType::Str
            }
            FoldVal::Bool(b) => {
                self.push(Inst::ConstBool(b));
                VmType::Bool
            }
        }
    }

    fn emit(&mut self, e: &Expr) -> Result<VmType, CompileError> {
        // The whole-expression type check ran up front, so `static_type`
        // cannot fail below; folding a literal-only subtree comes first.
        if let Some(v) = fold_const(e) {
            return Ok(self.emit_const(v));
        }
        let key = (!leaf(e)).then(|| format!("{e:?}"));
        if let Some(k) = &key {
            if let Some(&(tmp, ty)) = self.done.get(k) {
                self.push(Inst::LoadTmp(tmp));
                return Ok(ty);
            }
        }
        let ty = self.emit_node(e)?;
        if let Some(k) = key {
            if self.counts.get(&k).copied().unwrap_or(0) >= 2 && self.prog.n_tmps < u16::MAX {
                let tmp = self.prog.n_tmps;
                self.prog.n_tmps += 1;
                self.push(Inst::Tee(tmp));
                self.done.insert(k, (tmp, ty));
            }
        }
        Ok(ty)
    }

    /// Emit `e` and, when its static type is `I64` but `F64` is required,
    /// a cast instruction after it.
    fn emit_as_f64(&mut self, e: &Expr) -> Result<(), CompileError> {
        let t = self.emit(e)?;
        if t == VmType::I64 {
            self.push(Inst::CastF64);
        }
        Ok(())
    }

    fn emit_node(&mut self, e: &Expr) -> Result<VmType, CompileError> {
        use VmType::*;
        let s = self.schema;
        match e {
            Expr::Col(name) => {
                let f = s
                    .fields()
                    .iter()
                    .find(|f| f.name == *name)
                    .ok_or_else(|| CompileError(format!("unknown column {name:?}")))?
                    .clone();
                let c = self.intern_col(name, f.dtype)?;
                Ok(match f.dtype {
                    DataType::Int64 | DataType::Date => {
                        self.push(Inst::LoadI64(c));
                        I64
                    }
                    DataType::Decimal => {
                        self.push(Inst::LoadDec(c));
                        F64
                    }
                    DataType::Float64 => {
                        self.push(Inst::LoadF64(c));
                        F64
                    }
                    DataType::Utf8 => {
                        self.push(Inst::LoadStr(c));
                        Str
                    }
                })
            }
            // Literals fold before reaching here; keep them total anyway.
            Expr::LitI64(v) => Ok(self.emit_const(FoldVal::I64(*v))),
            Expr::LitF64(v) => Ok(self.emit_const(FoldVal::F64(*v))),
            Expr::LitStr(v) => Ok(self.emit_const(FoldVal::Str(v.clone()))),
            Expr::Param(i) => {
                let i = u16::try_from(*i).map_err(|_| CompileError("parameter index".into()))?;
                self.push(Inst::Param(i));
                Ok(Unknown)
            }
            Expr::Cmp(op, a, b) => {
                let (ta, tb) = (static_type(a, s)?, static_type(b, s)?);
                match (ta, tb) {
                    (I64, I64) => {
                        self.emit(a)?;
                        self.emit(b)?;
                        self.push(Inst::CmpI64(*op));
                    }
                    (Str, Str) => {
                        self.emit(a)?;
                        self.emit(b)?;
                        self.push(Inst::CmpStr(*op));
                    }
                    (Unknown, _) | (_, Unknown) => {
                        self.emit(a)?;
                        self.emit(b)?;
                        self.push(Inst::CmpDyn(*op));
                    }
                    _ => {
                        self.emit_as_f64(a)?;
                        self.emit_as_f64(b)?;
                        self.push(Inst::CmpF64(*op));
                    }
                }
                Ok(Bool)
            }
            Expr::And(children) | Expr::Or(children) => {
                let n = u16::try_from(children.len())
                    .map_err(|_| CompileError("conjunction width".into()))?;
                for c in children {
                    self.emit(c)?;
                }
                self.push(if matches!(e, Expr::And(_)) {
                    Inst::AndN(n)
                } else {
                    Inst::OrN(n)
                });
                Ok(Bool)
            }
            Expr::Not(c) => {
                self.emit(c)?;
                self.push(Inst::Not);
                Ok(Bool)
            }
            Expr::Arith(op, a, b) => {
                let (ta, tb) = (static_type(a, s)?, static_type(b, s)?);
                match (ta, tb) {
                    (Unknown, _) | (_, Unknown) => {
                        self.emit(a)?;
                        self.emit(b)?;
                        self.push(Inst::ArithDyn(*op));
                        Ok(Unknown)
                    }
                    (I64, I64) if *op != ArithOp::Div => {
                        self.emit(a)?;
                        self.emit(b)?;
                        self.push(Inst::ArithI64(*op));
                        Ok(I64)
                    }
                    _ => {
                        self.emit_as_f64(a)?;
                        self.emit_as_f64(b)?;
                        self.push(Inst::ArithF64(*op));
                        Ok(F64)
                    }
                }
            }
            Expr::Like(c, pattern) => {
                self.emit(c)?;
                let i = self.prog.likes.len();
                self.prog
                    .likes
                    .push((LikeMatcher::new(pattern), pattern.clone()));
                self.push(Inst::Like(i as u16));
                Ok(Bool)
            }
            Expr::InStr(c, options) => {
                self.emit(c)?;
                let i = self.prog.str_lists.len();
                self.prog.str_lists.push(options.clone());
                self.push(Inst::InStr(i as u16));
                Ok(Bool)
            }
            Expr::InI64(c, options) => {
                self.emit(c)?;
                let i = self.prog.i64_lists.len();
                self.prog.i64_lists.push(options.clone());
                self.push(Inst::InI64(i as u16));
                Ok(Bool)
            }
            Expr::Substr(c, start, len) => {
                self.emit(c)?;
                let (start, len) = (
                    u32::try_from(*start).map_err(|_| CompileError("substr start".into()))?,
                    u32::try_from(*len).map_err(|_| CompileError("substr length".into()))?,
                );
                self.push(Inst::Substr(start, len));
                Ok(Str)
            }
            Expr::ExtractYear(c) => {
                self.emit(c)?;
                self.push(Inst::Year);
                Ok(I64)
            }
            Expr::Case(cond, then, els) => {
                let (tt, te) = (static_type(then, s)?, static_type(els, s)?);
                self.emit(cond)?;
                match (tt, te) {
                    (Unknown, _) | (_, Unknown) => {
                        self.emit(then)?;
                        self.emit(els)?;
                        self.push(Inst::CaseDyn);
                        Ok(Unknown)
                    }
                    (I64, I64) => {
                        self.emit(then)?;
                        self.emit(els)?;
                        self.push(Inst::CaseI64);
                        Ok(I64)
                    }
                    _ => {
                        self.emit_as_f64(then)?;
                        self.emit_as_f64(els)?;
                        self.push(Inst::CaseF64);
                        Ok(F64)
                    }
                }
            }
            Expr::IsNull(c) => {
                self.emit(c)?;
                self.push(Inst::IsNull);
                Ok(Bool)
            }
        }
    }
}

impl ExprProgram {
    /// Compile `expr` against `schema`. Fails (rather than panicking) on
    /// unknown columns and on statically ill-typed expressions; callers
    /// fall back to the tree walker, which reports genuine type errors by
    /// panicking at execution time, exactly as before.
    pub fn compile(expr: &Expr, schema: &Schema) -> Result<ExprProgram, CompileError> {
        let out = static_type(expr, schema)?;
        let mut counts = HashMap::new();
        count_subtrees(expr, &mut counts);
        let mut c = Compiler {
            schema,
            prog: ExprProgram {
                insts: Vec::new(),
                cols: Vec::new(),
                strs: Vec::new(),
                likes: Vec::new(),
                str_lists: Vec::new(),
                i64_lists: Vec::new(),
                n_tmps: 0,
                out,
            },
            counts,
            done: HashMap::new(),
        };
        let emitted = c.emit(expr)?;
        debug_assert_eq!(emitted, out, "typing and emission disagree");
        Ok(c.prog)
    }

    /// The program's static result type.
    pub fn out_type(&self) -> VmType {
        self.out
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for an empty program (never produced by [`Self::compile`]).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// One-line shape summary, e.g. `7 insts, 2 cols, 1 tmp`.
    pub fn summary(&self) -> String {
        let mut s = format!("{} insts, {} cols", self.insts.len(), self.cols.len());
        if self.n_tmps > 0 {
            s.push_str(&format!(", {} tmp", self.n_tmps));
        }
        s
    }

    /// Human-readable disassembly, one instruction per line.
    pub fn listing(&self) -> Vec<String> {
        self.insts
            .iter()
            .enumerate()
            .map(|(pc, i)| format!("{pc:>3}  {}", self.fmt_inst(i)))
            .collect()
    }

    fn fmt_inst(&self, i: &Inst) -> String {
        let col = |c: &u16| self.cols[*c as usize].name.clone();
        match i {
            Inst::LoadI64(c) => format!("load_i64   {}", col(c)),
            Inst::LoadDec(c) => format!("load_dec   {} (as f64)", col(c)),
            Inst::LoadF64(c) => format!("load_f64   {}", col(c)),
            Inst::LoadStr(c) => format!("load_str   {}", col(c)),
            Inst::ConstI64(v) => format!("const_i64  {v}"),
            Inst::ConstF64(v) => format!("const_f64  {v}"),
            Inst::ConstStr(s) => format!("const_str  {:?}", &*self.strs[*s as usize]),
            Inst::ConstBool(b) => format!("const_bool {b}"),
            Inst::Param(p) => format!("param      ${p}"),
            Inst::CastF64 => "cast_f64".to_string(),
            Inst::CmpI64(op) => format!("cmp_i64    {op:?}"),
            Inst::CmpF64(op) => format!("cmp_f64    {op:?}"),
            Inst::CmpStr(op) => format!("cmp_str    {op:?}"),
            Inst::CmpDyn(op) => format!("cmp_dyn    {op:?}"),
            Inst::AndN(n) => format!("and        {n}"),
            Inst::OrN(n) => format!("or         {n}"),
            Inst::Not => "not".to_string(),
            Inst::ArithI64(op) => format!("arith_i64  {op:?}"),
            Inst::ArithF64(op) => format!("arith_f64  {op:?}"),
            Inst::ArithDyn(op) => format!("arith_dyn  {op:?}"),
            Inst::Like(l) => format!("like       {:?}", self.likes[*l as usize].1),
            Inst::InStr(l) => format!("in_str     {:?}", self.str_lists[*l as usize]),
            Inst::InI64(l) => format!("in_i64     {:?}", self.i64_lists[*l as usize]),
            Inst::Substr(s, l) => format!("substr     start={s} len={l}"),
            Inst::Year => "year".to_string(),
            Inst::CaseI64 => "case_i64".to_string(),
            Inst::CaseF64 => "case_f64".to_string(),
            Inst::CaseDyn => "case_dyn".to_string(),
            Inst::IsNull => "is_null".to_string(),
            Inst::Tee(t) => format!("tee        t{t}"),
            Inst::LoadTmp(t) => format!("load_tmp   t{t}"),
        }
    }

    /// Resolve the program's column references against a concrete table.
    /// Every referenced column must exist with the compiled logical type
    /// and the matching physical representation; any mismatch (static
    /// schema inference drifted from runtime truth) fails the bind and the
    /// caller falls back to the tree walker for this operator.
    pub fn bind<'p>(&'p self, table: &Table) -> Result<BoundProgram<'p>, CompileError> {
        let mut col_idx = Vec::with_capacity(self.cols.len());
        for c in &self.cols {
            let idx = table
                .schema()
                .fields()
                .iter()
                .position(|f| f.name == c.name)
                .ok_or_else(|| CompileError(format!("bind: no column {:?}", c.name)))?;
            let f = &table.schema().fields()[idx];
            if f.dtype != c.dtype {
                return err(format!(
                    "bind: column {:?} is {:?}, compiled for {:?}",
                    c.name, f.dtype, c.dtype
                ));
            }
            let physical_ok = matches!(
                (table.column(idx), f.dtype),
                (
                    Column::I64(..),
                    DataType::Int64 | DataType::Date | DataType::Decimal
                ) | (Column::F64(..), DataType::Float64)
                    | (Column::Str(..), DataType::Utf8)
            );
            if !physical_ok {
                return err(format!(
                    "bind: column {:?} has an unexpected physical representation",
                    c.name
                ));
            }
            col_idx.push(idx);
        }
        Ok(BoundProgram {
            prog: self,
            col_idx,
        })
    }
}

/// A program bound to a concrete table, ready to run over morsels.
#[derive(Debug, Clone)]
pub struct BoundProgram<'p> {
    prog: &'p ExprProgram,
    col_idx: Vec<usize>,
}

/// Values in a stack slot: column vectors or unmaterialized scalars.
#[derive(Debug, Clone)]
enum Vals {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str(StringColumn),
    Bool(Vec<bool>),
    ScalI64(i64),
    ScalF64(f64),
    ScalStr(Box<str>),
    ScalBool(bool),
}

/// Validity of a stack slot.
#[derive(Debug, Clone)]
enum Valid {
    /// Every row valid.
    All,
    /// Every row NULL (an unbound-to-a-row NULL parameter).
    Never,
    /// Per-row selection bitmap.
    Mask(Bitmap),
}

#[derive(Debug, Clone)]
struct Slot {
    vals: Vals,
    valid: Valid,
}

/// Typed per-row accessors: the dispatch happens once per vector when the
/// accessor is built, after which `get` is a branch the CPU predicts
/// perfectly (always the same arm).
enum I64s<'a> {
    V(&'a [i64]),
    S(i64),
}

impl I64s<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            I64s::V(v) => v[i],
            I64s::S(x) => *x,
        }
    }
}

enum F64s<'a> {
    V(&'a [f64]),
    Owned(Vec<f64>),
    S(f64),
}

impl F64s<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            F64s::V(v) => v[i],
            F64s::Owned(v) => v[i],
            F64s::S(x) => *x,
        }
    }
}

enum Strs<'a> {
    V(&'a StringColumn),
    S(&'a str),
}

impl Strs<'_> {
    #[inline]
    fn get(&self, i: usize) -> &str {
        match self {
            Strs::V(v) => v.get(i),
            Strs::S(s) => s,
        }
    }
}

enum Bools<'a> {
    V(&'a [bool]),
    S(bool),
}

impl Bools<'_> {
    #[inline]
    fn get(&self, i: usize) -> bool {
        match self {
            Bools::V(v) => v[i],
            Bools::S(b) => *b,
        }
    }
}

impl Slot {
    fn scal_bool(b: bool) -> Slot {
        Slot {
            vals: Vals::ScalBool(b),
            valid: Valid::All,
        }
    }

    fn dense_bool(mask: Vec<bool>) -> Slot {
        Slot {
            vals: Vals::Bool(mask),
            valid: Valid::All,
        }
    }

    #[inline]
    fn is_valid(&self, i: usize) -> bool {
        match &self.valid {
            Valid::All => true,
            Valid::Never => false,
            Valid::Mask(bm) => bm.get(i),
        }
    }

    fn all_valid(&self) -> bool {
        matches!(self.valid, Valid::All)
    }

    fn is_scalar(&self) -> bool {
        matches!(
            self.vals,
            Vals::ScalI64(_) | Vals::ScalF64(_) | Vals::ScalStr(_) | Vals::ScalBool(_)
        )
    }

    fn is_i64_kind(&self) -> bool {
        matches!(self.vals, Vals::I64(_) | Vals::ScalI64(_))
    }

    fn is_str_kind(&self) -> bool {
        matches!(self.vals, Vals::Str(_) | Vals::ScalStr(_))
    }

    fn kind_name(&self) -> &'static str {
        match self.vals {
            Vals::I64(_) | Vals::ScalI64(_) => "integer",
            Vals::F64(_) | Vals::ScalF64(_) => "float",
            Vals::Str(_) | Vals::ScalStr(_) => "string",
            Vals::Bool(_) | Vals::ScalBool(_) => "boolean",
        }
    }

    fn i64s(&self) -> Option<I64s<'_>> {
        match &self.vals {
            Vals::I64(v) => Some(I64s::V(v)),
            Vals::ScalI64(x) => Some(I64s::S(*x)),
            _ => None,
        }
    }

    fn f64s(&self) -> F64s<'_> {
        match &self.vals {
            Vals::F64(v) => F64s::V(v),
            Vals::ScalF64(x) => F64s::S(*x),
            Vals::I64(v) => F64s::Owned(v.iter().map(|&x| x as f64).collect()),
            Vals::ScalI64(x) => F64s::S(*x as f64),
            _ => panic!(
                "expected numeric expression, got {} values",
                self.kind_name()
            ),
        }
    }

    fn strs(&self) -> Strs<'_> {
        match &self.vals {
            Vals::Str(v) => Strs::V(v),
            Vals::ScalStr(s) => Strs::S(s),
            _ => panic!(
                "expected string expression, got {} values",
                self.kind_name()
            ),
        }
    }

    fn bools(&self) -> Bools<'_> {
        match &self.vals {
            Vals::Bool(v) => Bools::V(v),
            Vals::ScalBool(b) => Bools::S(*b),
            _ => panic!(
                "expected boolean expression, got {} values",
                self.kind_name()
            ),
        }
    }

    /// Materialize into the tree walker's result representation.
    fn finish(self, n: usize) -> EvalVec {
        let validity = match self.valid {
            Valid::All => None,
            Valid::Never => Some(Bitmap::filled(n, false)),
            Valid::Mask(bm) => Some(bm),
        };
        let data = match self.vals {
            Vals::I64(v) => VecData::I64(v),
            Vals::F64(v) => VecData::F64(v),
            Vals::Str(v) => VecData::Str(v),
            Vals::Bool(v) => VecData::Bool(v),
            Vals::ScalI64(x) => VecData::I64(vec![x; n]),
            Vals::ScalF64(x) => VecData::F64(vec![x; n]),
            Vals::ScalStr(s) => {
                let mut c = StringColumn::with_capacity(n, s.len());
                for _ in 0..n {
                    c.push(&s);
                }
                VecData::Str(c)
            }
            Vals::ScalBool(b) => VecData::Bool(vec![b; n]),
        };
        EvalVec { data, validity }
    }
}

fn load_valid(col: &Column, range: &Range<usize>) -> Valid {
    match col.validity() {
        None => Valid::All,
        Some(bm) => Valid::Mask(range.clone().map(|i| bm.get(i)).collect()),
    }
}

/// Fold both operands' validity into a freshly computed comparison mask
/// (NULL comparisons are never true).
fn mask_valid(mask: &mut [bool], a: &Slot, b: &Slot) {
    if a.all_valid() && b.all_valid() {
        return;
    }
    for (i, m) in mask.iter_mut().enumerate() {
        *m = *m && a.is_valid(i) && b.is_valid(i);
    }
}

fn cmp_i64(op: CmpOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    let msg = || panic!("integer comparison over non-integer values");
    let (x, y) = (a.i64s().unwrap_or_else(msg), b.i64s().unwrap_or_else(msg));
    if a.is_scalar() && b.is_scalar() {
        let ok = cmp_keeps(op, x.get(0).cmp(&y.get(0))) && a.all_valid() && b.all_valid();
        return Slot::scal_bool(ok);
    }
    let mut mask: Vec<bool> = (0..n)
        .map(|i| cmp_keeps(op, x.get(i).cmp(&y.get(i))))
        .collect();
    mask_valid(&mut mask, a, b);
    Slot::dense_bool(mask)
}

fn cmp_f64(op: CmpOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    let (x, y) = (a.f64s(), b.f64s());
    if a.is_scalar() && b.is_scalar() {
        let ok = x
            .get(0)
            .partial_cmp(&y.get(0))
            .is_some_and(|o| cmp_keeps(op, o))
            && a.all_valid()
            && b.all_valid();
        return Slot::scal_bool(ok);
    }
    let mut mask: Vec<bool> = (0..n)
        .map(|i| {
            x.get(i)
                .partial_cmp(&y.get(i))
                .is_some_and(|o| cmp_keeps(op, o))
        })
        .collect();
    mask_valid(&mut mask, a, b);
    Slot::dense_bool(mask)
}

fn cmp_str(op: CmpOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    let (x, y) = (a.strs(), b.strs());
    if a.is_scalar() && b.is_scalar() {
        let ok = cmp_keeps(op, x.get(0).cmp(y.get(0))) && a.all_valid() && b.all_valid();
        return Slot::scal_bool(ok);
    }
    let mut mask: Vec<bool> = (0..n)
        .map(|i| cmp_keeps(op, x.get(i).cmp(y.get(i))))
        .collect();
    mask_valid(&mut mask, a, b);
    Slot::dense_bool(mask)
}

/// Runtime type dispatch for parameter-typed operands — once per vector,
/// mirroring the tree walker's `eval_cmp` exactly.
fn cmp_dyn(op: CmpOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    if a.is_i64_kind() && b.is_i64_kind() {
        cmp_i64(op, a, b, n)
    } else if a.is_str_kind() && b.is_str_kind() {
        cmp_str(op, a, b, n)
    } else {
        cmp_f64(op, a, b, n)
    }
}

fn merge_valid(a: &Slot, b: &Slot, n: usize) -> Valid {
    match (&a.valid, &b.valid) {
        (Valid::All, Valid::All) => Valid::All,
        (Valid::Never, _) | (_, Valid::Never) => Valid::Never,
        _ => Valid::Mask((0..n).map(|i| a.is_valid(i) && b.is_valid(i)).collect()),
    }
}

fn arith_i64(op: ArithOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    let msg = || panic!("integer arithmetic over non-integer values");
    let (x, y) = (a.i64s().unwrap_or_else(msg), b.i64s().unwrap_or_else(msg));
    // Plain operators on purpose: the tree walker panics on overflow in
    // debug builds and wraps in release, and the VM must do the same.
    let f = |x: i64, y: i64| match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => unreachable!("integer division compiles to float"),
    };
    if a.is_scalar() && b.is_scalar() {
        return Slot {
            vals: Vals::ScalI64(f(x.get(0), y.get(0))),
            valid: merge_valid(a, b, n),
        };
    }
    Slot {
        vals: Vals::I64((0..n).map(|i| f(x.get(i), y.get(i))).collect()),
        valid: merge_valid(a, b, n),
    }
}

fn arith_f64(op: ArithOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    let (x, y) = (a.f64s(), b.f64s());
    let f = |x: f64, y: f64| match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y,
    };
    if a.is_scalar() && b.is_scalar() {
        return Slot {
            vals: Vals::ScalF64(f(x.get(0), y.get(0))),
            valid: merge_valid(a, b, n),
        };
    }
    Slot {
        vals: Vals::F64((0..n).map(|i| f(x.get(i), y.get(i))).collect()),
        valid: merge_valid(a, b, n),
    }
}

fn arith_dyn(op: ArithOp, a: &Slot, b: &Slot, n: usize) -> Slot {
    if a.is_i64_kind() && b.is_i64_kind() && op != ArithOp::Div {
        arith_i64(op, a, b, n)
    } else {
        arith_f64(op, a, b, n)
    }
}

fn and_or(children: &[Slot], n: usize, is_and: bool) -> Slot {
    let masks: Vec<Bools<'_>> = children.iter().map(Slot::bools).collect();
    if children.iter().all(Slot::is_scalar) {
        let v = if is_and {
            masks.iter().all(|m| m.get(0))
        } else {
            masks.iter().any(|m| m.get(0))
        };
        return Slot::scal_bool(v);
    }
    let mut acc = vec![is_and; n];
    for m in &masks {
        if is_and {
            for (i, a) in acc.iter_mut().enumerate() {
                *a = *a && m.get(i);
            }
        } else {
            for (i, a) in acc.iter_mut().enumerate() {
                *a = *a || m.get(i);
            }
        }
    }
    Slot::dense_bool(acc)
}

fn substr_of(s: &str, start: u32, len: u32) -> &str {
    let from = (start as usize - 1).min(s.len());
    let to = (from + len as usize).min(s.len());
    s.get(from..to).unwrap_or("")
}

fn case_i64(cond: &Slot, t: Slot, e: Slot, n: usize) -> Slot {
    match &cond.vals {
        Vals::ScalBool(b) => {
            if *b {
                t
            } else {
                e
            }
        }
        Vals::Bool(mask) => {
            let msg = || panic!("integer CASE over non-integer branches");
            let (tx, ex) = (t.i64s().unwrap_or_else(msg), e.i64s().unwrap_or_else(msg));
            let vals = Vals::I64(
                (0..n)
                    .map(|i| if mask[i] { tx.get(i) } else { ex.get(i) })
                    .collect(),
            );
            let valid = if t.all_valid() && e.all_valid() {
                Valid::All
            } else {
                Valid::Mask(
                    (0..n)
                        .map(|i| {
                            if mask[i] {
                                t.is_valid(i)
                            } else {
                                e.is_valid(i)
                            }
                        })
                        .collect(),
                )
            };
            Slot { vals, valid }
        }
        _ => panic!(
            "expected boolean expression, got {} values",
            cond.kind_name()
        ),
    }
}

fn case_f64(cond: &Slot, t: Slot, e: Slot, n: usize) -> Slot {
    match &cond.vals {
        Vals::ScalBool(b) => {
            if *b {
                t
            } else {
                e
            }
        }
        Vals::Bool(mask) => {
            let (tx, ex) = (t.f64s(), e.f64s());
            let vals = Vals::F64(
                (0..n)
                    .map(|i| if mask[i] { tx.get(i) } else { ex.get(i) })
                    .collect(),
            );
            let valid = if t.all_valid() && e.all_valid() {
                Valid::All
            } else {
                Valid::Mask(
                    (0..n)
                        .map(|i| {
                            if mask[i] {
                                t.is_valid(i)
                            } else {
                                e.is_valid(i)
                            }
                        })
                        .collect(),
                )
            };
            Slot { vals, valid }
        }
        _ => panic!(
            "expected boolean expression, got {} values",
            cond.kind_name()
        ),
    }
}

fn case_dyn(cond: &Slot, t: Slot, e: Slot, n: usize) -> Slot {
    if t.is_i64_kind() && e.is_i64_kind() {
        case_i64(cond, t, e, n)
    } else {
        case_f64(cond, t, e, n)
    }
}

impl BoundProgram<'_> {
    /// Evaluate over rows `range` of the bound table's shape, exactly like
    /// [`crate::expr::eval`]: same values, same validity, same panics.
    pub fn eval(&self, table: &Table, range: Range<usize>, params: &[Value]) -> EvalVec {
        let n = range.len();
        self.run(table, range, params).finish(n)
    }

    /// Evaluate a predicate program to a selection mask: NULL never
    /// passes, matching [`EvalVec::into_mask`].
    ///
    /// # Panics
    /// Panics if the program does not produce booleans.
    pub fn eval_mask(&self, table: &Table, range: Range<usize>, params: &[Value]) -> Vec<bool> {
        let n = range.len();
        let slot = self.run(table, range, params);
        match slot.vals {
            // Boolean slots are dense by construction; fold defensively.
            Vals::Bool(mut v) => {
                if !matches!(slot.valid, Valid::All) {
                    for (i, x) in v.iter_mut().enumerate() {
                        let ok = match &slot.valid {
                            Valid::All => true,
                            Valid::Never => false,
                            Valid::Mask(bm) => bm.get(i),
                        };
                        *x = *x && ok;
                    }
                }
                v
            }
            Vals::ScalBool(b) => vec![b && matches!(slot.valid, Valid::All); n],
            _ => panic!(
                "expected boolean expression, got {} values",
                Slot {
                    vals: slot.vals,
                    valid: Valid::All
                }
                .kind_name()
            ),
        }
    }

    fn run(&self, table: &Table, range: Range<usize>, params: &[Value]) -> Slot {
        let n = range.len();
        let p = self.prog;
        let mut stack: Vec<Slot> = Vec::with_capacity(8);
        let mut tmps: Vec<Option<Slot>> = vec![None; p.n_tmps as usize];
        let pop2 = |stack: &mut Vec<Slot>| {
            let b = stack.pop().expect("program stack underflow");
            let a = stack.pop().expect("program stack underflow");
            (a, b)
        };
        for inst in &p.insts {
            match inst {
                Inst::LoadI64(c) => {
                    let col = table.column(self.col_idx[*c as usize]);
                    let Column::I64(v, _) = col else {
                        panic!("load_i64 on a non-integer column")
                    };
                    stack.push(Slot {
                        vals: Vals::I64(v[range.clone()].to_vec()),
                        valid: load_valid(col, &range),
                    });
                }
                Inst::LoadDec(c) => {
                    let col = table.column(self.col_idx[*c as usize]);
                    let Column::I64(v, _) = col else {
                        panic!("load_dec on a non-decimal column")
                    };
                    stack.push(Slot {
                        vals: Vals::F64(
                            v[range.clone()]
                                .iter()
                                .map(|&x| decimal_to_f64(x))
                                .collect(),
                        ),
                        valid: load_valid(col, &range),
                    });
                }
                Inst::LoadF64(c) => {
                    let col = table.column(self.col_idx[*c as usize]);
                    let Column::F64(v, _) = col else {
                        panic!("load_f64 on a non-float column")
                    };
                    stack.push(Slot {
                        vals: Vals::F64(v[range.clone()].to_vec()),
                        valid: load_valid(col, &range),
                    });
                }
                Inst::LoadStr(c) => {
                    let col = table.column(self.col_idx[*c as usize]);
                    let Column::Str(v, _) = col else {
                        panic!("load_str on a non-string column")
                    };
                    let mut out = StringColumn::with_capacity(n, 16);
                    for i in range.clone() {
                        out.push(v.get(i));
                    }
                    stack.push(Slot {
                        vals: Vals::Str(out),
                        valid: load_valid(col, &range),
                    });
                }
                Inst::ConstI64(v) => stack.push(Slot {
                    vals: Vals::ScalI64(*v),
                    valid: Valid::All,
                }),
                Inst::ConstF64(v) => stack.push(Slot {
                    vals: Vals::ScalF64(*v),
                    valid: Valid::All,
                }),
                Inst::ConstStr(s) => stack.push(Slot {
                    vals: Vals::ScalStr(p.strs[*s as usize].clone()),
                    valid: Valid::All,
                }),
                Inst::ConstBool(b) => stack.push(Slot::scal_bool(*b)),
                Inst::Param(i) => {
                    let i = *i as usize;
                    let v = params
                        .get(i)
                        .unwrap_or_else(|| panic!("parameter {i} not bound"));
                    stack.push(match v {
                        Value::I64(x) => Slot {
                            vals: Vals::ScalI64(*x),
                            valid: Valid::All,
                        },
                        Value::F64(x) => Slot {
                            vals: Vals::ScalF64(*x),
                            valid: Valid::All,
                        },
                        Value::Str(s) => Slot {
                            vals: Vals::ScalStr(s.as_str().into()),
                            valid: Valid::All,
                        },
                        // The tree walker represents a NULL parameter as
                        // integer zeros with an all-false validity.
                        Value::Null => Slot {
                            vals: Vals::ScalI64(0),
                            valid: Valid::Never,
                        },
                    });
                }
                Inst::CastF64 => {
                    let s = stack.pop().expect("program stack underflow");
                    let vals = match s.vals {
                        Vals::I64(v) => Vals::F64(v.into_iter().map(|x| x as f64).collect()),
                        Vals::ScalI64(x) => Vals::ScalF64(x as f64),
                        other => other,
                    };
                    stack.push(Slot {
                        vals,
                        valid: s.valid,
                    });
                }
                Inst::CmpI64(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(cmp_i64(*op, &a, &b, n));
                }
                Inst::CmpF64(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(cmp_f64(*op, &a, &b, n));
                }
                Inst::CmpStr(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(cmp_str(*op, &a, &b, n));
                }
                Inst::CmpDyn(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(cmp_dyn(*op, &a, &b, n));
                }
                Inst::AndN(k) | Inst::OrN(k) => {
                    let k = *k as usize;
                    assert!(stack.len() >= k, "program stack underflow");
                    let children = stack.split_off(stack.len() - k);
                    stack.push(and_or(&children, n, matches!(inst, Inst::AndN(_))));
                }
                Inst::Not => {
                    let s = stack.pop().expect("program stack underflow");
                    stack.push(match s.bools() {
                        Bools::S(b) => Slot::scal_bool(!b),
                        Bools::V(v) => Slot::dense_bool(v.iter().map(|b| !b).collect()),
                    });
                }
                Inst::ArithI64(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(arith_i64(*op, &a, &b, n));
                }
                Inst::ArithF64(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(arith_f64(*op, &a, &b, n));
                }
                Inst::ArithDyn(op) => {
                    let (a, b) = pop2(&mut stack);
                    stack.push(arith_dyn(*op, &a, &b, n));
                }
                Inst::Like(l) => {
                    let s = stack.pop().expect("program stack underflow");
                    let matcher = &p.likes[*l as usize].0;
                    stack.push(match s.strs() {
                        Strs::S(txt) => Slot::scal_bool(s.all_valid() && matcher.matches(txt)),
                        Strs::V(sc) => Slot::dense_bool(
                            (0..n)
                                .map(|i| s.is_valid(i) && matcher.matches(sc.get(i)))
                                .collect(),
                        ),
                    });
                }
                Inst::InStr(l) => {
                    let s = stack.pop().expect("program stack underflow");
                    let options = &p.str_lists[*l as usize];
                    stack.push(match s.strs() {
                        Strs::S(txt) => {
                            Slot::scal_bool(s.all_valid() && options.iter().any(|o| o == txt))
                        }
                        Strs::V(sc) => Slot::dense_bool(
                            (0..n)
                                .map(|i| s.is_valid(i) && options.iter().any(|o| o == sc.get(i)))
                                .collect(),
                        ),
                    });
                }
                Inst::InI64(l) => {
                    let s = stack.pop().expect("program stack underflow");
                    let options = &p.i64_lists[*l as usize];
                    let x = s.i64s().unwrap_or_else(|| {
                        panic!(
                            "IN over integers needs integer input, got {} values",
                            s.kind_name()
                        )
                    });
                    stack.push(match x {
                        I64s::S(v) => Slot::scal_bool(s.all_valid() && options.contains(&v)),
                        I64s::V(_) => Slot::dense_bool(
                            (0..n)
                                .map(|i| s.is_valid(i) && options.contains(&x.get(i)))
                                .collect(),
                        ),
                    });
                }
                Inst::Substr(start, len) => {
                    let s = stack.pop().expect("program stack underflow");
                    let vals = match &s.vals {
                        Vals::Str(sc) => {
                            let mut out = StringColumn::with_capacity(n, *len as usize);
                            for i in 0..n {
                                out.push(substr_of(sc.get(i), *start, *len));
                            }
                            Vals::Str(out)
                        }
                        Vals::ScalStr(x) => Vals::ScalStr(substr_of(x, *start, *len).into()),
                        _ => panic!("expected string expression, got {} values", s.kind_name()),
                    };
                    stack.push(Slot {
                        vals,
                        valid: s.valid,
                    });
                }
                Inst::Year => {
                    let s = stack.pop().expect("program stack underflow");
                    let vals = match &s.vals {
                        Vals::I64(v) => Vals::I64(v.iter().map(|&d| year_of_date(d)).collect()),
                        Vals::ScalI64(x) => Vals::ScalI64(year_of_date(*x)),
                        _ => panic!(
                            "extract(year) needs a date column, got {} values",
                            s.kind_name()
                        ),
                    };
                    stack.push(Slot {
                        vals,
                        valid: s.valid,
                    });
                }
                Inst::CaseI64 | Inst::CaseF64 | Inst::CaseDyn => {
                    let e = stack.pop().expect("program stack underflow");
                    let t = stack.pop().expect("program stack underflow");
                    let cond = stack.pop().expect("program stack underflow");
                    stack.push(match inst {
                        Inst::CaseI64 => case_i64(&cond, t, e, n),
                        Inst::CaseF64 => case_f64(&cond, t, e, n),
                        _ => case_dyn(&cond, t, e, n),
                    });
                }
                Inst::IsNull => {
                    let s = stack.pop().expect("program stack underflow");
                    stack.push(match &s.valid {
                        Valid::All => Slot::scal_bool(false),
                        Valid::Never => Slot::scal_bool(true),
                        Valid::Mask(bm) => Slot::dense_bool((0..n).map(|i| !bm.get(i)).collect()),
                    });
                }
                Inst::Tee(t) => {
                    let top = stack.last().expect("program stack underflow").clone();
                    tmps[*t as usize] = Some(top);
                }
                Inst::LoadTmp(t) => {
                    stack.push(
                        tmps[*t as usize]
                            .clone()
                            .expect("temp read before it was computed"),
                    );
                }
            }
        }
        debug_assert_eq!(stack.len(), 1, "program left a dirty stack");
        stack.pop().expect("program produced no value")
    }
}

// ---------------------------------------------------------------------------
// Stage compilation: walk a physical plan once at submit time, inferring
// static schemas bottom-up and compiling every expression site into an
// `ExprProgram`. Any operator whose schema cannot be inferred statically
// (or whose expression fails to compile) simply keeps no program — the
// executor falls back to the tree walker for that operator alone, and its
// descendants keep their programs.
// ---------------------------------------------------------------------------

/// Compiled programs for one operator, keyed by expression site.
#[derive(Debug, Clone, Default)]
pub struct OpPrograms {
    /// Scan pushed-down filter or `Filter` predicate.
    pub filter: Option<ExprProgram>,
    /// One slot per `Map` output, by position. `None` marks the bare
    /// column-copy fast path (which must not be compiled: it preserves
    /// `Decimal`/`Date` types that evaluation would widen) or a fallback.
    pub outputs: Vec<(String, Option<ExprProgram>)>,
    /// One slot per aggregate input, by position (non-`Final` phases; the
    /// `Final` merge reads partial-state columns directly).
    pub aggs: Vec<(String, Option<ExprProgram>)>,
}

impl OpPrograms {
    fn has_any(&self) -> bool {
        self.filter.is_some()
            || self.outputs.iter().any(|(_, p)| p.is_some())
            || self.aggs.iter().any(|(_, p)| p.is_some())
    }
}

/// All compiled programs of one distributed stage, keyed by the operator's
/// pre-order index — the same numbering [`crate::profile::plan_labels`]
/// and the executor's span cells use (first child = `idx + 1`, a join's
/// build subtree starts after the whole probe subtree).
#[derive(Debug, Clone, Default)]
pub struct CompiledStage {
    ops: HashMap<usize, OpPrograms>,
}

/// Schema lookup for base relations on this cluster (`None` while a table
/// is not loaded — compilation degrades to the tree walker).
pub type BaseSchemas<'a> = &'a dyn Fn(TpchTable) -> Option<Schema>;

impl CompiledStage {
    /// Programs for operator `idx`, if any of its expressions compiled.
    pub fn get(&self, idx: usize) -> Option<&OpPrograms> {
        self.ops.get(&idx)
    }

    /// True when no operator in the stage holds a compiled program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total number of compiled programs in the stage.
    pub fn program_count(&self) -> usize {
        self.programs_in_order().len()
    }

    /// `(operator index, site label, program)` triples in pre-order; the
    /// position in this list is the program's display id (`p0`, `p1`, …).
    fn programs_in_order(&self) -> Vec<(usize, String, &ExprProgram)> {
        let mut idxs: Vec<usize> = self.ops.keys().copied().collect();
        idxs.sort_unstable();
        let mut out = Vec::new();
        for i in idxs {
            let op = &self.ops[&i];
            if let Some(p) = &op.filter {
                out.push((i, "filter".to_string(), p));
            }
            for (name, p) in &op.outputs {
                if let Some(p) = p {
                    out.push((i, format!("map {name}"), p));
                }
            }
            for (name, p) in &op.aggs {
                if let Some(p) = p {
                    out.push((i, format!("agg {name}"), p));
                }
            }
        }
        out
    }

    /// The plan's `explain` rendering with compiled-program ids appended to
    /// each operator line (` (p0, p1)`), so profile rows, explain rows, and
    /// program listings all speak the same names.
    pub fn annotate(&self, plan: &Plan) -> String {
        let programs = self.programs_in_order();
        let mut out = String::new();
        for (idx, line) in plan.explain().lines().enumerate() {
            out.push_str(line);
            let ids: Vec<String> = programs
                .iter()
                .enumerate()
                .filter(|(_, (op, _, _))| *op == idx)
                .map(|(pid, _)| format!("p{pid}"))
                .collect();
            if !ids.is_empty() {
                out.push_str(&format!(" ({})", ids.join(", ")));
            }
            out.push('\n');
        }
        out
    }

    /// Full human-readable rendering for `--explain`: the annotated plan
    /// followed by each program's disassembly.
    pub fn render(&self, plan: &Plan) -> String {
        let mut out = self.annotate(plan);
        let labels: Vec<String> = plan
            .explain()
            .lines()
            .map(|l| l.trim_start().to_string())
            .collect();
        for (pid, (op, site, prog)) in self.programs_in_order().into_iter().enumerate() {
            out.push_str(&format!(
                "\np{pid} = {} {site} ({}):\n",
                labels.get(op).map(String::as_str).unwrap_or("?"),
                prog.summary()
            ));
            for line in prog.listing() {
                out.push_str("  ");
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// What evaluating a column of this declared type produces when it is
/// materialized back into a column ([`EvalVec::into_column`]): decimals
/// widen to floats, dates flatten to plain integers.
fn dtype_after_eval(dtype: DataType) -> DataType {
    match dtype {
        DataType::Int64 | DataType::Date => DataType::Int64,
        DataType::Decimal | DataType::Float64 => DataType::Float64,
        DataType::Utf8 => DataType::Utf8,
    }
}

struct StageCompiler<'a> {
    base: BaseSchemas<'a>,
    temps: &'a HashMap<String, Schema>,
    ops: HashMap<usize, OpPrograms>,
    next: usize,
}

impl StageCompiler<'_> {
    fn record(&mut self, idx: usize, programs: OpPrograms) {
        if programs.has_any() {
            self.ops.insert(idx, programs);
        }
    }

    fn project(schema: &Schema, cols: &Option<Vec<String>>) -> Option<Schema> {
        match cols {
            None => Some(schema.clone()),
            Some(names) => {
                let fields: Option<Vec<Field>> = names
                    .iter()
                    .map(|n| schema.fields().iter().find(|f| f.name == *n).cloned())
                    .collect();
                Some(Schema::new(fields?))
            }
        }
    }

    /// Walk `plan` in pre-order, compiling expression sites and returning
    /// the operator's statically inferred output schema (`None` stops
    /// inference for ancestors only).
    fn walk(&mut self, plan: &Plan) -> Option<Schema> {
        let idx = self.next;
        self.next += 1;
        match plan {
            Plan::Scan {
                table,
                filter,
                project,
            } => {
                let full = (self.base)(*table)?;
                // The pushed-down filter runs before projection, against
                // the full table schema.
                let compiled = filter
                    .as_ref()
                    .and_then(|f| ExprProgram::compile(f, &full).ok());
                self.record(
                    idx,
                    OpPrograms {
                        filter: compiled,
                        ..OpPrograms::default()
                    },
                );
                Self::project(&full, project)
            }
            Plan::TempScan { name, project } => {
                let schema = self.temps.get(name)?.clone();
                Self::project(&schema, project)
            }
            Plan::Filter { input, predicate } => {
                let schema = self.walk(input);
                if let Some(s) = &schema {
                    let compiled = ExprProgram::compile(predicate, s).ok();
                    self.record(
                        idx,
                        OpPrograms {
                            filter: compiled,
                            ..OpPrograms::default()
                        },
                    );
                }
                schema
            }
            Plan::Map { input, outputs } => {
                let s = self.walk(input)?;
                let mut programs = Vec::with_capacity(outputs.len());
                let mut fields: Option<Vec<Field>> = Some(Vec::with_capacity(outputs.len()));
                for o in outputs {
                    let bare = matches!(&o.expr, Expr::Col(_)) && o.dtype.is_none();
                    let prog = if bare {
                        None
                    } else {
                        ExprProgram::compile(&o.expr, &s).ok()
                    };
                    let dtype = o.dtype.or_else(|| match &o.expr {
                        Expr::Col(c) if o.dtype.is_none() => {
                            s.fields().iter().find(|f| f.name == *c).map(|f| f.dtype)
                        }
                        _ => static_type(&o.expr, &s).ok().and_then(vm_to_dtype),
                    });
                    // One untypable output poisons the schema, not the
                    // sibling programs.
                    match (dtype, &mut fields) {
                        (Some(dt), Some(fs)) => fs.push(Field::nullable(o.name.clone(), dt)),
                        _ => fields = None,
                    }
                    programs.push((o.name.clone(), prog));
                }
                self.record(
                    idx,
                    OpPrograms {
                        outputs: programs,
                        ..OpPrograms::default()
                    },
                );
                fields.map(Schema::new)
            }
            Plan::HashJoin {
                probe, build, kind, ..
            } => {
                let p = self.walk(probe);
                let b = self.walk(build);
                let (p, b) = (p?, b?);
                match kind {
                    JoinKind::LeftSemi | JoinKind::LeftAnti => Some(p),
                    JoinKind::Inner | JoinKind::LeftOuter => {
                        let mut fields: Vec<Field> = p.fields().to_vec();
                        for f in b.fields() {
                            // The runtime join asserts output names are
                            // unique; the static mirror must not panic at
                            // submit time, so duplicate names just stop
                            // inference here.
                            if fields.iter().any(|x| x.name == f.name) {
                                return None;
                            }
                            let mut f = f.clone();
                            if *kind == JoinKind::LeftOuter {
                                f.nullable = true;
                            }
                            fields.push(f);
                        }
                        Some(Schema::new(fields))
                    }
                }
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
                phase,
            } => {
                let s = self.walk(input)?;
                if *phase != AggPhase::Final {
                    let programs = aggs
                        .iter()
                        .map(|a| (a.name.clone(), ExprProgram::compile(&a.expr, &s).ok()))
                        .collect();
                    self.record(
                        idx,
                        OpPrograms {
                            aggs: programs,
                            ..OpPrograms::default()
                        },
                    );
                }
                // Static mirror of the runtime aggregate output schema.
                let mut fields: Vec<Field> = Vec::new();
                for g in group_by {
                    fields.push(s.fields().iter().find(|f| f.name == *g)?.clone());
                }
                for a in aggs {
                    match (*phase, a.func) {
                        (AggPhase::Partial, AggFunc::Avg) => {
                            fields.push(Field::new(format!("{}__sum", a.name), DataType::Float64));
                            fields.push(Field::new(format!("{}__cnt", a.name), DataType::Int64));
                        }
                        (_, AggFunc::Sum) | (_, AggFunc::Avg) => {
                            fields.push(Field::nullable(a.name.clone(), DataType::Float64));
                        }
                        (_, AggFunc::Count) | (_, AggFunc::CountDistinct) => {
                            fields.push(Field::new(a.name.clone(), DataType::Int64));
                        }
                        (_, AggFunc::Min) | (_, AggFunc::Max) => {
                            let dt = match phase {
                                AggPhase::Final => {
                                    let f = s.fields().iter().find(|f| f.name == a.name)?;
                                    dtype_after_eval(f.dtype)
                                }
                                _ => vm_to_dtype(static_type(&a.expr, &s).ok()?)?,
                            };
                            fields.push(Field::nullable(a.name.clone(), dt));
                        }
                    }
                }
                Some(Schema::new(fields))
            }
            Plan::Sort { input, .. } | Plan::Exchange { input, .. } => self.walk(input),
        }
    }
}

/// Compile every expression site in one stage's plan. Returns the
/// per-operator programs plus the stage's statically inferred output
/// schema (`None` when inference broke somewhere along the spine — the
/// stage still executes, via the tree walker where programs are missing).
///
/// `base` resolves base-relation schemas; `temps` maps already-planned
/// materialized temp relations to their schemas so later stages of the
/// same query can compile against them.
pub fn compile_stage(
    plan: &Plan,
    base: BaseSchemas<'_>,
    temps: &HashMap<String, Schema>,
) -> (CompiledStage, Option<Schema>) {
    let mut c = StageCompiler {
        base,
        temps,
        ops: HashMap::new(),
        next: 0,
    };
    let schema = c.walk(plan);
    (CompiledStage { ops: c.ops }, schema)
}
