//! The cost model: pricing distributed-plan alternatives.
//!
//! Costs are expressed in **byte-equivalents**: one unit is one byte
//! crossing the network fabric, and per-row CPU work (hash-table builds,
//! aggregation state updates) is charged at fixed byte-equivalent rates.
//! The absolute scale is meaningless; only comparisons between the
//! alternatives of one decision matter, and every decision produces a
//! human-readable rationale that `--explain` surfaces.
//!
//! Three decisions are priced:
//!
//! * **Broadcast vs repartition** for a distributed hash join
//!   ([`CostModel::join_exchange`]): shipping `(n−1)` copies of the build
//!   side (plus the replicated hash-table build every node then performs)
//!   against hash-repartitioning both inputs, with already co-partitioned
//!   sides moving for free.
//! * **Pre-aggregation vs raw reshuffle** for a grouped aggregation
//!   ([`CostModel::pre_aggregation`]): a local partial pass plus a
//!   reshuffle of the (hopefully few) partial states against reshuffling
//!   every input row once — pre-aggregation loses when the group count
//!   approaches the input cardinality.
//! * **Broadcast vs partitioned CTE materialization**
//!   ([`CostModel::cte_placement`]): replicating the temp once against
//!   leaving it partitioned and (likely) re-exchanging it at each of its
//!   downstream consumers.

/// Estimated width of one row carrying `cols` columns, in bytes. The
/// engine's columns are 8-byte words (ints, dates, floats, scaled
/// decimals); strings are approximated at the same width.
pub fn row_bytes(cols: usize) -> f64 {
    8.0 * cols.max(1) as f64
}

/// CPU charge (byte-equivalents) per row inserted into a hash-join table.
/// Charged once per node that builds the table, which is what makes a
/// broadcast join pay for its replicated builds.
pub const HASH_BUILD_ROW: f64 = 128.0;

/// CPU charge (byte-equivalents) per row folded into an aggregation
/// (group lookup + state update ≈ moving one word).
pub const AGG_ROW: f64 = 8.0;

/// The cost model for one cluster size.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Number of servers the plan runs on.
    pub nodes: f64,
    /// Build sides at or below this row count are always broadcast — the
    /// transfer is negligible and replication keeps the probe side's
    /// partitioning property intact.
    pub broadcast_max_rows: f64,
}

/// One priced decision: the chosen alternative with both costs and a
/// rendered rationale, kept for `--explain`.
#[derive(Debug, Clone)]
pub struct Decision {
    /// What the decision was about (e.g. `join build=orders`).
    pub site: String,
    /// The chosen alternative (e.g. `broadcast`).
    pub chosen: &'static str,
    /// Cost of the chosen alternative, in byte-equivalents.
    pub cost: f64,
    /// Cost of the rejected alternative.
    pub rejected_cost: f64,
    /// Why, in one line.
    pub rationale: String,
}

impl Decision {
    /// Render as one `--explain` line.
    pub fn render(&self) -> String {
        format!("{}: {} ({})", self.site, self.chosen, self.rationale)
    }
}

/// Compact cost rendering for rationale strings (`1.2e6` style).
fn cu(c: f64) -> String {
    if c >= 1e5 {
        format!("{c:.2e}")
    } else {
        format!("{c:.0}")
    }
}

impl CostModel {
    /// A cost model for `nodes` servers.
    pub fn new(nodes: u16, broadcast_max_rows: f64) -> Self {
        Self {
            nodes: f64::from(nodes.max(1)),
            broadcast_max_rows,
        }
    }

    /// Fraction of a hash-repartitioned relation that crosses the network
    /// (each node keeps its local share).
    fn remote_fraction(&self) -> f64 {
        1.0 - 1.0 / self.nodes
    }

    /// Price broadcast vs repartition for a hash join. `*_aligned` marks a
    /// side that is already hash-partitioned compatibly with the join keys
    /// (its repartition is free). Returns `(broadcast, decision)` where
    /// `broadcast` is true when the build side should be replicated.
    #[allow(clippy::too_many_arguments)]
    pub fn join_exchange(
        &self,
        site: impl Into<String>,
        probe_rows: f64,
        probe_cols: usize,
        probe_aligned: bool,
        build_rows: f64,
        build_cols: usize,
        build_aligned: bool,
    ) -> (bool, Decision) {
        let n = self.nodes;
        let build_w = row_bytes(build_cols);
        // Broadcast: ship (n−1) copies of the build side, then every node
        // builds the full hash table instead of 1/n of it.
        let bcast = build_rows * (n - 1.0) * build_w + (n - 1.0) * build_rows * HASH_BUILD_ROW;
        // Repartition: both sides move their remote fraction, unless they
        // are already co-partitioned on the join keys.
        let move_cost = |rows: f64, cols: usize, aligned: bool| {
            if aligned {
                0.0
            } else {
                rows * self.remote_fraction() * row_bytes(cols)
            }
        };
        let repart = move_cost(probe_rows, probe_cols, probe_aligned)
            + move_cost(build_rows, build_cols, build_aligned);
        let tiny = build_rows <= self.broadcast_max_rows;
        let broadcast = tiny || bcast <= repart;
        let decision = Decision {
            site: site.into(),
            chosen: if broadcast {
                "broadcast"
            } else {
                "repartition"
            },
            cost: if broadcast { bcast } else { repart },
            rejected_cost: if broadcast { repart } else { bcast },
            rationale: if tiny {
                format!(
                    "build ~{build_rows:.0} rows ≤ {:.0}-row broadcast threshold",
                    self.broadcast_max_rows
                )
            } else {
                format!(
                    "bcast {} vs repart {} cost, build ~{build_rows:.0}×{build_w:.0}B, \
                     probe ~{probe_rows:.0} rows",
                    cu(bcast),
                    cu(repart),
                )
            },
        };
        (broadcast, decision)
    }

    /// Price pre-aggregation (local partial pass + reshuffle of partial
    /// states + merge) vs a raw reshuffle of the input followed by a
    /// single aggregation. Returns `(pre_aggregate, decision)`.
    pub fn pre_aggregation(
        &self,
        site: impl Into<String>,
        input_rows: f64,
        groups: f64,
        out_cols: usize,
        in_cols: usize,
    ) -> (bool, Decision) {
        let n = self.nodes;
        // Every node can hold at most its input share in partial states.
        let partial_per_node = groups.min(input_rows / n);
        let partial_rows = partial_per_node * n;
        let preagg = input_rows * AGG_ROW                                  // local partial pass
            + partial_rows * self.remote_fraction() * row_bytes(out_cols)  // reshuffle states
            + partial_rows * AGG_ROW; // merge
        let raw = input_rows * self.remote_fraction() * row_bytes(in_cols) // reshuffle input
            + input_rows * AGG_ROW; // aggregate once
        let pre = preagg <= raw;
        let decision = Decision {
            site: site.into(),
            chosen: if pre {
                "pre-aggregate"
            } else {
                "raw reshuffle"
            },
            cost: if pre { preagg } else { raw },
            rejected_cost: if pre { raw } else { preagg },
            rationale: format!(
                "preagg {} vs raw {} cost, ~{groups:.0} groups from ~{input_rows:.0} rows",
                cu(preagg),
                cu(raw),
            ),
        };
        (pre, decision)
    }

    /// Price broadcast vs partitioned materialization of a CTE consumed
    /// `consumers` times downstream. Partitioned materialization is free
    /// now but each consumer will likely re-exchange the temp (repartition
    /// or broadcast it into a join); replicating once amortizes that.
    /// Returns `(broadcast, decision)`.
    pub fn cte_placement(
        &self,
        site: impl Into<String>,
        rows: f64,
        cols: usize,
        consumers: usize,
    ) -> (bool, Decision) {
        let n = self.nodes;
        let w = row_bytes(cols);
        let bcast = rows * (n - 1.0) * w;
        let partitioned = consumers as f64 * rows * self.remote_fraction() * w;
        let tiny = rows <= self.broadcast_max_rows;
        let broadcast = tiny || bcast <= partitioned;
        let decision = Decision {
            site: site.into(),
            chosen: if broadcast {
                "broadcast"
            } else {
                "partitioned"
            },
            cost: if broadcast { bcast } else { partitioned },
            rejected_cost: if broadcast { partitioned } else { bcast },
            rationale: if tiny {
                format!(
                    "~{rows:.0} rows ≤ {:.0}-row broadcast threshold",
                    self.broadcast_max_rows
                )
            } else {
                format!(
                    "bcast {} vs {} consumer re-exchanges {} cost at ~{rows:.0} rows",
                    cu(bcast),
                    consumers,
                    cu(partitioned),
                )
            },
        };
        (broadcast, decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(4, 1_000.0)
    }

    #[test]
    fn tiny_build_sides_always_broadcast() {
        // 25-row build side (nation): broadcast regardless of probe size.
        let (b, d) = model().join_exchange("j", 6e6, 16, false, 25.0, 4, false);
        assert!(b);
        assert!(d.rationale.contains("threshold"));
    }

    #[test]
    fn huge_build_sides_repartition() {
        // Orders (1.5M × 9 cols) into lineitem (6M × 16 cols): replicating
        // the build (and re-building it on every node) costs more than
        // repartitioning both inputs.
        let (b, d) = model().join_exchange("j", 6e6, 16, false, 1.5e6, 9, false);
        assert!(!b, "{}", d.render());
        assert!(d.cost < d.rejected_cost);
    }

    #[test]
    fn mid_size_build_broadcasts_into_a_large_probe() {
        // Supplier (10k × 7) into lineitem (6M × 16): broadcast wins.
        let (b, d) = model().join_exchange("j", 6e6, 16, false, 1e4, 7, false);
        assert!(b, "{}", d.render());
    }

    #[test]
    fn aligned_sides_tilt_toward_repartition() {
        let m = model();
        // Border-ish case: when the probe is already co-partitioned its
        // repartition is free, so the same build side flips to repartition.
        let (unaligned, _) = m.join_exchange("j", 1e5, 16, false, 1e4, 4, false);
        let (aligned, _) = m.join_exchange("j", 1e5, 16, true, 1e4, 4, false);
        assert!(unaligned);
        assert!(!aligned);
    }

    #[test]
    fn few_groups_pre_aggregate_many_groups_reshuffle_raw() {
        let m = model();
        let (pre, d) = m.pre_aggregation("a", 6e6, 4.0, 3, 3);
        assert!(pre, "{}", d.render());
        // Group count ≈ input rows: partial states reduce nothing, the
        // extra local pass is pure overhead.
        let (pre, d) = m.pre_aggregation("a", 6e6, 6e6, 3, 3);
        assert!(!pre, "{}", d.render());
    }

    #[test]
    fn cte_broadcast_scales_with_consumer_count() {
        let m = model();
        // One consumer, large temp: stay partitioned.
        let (b, _) = m.cte_placement("cte", 5e5, 4, 1);
        assert!(!b);
        // Many consumers amortize the replication.
        let (b, d) = m.cte_placement("cte", 5e5, 4, 6);
        assert!(b, "{}", d.render());
        // Tiny temps broadcast regardless.
        let (b, _) = m.cte_placement("cte", 100.0, 4, 1);
        assert!(b);
    }
}
