//! # hsqp-engine — the distributed query engine
//!
//! This crate implements the paper's contribution: a distributed query
//! engine built on **hybrid parallelism** and an **RDMA-based, NUMA-aware
//! communication multiplexer** with low-latency round-robin network
//! scheduling (§3).
//!
//! * Locally, queries run with *morsel-driven parallelism* ([`local`]):
//!   workers pull constant-size morsels from a shared dispenser, which
//!   self-balances load (work stealing) and keeps tuples NUMA-local.
//! * Globally, *decoupled exchange operators* ([`exchange`]) partition
//!   tuples by CRC32 hash into per-server messages, hand them to the
//!   per-server communication multiplexer, and consume incoming messages
//!   from NUMA-local receive queues with cross-socket work stealing.
//! * The multiplexer sends messages over the [`hsqp_net`] fabric — RDMA or
//!   TCP — following the round-robin network schedule that avoids switch
//!   contention.
//! * The *classic exchange operator* baseline (n·t parallel units, static
//!   partition ownership, no stealing, no scheduling) is implemented for
//!   comparison, as are chunked vs partitioned data placement.
//!
//! [`queries`] contains hand-built physical plans for all 22 TPC-H queries
//! (the paper's workload); [`cluster`] is the SPMD driver that runs a plan
//! across all simulated servers and gathers the result.
//!
//! Queries are written against the [`logical`] plan builder and lowered by
//! the distributed [`planner`], which places exchange operators, chooses
//! broadcast vs repartition joins, and inserts pre-aggregation
//! automatically; [`session`] wraps cluster + planner behind one
//! programmable facade. The hand-written physical plans in [`queries`]
//! remain as the differential-testing oracle.
//!
//! Queries are *submitted*, not merely run:
//! [`Session::submit`](session::Session::submit) returns a
//! [`QueryHandle`] and the cluster's dispatcher executes up to
//! [`max_concurrent`](cluster::ClusterConfig::max_concurrent) queries at
//! once over the shared multiplexers — every wire message is tagged with
//! a [`QueryId`], temp relations live in per-query namespaces, and
//! fabric statistics are accounted per query.
//!
//! Execution is observable end to end: the span-based [`profile`]r records
//! per stage × node × operator timings (network wait split out at exchange
//! boundaries) into each query's [`QueryProfile`], and the cluster-wide
//! [`metrics`] registry aggregates dispatcher and fabric health across
//! queries.
//!
//! The [`serve`] module makes the engine multi-tenant: queries are tagged
//! with a [`TenantId`], admitted against per-tenant caps, scheduled by
//! weighted deficit round-robin, and cancelled cooperatively at morsel
//! granularity (explicit [`QueryHandle::cancel`] or a per-query deadline).

pub mod cluster;
pub mod cost;
pub mod error;
pub mod exchange;
pub mod exec;
pub mod expr;
pub mod local;
pub mod logical;
pub mod metrics;
pub mod ops;
pub mod plan;
pub mod planner;
pub mod profile;
pub mod queries;
pub mod remote;
pub mod serial;
pub mod serve;
pub mod session;
pub mod stats;
pub mod vm;
pub mod wire;

pub use cluster::{
    Cluster, ClusterConfig, EngineKind, ExprEngine, QueryHandle, QueryResult, Transport,
};
pub use cost::CostModel;
pub use error::EngineError;
pub use expr::Expr;
pub use hsqp_net::QueryId;
pub use logical::{JoinStrategy, LogicalPlan};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use plan::{AggFunc, AggSpec, ExchangeKind, JoinKind, Plan, SortKey};
pub use planner::{Planner, PlannerConfig, QueryPlanner, TableStats};
pub use profile::{chrome_trace, QueryProfile};
pub use remote::{NodeServer, ProcessCluster, ProcessClusterConfig, RemoteEngineConfig};
pub use serve::{
    ArrivalProcess, CancelToken, StopReason, SubmitOptions, TenantConfig, TenantId, TenantMetrics,
};
pub use session::{Session, SessionBuilder};
pub use stats::{ColumnStats, FeedbackCache, StatsCatalog, StatsMode, TableStatistics};
pub use vm::{CompiledStage, ExprProgram};
