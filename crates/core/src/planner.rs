//! The distributed planner: lowers [`LogicalPlan`]s to physical [`Plan`]s.
//!
//! The paper's distributed plans come out of HyPer's optimizer (Figure 6);
//! this module reproduces the three decisions that matter for distribution:
//!
//! 1. **Exchange placement** — a hash-repartition is inserted wherever an
//!    operator needs co-partitioned input and the data is not already
//!    partitioned compatibly; redundant exchanges are elided by tracking
//!    each subplan's partitioning property (including column equivalences
//!    established by inner joins).
//! 2. **Broadcast vs repartition** (§3.2) — small build sides are broadcast
//!    instead of hash-partitioning both inputs, decided from
//!    table-cardinality estimates and simple selectivity heuristics.
//! 3. **Pre-aggregation** (Figure 6(c)) — group-by aggregations over
//!    unpartitioned input are split into a local partial aggregate, a
//!    reshuffle of the (small) partial states, and a merge; `count(distinct)`
//!    falls back to a raw reshuffle, and aggregations whose input is already
//!    partitioned by a group key stay node-local.
//!
//! Scans are pruned to the columns the plan actually uses and filters
//! directly above a scan are pushed into it ("columns that are not required
//! … are pruned as early as possible", §3.2.1).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hsqp_tpch::TpchTable;

use crate::cluster::Cluster;
use crate::cost::CostModel;
use crate::error::EngineError;
use crate::expr::{CmpOp, Expr};
use crate::logical::{JoinStrategy, LogicalPlan, LogicalQuery};
use crate::plan::{AggFunc, AggPhase, AggSpec, ExchangeKind, JoinKind, Plan, SortKey};
use crate::queries::{Query, QueryStage, StageRole};
use crate::stats::{self, plan_fingerprint, FeedbackCache, StatsCatalog, StatsMode};

/// Base-relation cardinality estimates, the planner's cost-model input.
#[derive(Debug, Clone)]
pub struct TableStats {
    rows: [f64; 8],
}

impl TableStats {
    /// Estimates for a TPC-H database at scale factor `sf`, mirroring the
    /// generator's row counts.
    pub fn for_scale_factor(sf: f64) -> Self {
        let suppliers = (10_000.0 * sf).max(4.0);
        let customers = (150_000.0 * sf).max(10.0);
        let parts = (200_000.0 * sf).max(20.0);
        let orders = customers * 10.0;
        let mut s = Self { rows: [1.0; 8] };
        s.set_rows(TpchTable::Region, 5.0);
        s.set_rows(TpchTable::Nation, 25.0);
        s.set_rows(TpchTable::Supplier, suppliers);
        s.set_rows(TpchTable::Customer, customers);
        s.set_rows(TpchTable::Part, parts);
        s.set_rows(TpchTable::Partsupp, parts * 4.0);
        s.set_rows(TpchTable::Orders, orders);
        s.set_rows(TpchTable::Lineitem, orders * 4.0);
        s
    }

    /// Override the estimate for one relation (e.g. with exact loaded
    /// counts).
    pub fn set_rows(&mut self, table: TpchTable, rows: f64) {
        self.rows[table.idx()] = rows.max(1.0);
    }

    /// Estimated row count of `table`.
    pub fn rows(&self, table: TpchTable) -> f64 {
        self.rows[table.idx()]
    }
}

impl Default for TableStats {
    fn default() -> Self {
        Self::for_scale_factor(1.0)
    }
}

/// Planner tuning knobs.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Cluster size the plan will run on (drives broadcast costing).
    pub nodes: u16,
    /// Build sides estimated at or below this row count are always
    /// broadcast, regardless of the probe size.
    pub broadcast_max_rows: f64,
    /// Base-relation cardinalities.
    pub stats: TableStats,
    /// How estimates are sourced: legacy flat heuristics
    /// ([`StatsMode::Off`]), catalog-driven costing
    /// ([`StatsMode::Static`]), or costing plus runtime feedback
    /// ([`StatsMode::Feedback`]).
    pub mode: StatsMode,
    /// Per-column statistics (NDV, min/max, null fractions) feeding the
    /// selectivity and group-count estimators. `None` falls back to the
    /// flat heuristics even in [`StatsMode::Static`].
    pub catalog: Option<Arc<StatsCatalog>>,
    /// Observed-cardinality cache consulted (and, by the execution
    /// drivers, fed) in [`StatsMode::Feedback`].
    pub feedback: Option<Arc<FeedbackCache>>,
    /// Whether base tables are hash-partitioned on their first column
    /// ([`Placement::Partitioned`](hsqp_storage::placement::Placement)),
    /// letting scans claim a partitioning property that elides exchanges.
    pub partitioned: bool,
}

impl PlannerConfig {
    /// Defaults for an `nodes`-server cluster at TPC-H scale factor 1.
    pub fn new(nodes: u16) -> Self {
        Self {
            nodes,
            broadcast_max_rows: 1_000.0,
            stats: TableStats::default(),
            mode: StatsMode::Static,
            catalog: None,
            feedback: None,
            partitioned: false,
        }
    }
}

/// Lowers logical plans to distributed physical plans.
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: PlannerConfig,
    /// Shared subplans registered while lowering a [`LogicalQuery`]:
    /// schema, distribution, and cardinality of each materialized temp
    /// relation, threaded into every `CteScan` of the same name.
    ctes: BTreeMap<String, CteInfo>,
    /// Rendered cost-model [`Decision`](crate::cost::Decision)s from the
    /// current lowering, drained per stage for `--explain`.
    notes: Vec<String>,
}

/// Planner-tracked properties of one materialized CTE.
#[derive(Debug, Clone)]
struct CteInfo {
    cols: Vec<String>,
    part: Part,
    est: f64,
}

/// How a subplan's rows are distributed across the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    /// Arbitrary distribution (chunked base tables, broadcast-join outputs).
    Any,
    /// Hash-partitioned: position `i` of the partition key can be read from
    /// any column named in `classes[i]` (join equivalences).
    Hash(Vec<BTreeSet<String>>),
    /// Every node holds a full copy (output of a broadcast exchange).
    Replicated,
    /// All rows live on the coordinator; other nodes are empty.
    Single,
}

/// A lowered subplan with the properties the planner tracks.
struct Lowered {
    plan: Plan,
    cols: Vec<String>,
    part: Part,
    est: f64,
}

fn planner_err<T>(msg: impl Into<String>) -> Result<T, EngineError> {
    Err(EngineError::Planner(msg.into()))
}

fn table_columns(table: TpchTable) -> Vec<String> {
    use hsqp_tpch::schema;
    let s = match table {
        TpchTable::Region => schema::region(),
        TpchTable::Nation => schema::nation(),
        TpchTable::Supplier => schema::supplier(),
        TpchTable::Customer => schema::customer(),
        TpchTable::Part => schema::part(),
        TpchTable::Partsupp => schema::partsupp(),
        TpchTable::Orders => schema::orders(),
        TpchTable::Lineitem => schema::lineitem(),
    };
    s.fields().iter().map(|f| f.name.clone()).collect()
}

/// Selectivity heuristic for filter predicates (flat per-operator factors,
/// conjunctions multiply).
fn selectivity(e: &Expr) -> f64 {
    use crate::expr::CmpOp;
    match e {
        Expr::Cmp(CmpOp::Eq, _, _) => 0.1,
        Expr::Cmp(CmpOp::Ne, _, _) => 0.9,
        Expr::Cmp(_, _, _) => 0.3,
        Expr::And(cs) => cs.iter().map(selectivity).product::<f64>().max(1e-4),
        Expr::Or(cs) => cs.iter().map(selectivity).sum::<f64>().min(1.0),
        Expr::Not(c) => (1.0 - selectivity(c)).max(0.05),
        Expr::Like(_, _) => 0.1,
        Expr::InStr(_, opts) => (0.1 * opts.len() as f64).min(1.0),
        Expr::InI64(_, opts) => (0.1 * opts.len() as f64).min(1.0),
        Expr::IsNull(_) => 0.1,
        _ => 0.5,
    }
}

/// Mirror a comparison operator for a swapped operand order
/// (`5 < x` ≡ `x > 5`).
fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

impl Planner {
    /// A planner for the given configuration.
    pub fn new(cfg: PlannerConfig) -> Self {
        Self {
            cfg,
            ctes: BTreeMap::new(),
            notes: Vec::new(),
        }
    }

    /// A planner configured from a running cluster: node count from the
    /// cluster, cardinalities from the actually loaded relations (falling
    /// back to SF-1 estimates for relations that are not loaded), and
    /// column statistics sampled when the cluster loaded its data.
    pub fn for_cluster(cluster: &Cluster) -> Self {
        let mut cfg = PlannerConfig::new(cluster.config().nodes);
        for table in TpchTable::ALL {
            if let Some(rows) = cluster.table_rows(table) {
                cfg.stats.set_rows(table, rows as f64);
            }
        }
        cfg.catalog = cluster.stats_catalog();
        cfg.partitioned =
            cluster.config().placement == hsqp_storage::placement::Placement::Partitioned;
        Self::new(cfg)
    }

    /// The active configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// Mutable access to the configuration, for callers (like
    /// [`Session`](crate::session::Session)) that wire a stats mode or a
    /// shared [`FeedbackCache`] into an already-constructed planner.
    pub fn config_mut(&mut self) -> &mut PlannerConfig {
        &mut self.cfg
    }

    /// The cost model for this planner's cluster size.
    fn cost_model(&self) -> CostModel {
        CostModel::new(self.cfg.nodes, self.cfg.broadcast_max_rows)
    }

    /// Whether cost-model decisions (vs the legacy hard-coded rules) are
    /// active.
    fn costed(&self) -> bool {
        self.cfg.mode != StatsMode::Off
    }

    /// The column-statistics catalog, when stats-driven estimation is on.
    fn catalog(&self) -> Option<&StatsCatalog> {
        if self.cfg.mode == StatsMode::Off {
            None
        } else {
            self.cfg.catalog.as_deref()
        }
    }

    /// Record a priced decision for `--explain`.
    fn note(&mut self, d: crate::cost::Decision) {
        self.notes.push(d.render());
    }

    /// Drain the rendered decisions accumulated since the last drain.
    fn take_notes(&mut self) -> Vec<String> {
        std::mem::take(&mut self.notes)
    }

    /// Lower `logical` to a distributed physical plan whose result is
    /// complete on the coordinator (node 0).
    pub fn plan(&self, logical: &LogicalPlan) -> Result<Plan, EngineError> {
        let mut p = self.clone();
        let lowered = p.lower(logical, None)?;
        Ok(fold_plan(finish_on_coordinator(lowered)))
    }

    /// Like [`plan`](Self::plan), but also returns the rendered cost-model
    /// decisions made while lowering (empty in [`StatsMode::Off`]).
    pub fn plan_explained(
        &self,
        logical: &LogicalPlan,
    ) -> Result<(Plan, Vec<String>), EngineError> {
        let mut p = self.clone();
        let lowered = p.lower(logical, None)?;
        let notes = p.take_notes();
        Ok((fold_plan(finish_on_coordinator(lowered)), notes))
    }

    /// Lower a multi-stage [`LogicalQuery`] to a physical [`Query`].
    ///
    /// CTEs are lowered in registration order: each is planned once and
    /// becomes a [`StageRole::Materialize`] stage whose per-node results
    /// later stages read through `Plan::TempScan`. The cost model decides
    /// whether a CTE result is broadcast (every node holds a full copy) or
    /// stays partitioned where the plan produced it, weighing its size
    /// against how many downstream consumers would re-exchange it; the
    /// planner threads each temp's partitioning property and cardinality
    /// estimate into every use. Scalar stages are planned to completion on
    /// the coordinator and their first result row extends the parameter
    /// list (`Expr::Param`, numbered in column order across stages) that
    /// later stages — and CTEs registered after the binding stage's
    /// parameters are available — may reference. The last stage produces
    /// the result.
    ///
    /// Rejects parameters no earlier stage binds, duplicate or unknown CTE
    /// names, and queries without a result stage — all as
    /// [`EngineError::Planner`].
    pub fn plan_query(&self, query: &LogicalQuery) -> Result<Query, EngineError> {
        let mut qp = self.begin_query(query)?;
        let mut stages: Vec<QueryStage> = Vec::new();
        while let Some(stage) = qp.next_stage()? {
            stages.push(stage);
        }
        Query::from_stages(0, stages)
    }

    /// Like [`plan_query`](Self::plan_query), but also returns the
    /// rendered cost-model decisions, one `Vec` per emitted stage (empty
    /// in [`StatsMode::Off`]).
    pub fn plan_query_explained(
        &self,
        query: &LogicalQuery,
    ) -> Result<(Query, Vec<Vec<String>>), EngineError> {
        let mut qp = self.begin_query(query)?;
        let mut stages: Vec<QueryStage> = Vec::new();
        while let Some(stage) = qp.next_stage()? {
            stages.push(stage);
        }
        let notes = qp.into_stage_notes();
        Ok((Query::from_stages(0, stages)?, notes))
    }

    /// Begin incremental, stage-at-a-time planning of `query`.
    ///
    /// The returned [`QueryPlanner`] emits one physical [`QueryStage`] per
    /// [`next_stage`](QueryPlanner::next_stage) call; after executing each
    /// stage the driver reports the observed per-node result cardinalities
    /// via [`observe_rows`](QueryPlanner::observe_rows), and in
    /// [`StatsMode::Feedback`] later stages of the same query are planned
    /// against those actuals (and the observation is recorded in the
    /// session's [`FeedbackCache`] for future submissions).
    ///
    /// Validates the whole query shape up front (duplicate CTE names,
    /// unknown CTEs, parameter availability), so a `QueryPlanner` that is
    /// handed out can only fail later on genuine lowering errors.
    pub fn begin_query(&self, query: &LogicalQuery) -> Result<QueryPlanner, EngineError> {
        QueryPlanner::new(self.clone(), query.clone())
    }

    /// Output column names of `logical` (what [`plan`](Self::plan) will
    /// produce, in order). A plan that reads a CTE can only be resolved in
    /// the context of its owning query — use
    /// [`query_output_columns`](Self::query_output_columns) for those.
    pub fn output_columns(&self, logical: &LogicalPlan) -> Result<Vec<String>, EngineError> {
        self.logical_columns(logical)
    }

    /// Output column names of a [`LogicalQuery`]'s result stage (what
    /// [`plan_query`](Self::plan_query) will produce, in order), resolving
    /// `from_cte` scans against the query's registered CTEs.
    pub fn query_output_columns(&self, query: &LogicalQuery) -> Result<Vec<String>, EngineError> {
        let mut p = self.clone();
        for (name, plan) in query.ctes() {
            let cols = p.logical_columns(plan)?;
            p.ctes.insert(
                name.clone(),
                CteInfo {
                    cols,
                    part: Part::Any,
                    est: 0.0,
                },
            );
        }
        match query.stages().last() {
            Some(stage) => p.logical_columns(stage),
            None => planner_err("query needs at least one stage"),
        }
    }

    /// Output column names of a logical plan, without lowering it.
    fn logical_columns(&self, node: &LogicalPlan) -> Result<Vec<String>, EngineError> {
        match node {
            LogicalPlan::Scan { table } => Ok(table_columns(*table)),
            LogicalPlan::CteScan { name } => self
                .ctes
                .get(name)
                .map(|info| info.cols.clone())
                .ok_or_else(|| {
                    EngineError::Planner(format!(
                        "unknown CTE {name:?} (register it with LogicalQuery::with)"
                    ))
                }),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => self.logical_columns(input),
            LogicalPlan::Project { outputs, .. } => {
                Ok(outputs.iter().map(|o| o.name.clone()).collect())
            }
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let mut cols = self.logical_columns(left)?;
                if matches!(kind, JoinKind::Inner | JoinKind::LeftOuter) {
                    cols.extend(self.logical_columns(right)?);
                }
                Ok(cols)
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let mut cols = group_by.clone();
                cols.extend(aggs.iter().map(|a| a.name.clone()));
                Ok(cols)
            }
        }
    }

    // -- CTE requirement analysis -------------------------------------------

    /// Union of the columns each CTE's consumers require, keyed by CTE
    /// name. `None` means at least one consumer needs every column (or the
    /// requirement cannot be narrowed). Mirrors the `required` propagation
    /// of [`lower`](Self::lower), so the materialization is always a
    /// superset of what any individual `CteScan` will project.
    fn cte_requirements(
        &self,
        query: &LogicalQuery,
    ) -> Result<BTreeMap<String, Option<BTreeSet<String>>>, EngineError> {
        // Resolve CTE output columns (registration order, so later CTEs
        // can reference earlier ones) for join-side column splitting.
        let mut p = self.clone();
        for (name, plan) in query.ctes() {
            if p.ctes.contains_key(name) {
                return planner_err(format!("duplicate CTE name {name:?}"));
            }
            let cols = p.logical_columns(plan)?;
            p.ctes.insert(
                name.clone(),
                CteInfo {
                    cols,
                    part: Part::Any,
                    est: 0.0,
                },
            );
        }
        let mut out: BTreeMap<String, Option<BTreeSet<String>>> = BTreeMap::new();
        for stage in query.stages() {
            p.collect_cte_required(stage, None, &mut out)?;
        }
        // CTEs in reverse registration order: a CTE can only be consumed
        // by stages and *later* CTEs, so by the time we analyze its own
        // plan every consumer (and thus its final pruned width) is known.
        for (name, plan) in query.ctes().iter().rev() {
            let required = out.get(name).cloned().unwrap_or(None);
            p.collect_cte_required(plan, required.as_ref(), &mut out)?;
        }
        Ok(out)
    }

    /// Walk `node` accumulating, per referenced CTE, the union of columns
    /// required of it — threading `required` top-down exactly like
    /// [`lower`](Self::lower) does.
    fn collect_cte_required(
        &self,
        node: &LogicalPlan,
        required: Option<&BTreeSet<String>>,
        out: &mut BTreeMap<String, Option<BTreeSet<String>>>,
    ) -> Result<(), EngineError> {
        match node {
            LogicalPlan::Scan { .. } => Ok(()),
            LogicalPlan::CteScan { name } => {
                match (
                    out.entry(name.clone())
                        .or_insert_with(|| Some(BTreeSet::new())),
                    required,
                ) {
                    (Some(set), Some(req)) => set.extend(req.iter().cloned()),
                    (slot, None) => *slot = None,
                    (None, _) => {}
                }
                Ok(())
            }
            LogicalPlan::Filter { input, predicate } => {
                let child = required.map(|r| {
                    let mut r = r.clone();
                    r.extend(predicate.columns());
                    r
                });
                self.collect_cte_required(input, child.as_ref(), out)
            }
            LogicalPlan::Project { input, outputs } => {
                let mut child = BTreeSet::new();
                for o in outputs {
                    child.extend(o.expr.columns());
                }
                self.collect_cte_required(input, Some(&child), out)
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                let (lreq, rreq) = match required {
                    None => (None, None),
                    Some(req) => {
                        let lcols: BTreeSet<String> =
                            self.logical_columns(left)?.into_iter().collect();
                        let rcols: BTreeSet<String> =
                            self.logical_columns(right)?.into_iter().collect();
                        let mut lr: BTreeSet<String> =
                            req.iter().filter(|c| lcols.contains(*c)).cloned().collect();
                        lr.extend(left_keys.iter().cloned());
                        let mut rr: BTreeSet<String> =
                            req.iter().filter(|c| rcols.contains(*c)).cloned().collect();
                        rr.extend(right_keys.iter().cloned());
                        (Some(lr), Some(rr))
                    }
                };
                self.collect_cte_required(left, lreq.as_ref(), out)?;
                self.collect_cte_required(right, rreq.as_ref(), out)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let mut child: BTreeSet<String> = group_by.iter().cloned().collect();
                for a in aggs {
                    child.extend(a.expr.columns());
                }
                self.collect_cte_required(input, Some(&child), out)
            }
            LogicalPlan::Sort { input, keys } => {
                let child = required.map(|r| {
                    let mut r = r.clone();
                    r.extend(keys.iter().map(|k| k.column.clone()));
                    r
                });
                self.collect_cte_required(input, child.as_ref(), out)
            }
            LogicalPlan::Limit { input, .. } => self.collect_cte_required(input, required, out),
        }
    }

    // -- lowering -----------------------------------------------------------

    /// Selectivity estimate for a filter predicate: interval/NDV math from
    /// the column catalog when stats are on, flat per-operator heuristics
    /// otherwise.
    fn sel(&self, e: &Expr) -> f64 {
        let Some(cat) = self.catalog() else {
            return selectivity(e);
        };
        self.sel_with(cat, e)
    }

    fn sel_with(&self, cat: &StatsCatalog, e: &Expr) -> f64 {
        // A comparison between one column and one numeric literal is the
        // shape the estimators understand; flip the operator when the
        // literal is on the left (`5 < x` ≡ `x > 5`).
        fn col_vs_lit<'e>(l: &'e Expr, r: &'e Expr) -> Option<(&'e str, f64, bool)> {
            let lit = |e: &Expr| match e {
                Expr::LitI64(v) => Some(*v as f64),
                Expr::LitF64(v) => Some(*v),
                _ => None,
            };
            match (l, r) {
                (Expr::Col(c), e) => lit(e).map(|v| (c.as_str(), v, false)),
                (e, Expr::Col(c)) => lit(e).map(|v| (c.as_str(), v, true)),
                _ => None,
            }
        }
        match e {
            Expr::Cmp(op, l, r) => {
                if let Some((col, bound, flipped)) = col_vs_lit(l, r) {
                    if let Some(cs) = cat.column_anywhere(col) {
                        let op = if flipped { flip_cmp(*op) } else { *op };
                        return stats::range_selectivity(cs, op, bound, selectivity(e));
                    }
                }
                selectivity(e)
            }
            Expr::And(cs) => {
                stats::conjunction_selectivity(cs.iter().map(|c| self.sel_with(cat, c)))
            }
            Expr::Or(cs) => cs
                .iter()
                .map(|c| self.sel_with(cat, c))
                .sum::<f64>()
                .min(1.0),
            Expr::Not(c) => (1.0 - self.sel_with(cat, c)).max(0.05),
            Expr::InStr(c, opts) => self.in_sel(cat, c, opts.len()),
            Expr::InI64(c, opts) => self.in_sel(cat, c, opts.len()),
            Expr::IsNull(c) => match &**c {
                Expr::Col(name) => cat
                    .column_anywhere(name)
                    .map(|cs| cs.null_fraction.max(1e-9))
                    .unwrap_or_else(|| selectivity(e)),
                _ => selectivity(e),
            },
            _ => selectivity(e),
        }
    }

    fn in_sel(&self, cat: &StatsCatalog, c: &Expr, len: usize) -> f64 {
        match c {
            Expr::Col(name) => cat
                .column_anywhere(name)
                .map(|cs| (len as f64 * stats::eq_selectivity(cs)).min(1.0))
                .unwrap_or(0.1 * len as f64)
                .min(1.0),
            _ => (0.1 * len as f64).min(1.0),
        }
    }

    /// Output-cardinality estimate for a join: distinct-value containment
    /// (|L|·|R| / max(ndv)) per key pair when stats cover every pair, the
    /// probe-side cardinality otherwise (the legacy foreign-key guess).
    fn join_estimate(
        &self,
        l_est: f64,
        r_est: f64,
        left_keys: &[String],
        right_keys: &[String],
        kind: JoinKind,
    ) -> f64 {
        match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => (l_est * 0.5).max(1.0),
            JoinKind::Inner | JoinKind::LeftOuter => {
                let containment = self.catalog().and_then(|cat| {
                    left_keys
                        .iter()
                        .zip(right_keys)
                        .map(|(lk, rk)| {
                            let ls = cat.column_anywhere(lk)?;
                            let rs = cat.column_anywhere(rk)?;
                            Some(stats::join_key_selectivity(ls, rs))
                        })
                        .try_fold(1.0f64, |acc, s| s.map(|s| acc * s))
                });
                match containment {
                    Some(s) => {
                        let est = (l_est * r_est * s).max(1.0);
                        if kind == JoinKind::LeftOuter {
                            est.max(l_est)
                        } else {
                            est
                        }
                    }
                    None => l_est,
                }
            }
        }
    }

    /// Group-count estimate: capped NDV product over the group columns
    /// when stats cover all of them, a flat 10% of the input otherwise.
    fn group_estimate(&self, group_by: &[String], input_rows: f64) -> f64 {
        if let Some(cat) = self.catalog() {
            let ndvs: Vec<Option<f64>> = group_by
                .iter()
                .map(|g| cat.column_anywhere(g).map(|c| c.ndv))
                .collect();
            if let Some(groups) = stats::group_count(&ndvs, input_rows) {
                return groups;
            }
        }
        (input_rows * 0.1).max(1.0)
    }

    /// Lower one node. `required` is the set of output columns the parent
    /// needs (`None` = all); it drives scan pruning only — every operator
    /// still produces its full logical schema.
    fn lower(
        &mut self,
        node: &LogicalPlan,
        required: Option<&BTreeSet<String>>,
    ) -> Result<Lowered, EngineError> {
        match node {
            LogicalPlan::Scan { table } => Ok(self.lower_scan(*table, None, required)),
            LogicalPlan::CteScan { name } => {
                let info = self.ctes.get(name).ok_or_else(|| {
                    EngineError::Planner(format!(
                        "unknown CTE {name:?} (register it with LogicalQuery::with)"
                    ))
                })?;
                // The temp is materialized with the *union* of all
                // consumers' columns; each individual scan additionally
                // prunes to what its own consumer needs, so a wide column
                // never rides through exchanges that do not use it.
                let keep: Vec<String> = match required {
                    Some(req) => {
                        let mut keep: Vec<String> = info
                            .cols
                            .iter()
                            .filter(|c| req.contains(*c))
                            .cloned()
                            .collect();
                        if keep.is_empty() {
                            // Column-free consumer (count(*)): keep one.
                            keep.push(info.cols[0].clone());
                        }
                        keep
                    }
                    None => info.cols.clone(),
                };
                if keep.len() == info.cols.len() {
                    Ok(Lowered {
                        plan: Plan::temp_scan(name),
                        cols: info.cols.clone(),
                        part: info.part.clone(),
                        est: info.est,
                    })
                } else {
                    Ok(Lowered {
                        plan: Plan::TempScan {
                            name: name.clone(),
                            project: Some(keep.clone()),
                        },
                        part: prune_part(info.part.clone(), &keep),
                        est: info.est,
                        cols: keep,
                    })
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                if let LogicalPlan::Scan { table } = &**input {
                    let cols = table_columns(*table);
                    check_columns(&predicate.columns(), &cols, "filter predicate")?;
                    let mut scan = self.lower_scan(*table, Some(predicate.clone()), required);
                    scan.est = (scan.est * self.sel(predicate)).max(1.0);
                    return Ok(scan);
                }
                let mut child_req = required.cloned();
                if let Some(r) = &mut child_req {
                    r.extend(predicate.columns());
                }
                let child = self.lower(input, child_req.as_ref())?;
                check_columns(&predicate.columns(), &child.cols, "filter predicate")?;
                Ok(Lowered {
                    plan: child.plan.filter(predicate.clone()),
                    cols: child.cols,
                    part: child.part,
                    est: (child.est * self.sel(predicate)).max(1.0),
                })
            }
            LogicalPlan::Project { input, outputs } => {
                if outputs.is_empty() {
                    return planner_err("projection list is empty");
                }
                let mut child_req = BTreeSet::new();
                for o in outputs {
                    child_req.extend(o.expr.columns());
                }
                let child = self.lower(input, Some(&child_req))?;
                for o in outputs {
                    check_columns(&o.expr.columns(), &child.cols, "projection")?;
                }
                let cols: Vec<String> = outputs.iter().map(|o| o.name.clone()).collect();
                check_unique(&cols, "projection output")?;
                // Partition keys survive a projection only through plain
                // column references (renames).
                let mut renames: Vec<(&str, &str)> = Vec::new();
                for o in outputs {
                    if let Expr::Col(src) = &o.expr {
                        renames.push((src.as_str(), o.name.as_str()));
                    }
                }
                let part = match child.part {
                    Part::Hash(classes) => rename_classes(classes, &renames),
                    p => p,
                };
                Ok(Lowered {
                    plan: child.plan.map(outputs.clone()),
                    cols,
                    part,
                    est: child.est,
                })
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
                strategy,
            } => self.lower_join(
                left, right, left_keys, right_keys, *kind, *strategy, required,
            ),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => self.lower_aggregate(input, group_by, aggs),
            LogicalPlan::Sort { input, keys } => self.lower_sort(input, keys, None, required),
            LogicalPlan::Limit { input, n } => {
                if let LogicalPlan::Sort { input: si, keys } = &**input {
                    return self.lower_sort(si, keys, Some(*n), required);
                }
                let child = self.lower(input, required)?;
                let (plan, part) = gathered(child.plan, child.part);
                Ok(Lowered {
                    plan: Plan::Sort {
                        input: Box::new(plan),
                        keys: Vec::new(),
                        limit: Some(*n),
                    },
                    cols: child.cols,
                    part,
                    est: (*n as f64).min(child.est),
                })
            }
        }
    }

    fn lower_scan(
        &self,
        table: TpchTable,
        filter: Option<Expr>,
        required: Option<&BTreeSet<String>>,
    ) -> Lowered {
        let all = table_columns(table);
        let (project, cols) = match required {
            None => (None, all),
            Some(req) => {
                let mut keep: Vec<String> =
                    all.iter().filter(|c| req.contains(*c)).cloned().collect();
                if keep.is_empty() {
                    // A plan can be column-free (count(*) over literals);
                    // keep one column so the scan still carries row counts.
                    keep.push(all[0].clone());
                }
                if keep.len() == all.len() {
                    (None, keep)
                } else {
                    (Some(keep.clone()), keep)
                }
            }
        };
        // Partitioned placement hash-splits every base table on its first
        // column at load time with the same CRC32 bucketing the exchange
        // operators use, so a scan that keeps that column is already
        // co-partitioned for joins on it — no exchange needed.
        let part = if self.cfg.partitioned && self.costed() {
            let key = table_columns(table).remove(0);
            if cols.contains(&key) {
                let mut class = BTreeSet::new();
                class.insert(key);
                Part::Hash(vec![class])
            } else {
                Part::Any
            }
        } else {
            Part::Any
        };
        Lowered {
            plan: Plan::Scan {
                table,
                filter,
                project,
            },
            cols,
            part,
            est: self.cfg.stats.rows(table),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_keys: &[String],
        right_keys: &[String],
        kind: JoinKind,
        strategy: JoinStrategy,
        required: Option<&BTreeSet<String>>,
    ) -> Result<Lowered, EngineError> {
        if left_keys.len() != right_keys.len() {
            return planner_err(format!(
                "join key arity mismatch: {left_keys:?} vs {right_keys:?}"
            ));
        }
        if left_keys.is_empty() {
            return planner_err("join needs at least one key pair");
        }

        let (lreq, rreq) = match required {
            None => (None, None),
            Some(req) => {
                let lcols: BTreeSet<String> = self.logical_columns(left)?.into_iter().collect();
                let rcols: BTreeSet<String> = self.logical_columns(right)?.into_iter().collect();
                let mut lr: BTreeSet<String> =
                    req.iter().filter(|c| lcols.contains(*c)).cloned().collect();
                lr.extend(left_keys.iter().cloned());
                let mut rr: BTreeSet<String> =
                    req.iter().filter(|c| rcols.contains(*c)).cloned().collect();
                rr.extend(right_keys.iter().cloned());
                (Some(lr), Some(rr))
            }
        };
        let mut l = self.lower(left, lreq.as_ref())?;
        let mut r = self.lower(right, rreq.as_ref())?;
        check_columns(
            &left_keys.iter().cloned().collect(),
            &l.cols,
            "probe join keys",
        )?;
        check_columns(
            &right_keys.iter().cloned().collect(),
            &r.cols,
            "build join keys",
        )?;

        // Output schema: probe columns, plus build columns for joins that
        // emit them.
        let build_cols_kept = matches!(kind, JoinKind::Inner | JoinKind::LeftOuter);
        let mut cols = l.cols.clone();
        if build_cols_kept {
            cols.extend(r.cols.iter().cloned());
        }
        check_unique(&cols, "join output")?;

        let n = f64::from(self.cfg.nodes);
        let est = self.join_estimate(l.est, r.est, left_keys, right_keys, kind);

        // Coordinator-only inputs: align the other side on node 0 too.
        if l.part == Part::Single || r.part == Part::Single {
            match (&l.part, &r.part) {
                (Part::Single, Part::Single) | (Part::Single, Part::Replicated) => {}
                (Part::Single, _) => r = exchange(r, ExchangeKind::Gather, Part::Single),
                (Part::Replicated, Part::Single) => {
                    // Re-broadcasting from the coordinator replicates the
                    // build alongside the already-replicated probe.
                    r = exchange(r, ExchangeKind::Broadcast, Part::Replicated);
                }
                (_, Part::Single) => l = exchange(l, ExchangeKind::Gather, Part::Single),
                _ => unreachable!("one side is Single"),
            }
            let part = if l.part == Part::Replicated {
                Part::Replicated
            } else {
                Part::Single
            };
            return Ok(Lowered {
                plan: join_plan(l.plan, r.plan, left_keys, right_keys, kind),
                cols,
                part,
                est,
            });
        }

        // A replicated probe forces a replicated build (hash-partitioning
        // either side would duplicate rows).
        let broadcast = if r.part == Part::Replicated || l.part == Part::Replicated {
            true
        } else {
            match strategy {
                JoinStrategy::Broadcast => true,
                JoinStrategy::Repartition => false,
                // §3.2: broadcast when shipping (n−1) copies of the build
                // side is cheaper than repartitioning both inputs.
                JoinStrategy::Auto if self.costed() => {
                    let site = format!("join on {}={}", left_keys.join(","), right_keys.join(","));
                    let (b, d) = self.cost_model().join_exchange(
                        site,
                        l.est,
                        l.cols.len(),
                        key_positions(&l.part, left_keys).is_some(),
                        r.est,
                        r.cols.len(),
                        key_positions(&r.part, right_keys).is_some(),
                    );
                    self.note(d);
                    b
                }
                // Legacy flat rule: the factor 2 charges the replicated
                // hash-table build every node then has to do on top of the
                // network transfer.
                JoinStrategy::Auto => {
                    r.est <= self.cfg.broadcast_max_rows || 2.0 * r.est * (n - 1.0) <= l.est
                }
            }
        };

        if broadcast {
            if r.part != Part::Replicated {
                r = exchange(r, ExchangeKind::Broadcast, Part::Replicated);
            }
            let part = if l.part == Part::Replicated {
                Part::Replicated
            } else {
                // Probe rows stay where they were.
                prune_part(l.part.clone(), &cols)
            };
            return Ok(Lowered {
                plan: join_plan(l.plan, r.plan, left_keys, right_keys, kind),
                cols,
                part,
                est,
            });
        }

        // Repartition path: reuse existing partitioning when one side is
        // already hash-partitioned on (a positional subset of) its keys.
        let lpos = key_positions(&l.part, left_keys);
        let rpos = key_positions(&r.part, right_keys);
        let positions: Vec<usize> = match (lpos, rpos) {
            (Some(lp), Some(rp)) if lp == rp => lp,
            (Some(lp), _) => {
                let keys: Vec<String> = lp.iter().map(|&i| right_keys[i].clone()).collect();
                r = exchange(r, ExchangeKind::HashPartition(keys), Part::Any);
                lp
            }
            (None, Some(rp)) => {
                let keys: Vec<String> = rp.iter().map(|&i| left_keys[i].clone()).collect();
                l = exchange(l, ExchangeKind::HashPartition(keys), Part::Any);
                rp
            }
            (None, None) => {
                let all: Vec<usize> = (0..left_keys.len()).collect();
                l = exchange(
                    l,
                    ExchangeKind::HashPartition(left_keys.to_vec()),
                    Part::Any,
                );
                r = exchange(
                    r,
                    ExchangeKind::HashPartition(right_keys.to_vec()),
                    Part::Any,
                );
                all
            }
        };
        // Both sides are now co-partitioned on `positions`; the join output
        // is partitioned by those keys, with the build-side names equivalent
        // after an inner join (outer joins pad build keys with NULLs).
        let classes: Vec<BTreeSet<String>> = positions
            .iter()
            .map(|&i| {
                let mut class = BTreeSet::new();
                class.insert(left_keys[i].clone());
                if kind == JoinKind::Inner {
                    class.insert(right_keys[i].clone());
                }
                class
            })
            .collect();
        Ok(Lowered {
            plan: join_plan(l.plan, r.plan, left_keys, right_keys, kind),
            cols: cols.clone(),
            part: prune_part(Part::Hash(classes), &cols),
            est,
        })
    }

    fn lower_aggregate(
        &mut self,
        input: &LogicalPlan,
        group_by: &[String],
        aggs: &[AggSpec],
    ) -> Result<Lowered, EngineError> {
        if aggs.is_empty() {
            return planner_err("aggregate needs at least one aggregate function");
        }
        let mut child_req: BTreeSet<String> = group_by.iter().cloned().collect();
        for a in aggs {
            child_req.extend(a.expr.columns());
        }
        let child = self.lower(input, Some(&child_req))?;
        check_columns(
            &group_by.iter().cloned().collect(),
            &child.cols,
            "group-by keys",
        )?;
        for a in aggs {
            check_columns(&a.expr.columns(), &child.cols, "aggregate input")?;
        }
        let mut cols: Vec<String> = group_by.to_vec();
        cols.extend(aggs.iter().map(|a| a.name.clone()));
        check_unique(&cols, "aggregate output")?;

        let agg_node = |input: Plan, phase: AggPhase| Plan::Aggregate {
            input: Box::new(input),
            group_by: group_by.to_vec(),
            aggs: aggs.to_vec(),
            phase,
        };

        let has_distinct = aggs.iter().any(|a| a.func == AggFunc::CountDistinct);
        if group_by.is_empty() {
            // Global aggregate: local partials, merged on the coordinator —
            // except count(distinct), which needs the raw values gathered.
            return Ok(match child.part {
                Part::Single | Part::Replicated => Lowered {
                    part: child.part,
                    plan: agg_node(child.plan, AggPhase::Single),
                    cols,
                    est: 1.0,
                },
                _ if has_distinct => Lowered {
                    plan: agg_node(child.plan.gather(), AggPhase::Single),
                    cols,
                    part: Part::Single,
                    est: 1.0,
                },
                _ => Lowered {
                    plan: agg_node(
                        agg_node(child.plan, AggPhase::Partial).gather(),
                        AggPhase::Final,
                    ),
                    cols,
                    part: Part::Single,
                    est: 1.0,
                },
            });
        }

        let est = self.group_estimate(group_by, child.est);
        let group_set: BTreeSet<&str> = group_by.iter().map(String::as_str).collect();
        let local = match &child.part {
            Part::Single | Part::Replicated => true,
            Part::Any => false,
            // Rows agreeing on every group key hash to the same node iff
            // each partition-key position is readable from a group column.
            Part::Hash(classes) => classes
                .iter()
                .all(|class| class.iter().any(|c| group_set.contains(c.as_str()))),
        };
        if local {
            let part = prune_part(child.part.clone(), &cols);
            return Ok(Lowered {
                plan: agg_node(child.plan, AggPhase::Single),
                cols,
                part,
                est,
            });
        }

        let out_part = Part::Hash(
            group_by
                .iter()
                .map(|g| {
                    let mut c = BTreeSet::new();
                    c.insert(g.clone());
                    c
                })
                .collect(),
        );
        // count(distinct) needs the raw values (no pre-aggregation
        // possible); otherwise let the cost model weigh the partial pass
        // against reshuffling the raw input once.
        let pre_aggregate = if has_distinct {
            false
        } else if self.costed() {
            let (pre, d) = self.cost_model().pre_aggregation(
                format!("aggregate by {}", group_by.join(",")),
                child.est,
                est,
                cols.len(),
                child.cols.len(),
            );
            self.note(d);
            pre
        } else {
            true
        };
        if !pre_aggregate {
            // Reshuffle the raw input by group key, aggregate once.
            let shuffled = Plan::Exchange {
                input: Box::new(child.plan),
                kind: ExchangeKind::HashPartition(group_by.to_vec()),
            };
            return Ok(Lowered {
                plan: agg_node(shuffled, AggPhase::Single),
                cols,
                part: out_part,
                est,
            });
        }
        // Figure 6(c): pre-aggregate locally, reshuffle the partial states
        // by group key, merge.
        let partial = agg_node(child.plan, AggPhase::Partial);
        let shuffled = Plan::Exchange {
            input: Box::new(partial),
            kind: ExchangeKind::HashPartition(group_by.to_vec()),
        };
        Ok(Lowered {
            plan: agg_node(shuffled, AggPhase::Final),
            cols,
            part: out_part,
            est,
        })
    }

    fn lower_sort(
        &mut self,
        input: &LogicalPlan,
        keys: &[SortKey],
        limit: Option<usize>,
        required: Option<&BTreeSet<String>>,
    ) -> Result<Lowered, EngineError> {
        let mut child_req = required.cloned();
        if let Some(r) = &mut child_req {
            r.extend(keys.iter().map(|k| k.column.clone()));
        }
        let child = self.lower(input, child_req.as_ref())?;
        check_columns(
            &keys.iter().map(|k| k.column.clone()).collect(),
            &child.cols,
            "sort keys",
        )?;
        let (plan, part) = gathered(child.plan, child.part);
        let est = limit.map_or(child.est, |l| (l as f64).min(child.est));
        Ok(Lowered {
            plan: Plan::Sort {
                input: Box::new(plan),
                keys: keys.to_vec(),
                limit,
            },
            cols: child.cols,
            part,
            est,
        })
    }
}

/// One unit of planning order: a CTE (by index into the query's CTE list)
/// or a scalar/result stage (by index into its stage list).
#[derive(Debug, Clone, Copy)]
enum Item {
    Cte(usize),
    Stage(usize),
}

/// What the most recently emitted stage will produce, held until the
/// driver reports the observed cardinalities.
#[derive(Debug)]
struct PendingStage {
    fp: u64,
    kind: PendingKind,
}

#[derive(Debug)]
enum PendingKind {
    /// A materialized temp; `replicated` temps hold a full copy per node
    /// (count one node), partitioned ones are summed across nodes.
    Materialize { name: String, replicated: bool },
    /// A coordinator-complete scalar or result stage: the full row count
    /// lives on node 0 (other nodes report empty batches).
    Coordinator,
}

/// Incremental, feedback-aware planner for one [`LogicalQuery`].
///
/// Produced by [`Planner::begin_query`]. Call
/// [`next_stage`](Self::next_stage) to plan the next physical stage,
/// execute it, then report the observed per-node result cardinalities via
/// [`observe_rows`](Self::observe_rows) — in [`StatsMode::Feedback`] the
/// remaining stages are planned against those actuals instead of the
/// static estimates, and every observation is recorded in the session's
/// [`FeedbackCache`] (keyed by plan fingerprint) so repeated submissions
/// start from corrected numbers.
///
/// Stage order interleaves CTEs and scalar stages: a CTE that references
/// `Expr::Param` is deferred until the binding scalar stage has run, which
/// is what lets CTE subplans use earlier stages' results.
#[derive(Debug)]
pub struct QueryPlanner {
    p: Planner,
    query: LogicalQuery,
    requirements: BTreeMap<String, Option<BTreeSet<String>>>,
    /// How many times each CTE is scanned downstream (stages + later CTEs).
    consumers: BTreeMap<String, usize>,
    order: Vec<Item>,
    next: usize,
    params_bound: usize,
    pending: Option<PendingStage>,
    stage_notes: Vec<Vec<String>>,
}

impl QueryPlanner {
    fn new(p: Planner, query: LogicalQuery) -> Result<Self, EngineError> {
        if query.stages().is_empty() {
            return planner_err("query needs at least one stage");
        }
        let requirements = p.cte_requirements(&query)?;

        let names: Vec<&str> = query.ctes().iter().map(|(n, _)| n.as_str()).collect();
        let index_of = |name: &str| names.iter().position(|n| *n == name);

        // Consumer counts and per-plan CTE references.
        let mut consumers: BTreeMap<String, usize> = BTreeMap::new();
        let mut cte_refs: Vec<BTreeSet<String>> = Vec::new();
        for (_, plan) in query.ctes() {
            let mut refs = BTreeSet::new();
            collect_cte_refs(plan, &mut refs);
            for r in &refs {
                if index_of(r).is_none() {
                    return planner_err(format!(
                        "unknown CTE {r:?} (register it with LogicalQuery::with)"
                    ));
                }
            }
            count_cte_refs(plan, &mut consumers);
            cte_refs.push(refs);
        }
        let mut stage_refs: Vec<BTreeSet<String>> = Vec::new();
        for stage in query.stages() {
            let mut refs = BTreeSet::new();
            collect_cte_refs(stage, &mut refs);
            for r in &refs {
                if index_of(r).is_none() {
                    return planner_err(format!(
                        "unknown CTE {r:?} (register it with LogicalQuery::with)"
                    ));
                }
            }
            count_cte_refs(stage, &mut consumers);
            stage_refs.push(refs);
        }

        // Parameter widths each scalar stage will bind, resolved with every
        // CTE's schema pre-registered (order follows registration, so CTEs
        // may only reference earlier CTEs — same constraint lowering has).
        let mut probe = p.clone();
        for (name, plan) in query.ctes() {
            if probe.ctes.contains_key(name) {
                return planner_err(format!("duplicate CTE name {name:?}"));
            }
            let cols = probe.logical_columns(plan)?;
            probe.ctes.insert(
                name.clone(),
                CteInfo {
                    cols,
                    part: Part::Any,
                    est: 0.0,
                },
            );
        }
        let mut stage_width: Vec<usize> = Vec::new();
        for stage in query.stages() {
            stage_width.push(probe.logical_columns(stage)?.len());
        }

        // Emission order: before each scalar stage, emit (in registration
        // order) every CTE whose parameters are bound and whose referenced
        // CTEs are already emitted.
        let cte_needs: Vec<usize> = query
            .ctes()
            .iter()
            .map(|(_, plan)| plan.max_param().map_or(0, |m| m + 1))
            .collect();
        let n_ctes = query.ctes().len();
        let mut emitted = vec![false; n_ctes];
        let mut order: Vec<Item> = Vec::new();
        let mut bound = 0usize;
        let last = query.stages().len() - 1;
        for (j, stage) in query.stages().iter().enumerate() {
            loop {
                let mut progressed = false;
                for i in 0..n_ctes {
                    if emitted[i] || cte_needs[i] > bound {
                        continue;
                    }
                    let deps_ready = cte_refs[i]
                        .iter()
                        .all(|d| index_of(d).is_some_and(|k| emitted[k]));
                    if deps_ready {
                        emitted[i] = true;
                        order.push(Item::Cte(i));
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            for name in &stage_refs[j] {
                let i = index_of(name).expect("checked above");
                if !emitted[i] {
                    return planner_err(format!(
                        "stage {} reads CTE {name:?}, which references parameter \
                         {} bound only by this or a later stage",
                        j + 1,
                        cte_needs[i].saturating_sub(1),
                    ));
                }
            }
            if let Some(m) = stage.max_param() {
                if m >= bound {
                    return planner_err(format!(
                        "stage {} references parameter {m}, but earlier stages \
                         bind only {bound} parameter(s)",
                        j + 1
                    ));
                }
            }
            order.push(Item::Stage(j));
            if j != last {
                bound += stage_width[j];
            }
        }
        if let Some(i) = (0..n_ctes).find(|&i| !emitted[i]) {
            return planner_err(format!(
                "CTE {:?} references parameter {}, which no stage before the \
                 result stage binds (materialization cannot follow the result)",
                query.ctes()[i].0,
                cte_needs[i].saturating_sub(1),
            ));
        }

        Ok(Self {
            p,
            query,
            requirements,
            consumers,
            order,
            next: 0,
            params_bound: 0,
            pending: None,
            stage_notes: Vec::new(),
        })
    }

    /// Whether every stage has been emitted.
    pub fn finished(&self) -> bool {
        self.next >= self.order.len()
    }

    /// Total number of physical stages this query plans to.
    pub fn total_stages(&self) -> usize {
        self.order.len()
    }

    /// The rendered cost-model decisions of each emitted stage so far.
    pub fn stage_notes(&self) -> &[Vec<String>] {
        &self.stage_notes
    }

    /// Consume the planner, returning every stage's rendered decisions.
    pub fn into_stage_notes(self) -> Vec<Vec<String>> {
        self.stage_notes
    }

    /// Feedback-corrected estimate: `(effective, Some(observed))` when the
    /// cache overrides the static estimate, `(static, None)` otherwise.
    fn corrected(&self, fp: u64, est: f64) -> (f64, Option<f64>) {
        if self.p.cfg.mode == StatsMode::Feedback {
            if let Some(fb) = &self.p.cfg.feedback {
                if let Some(rows) = fb.lookup(fp) {
                    return (rows.max(1.0), Some(rows));
                }
            }
        }
        (est, None)
    }

    /// Plan the next stage, or `None` when the query is fully planned.
    ///
    /// In [`StatsMode::Feedback`] the stage is planned against every
    /// cardinality observed so far — call
    /// [`observe_rows`](Self::observe_rows) after executing each stage to
    /// keep the loop closed; skipping the call merely leaves the static
    /// estimates in force.
    pub fn next_stage(&mut self) -> Result<Option<QueryStage>, EngineError> {
        let Some(&item) = self.order.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        self.pending = None;
        match item {
            Item::Cte(i) => {
                let (name, plan) = self.query.ctes()[i].clone();
                let fp = plan_fingerprint(&plan);
                // Prune the materialization to the union of its consumers'
                // required columns: temps stop carrying attributes no stage
                // reads (e.g. Q2's "candidates" dragging s_comment into the
                // min-cost aggregate).
                let plan = match self.requirements.get(&name) {
                    Some(Some(req)) => {
                        let full = self.p.logical_columns(&plan)?;
                        let mut keep: Vec<&str> = full
                            .iter()
                            .filter(|c| req.contains(*c))
                            .map(String::as_str)
                            .collect();
                        if keep.is_empty() {
                            // Consumed only for row counts: keep one column.
                            keep.push(full[0].as_str());
                        }
                        if keep.len() < full.len() {
                            plan.clone().project(&keep)
                        } else {
                            plan
                        }
                    }
                    _ => plan,
                };
                let Lowered {
                    plan: lowered,
                    cols,
                    part,
                    est,
                } = self.p.lower(&plan, None)?;
                let (est, feedback_rows) = self.corrected(fp, est);
                // Materialize the temp on every node when replicating once
                // beats each downstream consumer re-exchanging it; larger
                // single-consumer temps stay distributed the way the plan
                // produced them (keeping their partitioning property).
                let consumers = self.consumers.get(&name).copied().unwrap_or(0).max(1);
                let (mplan, part) = match part {
                    p @ (Part::Any | Part::Hash(_)) => {
                        let broadcast = if self.p.costed() {
                            let (b, d) = self.p.cost_model().cte_placement(
                                format!("cte {name}"),
                                est,
                                cols.len(),
                                consumers,
                            );
                            self.p.note(d);
                            b
                        } else {
                            est <= self.p.cfg.broadcast_max_rows
                        };
                        if broadcast {
                            (lowered.broadcast(), Part::Replicated)
                        } else {
                            (lowered, p)
                        }
                    }
                    p => (lowered, p),
                };
                let replicated = matches!(part, Part::Replicated | Part::Single);
                self.p
                    .ctes
                    .insert(name.clone(), CteInfo { cols, part, est });
                self.pending = Some(PendingStage {
                    fp,
                    kind: PendingKind::Materialize {
                        name: name.clone(),
                        replicated,
                    },
                });
                self.stage_notes.push(self.p.take_notes());
                Ok(Some(QueryStage {
                    plan: fold_plan(mplan),
                    role: StageRole::Materialize(name),
                    estimated_rows: Some(est),
                    feedback_rows,
                }))
            }
            Item::Stage(i) => {
                let stage = self.query.stages()[i].clone();
                let fp = plan_fingerprint(&stage);
                let lowered = self.p.lower(&stage, None)?;
                let n_cols = lowered.cols.len();
                let (est, feedback_rows) = self.corrected(fp, lowered.est);
                let plan = fold_plan(finish_on_coordinator(lowered));
                let role = if i == self.query.stages().len() - 1 {
                    StageRole::Result
                } else {
                    self.params_bound += n_cols;
                    StageRole::Params
                };
                self.pending = Some(PendingStage {
                    fp,
                    kind: PendingKind::Coordinator,
                });
                self.stage_notes.push(self.p.take_notes());
                Ok(Some(QueryStage {
                    plan,
                    role,
                    estimated_rows: Some(est),
                    feedback_rows,
                }))
            }
        }
    }

    /// Report the observed per-node result cardinalities of the stage most
    /// recently returned by [`next_stage`](Self::next_stage).
    ///
    /// In [`StatsMode::Feedback`] the observation is recorded in the
    /// session's [`FeedbackCache`] and — for materialized temps — replaces
    /// the temp's estimate so the remaining stages re-plan against the
    /// actual cardinality. In other modes this is a no-op.
    pub fn observe_rows(&mut self, per_node: &[u64]) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        if self.p.cfg.mode != StatsMode::Feedback {
            return;
        }
        let observed = match &pending.kind {
            // Replicated temps hold the full result on every node;
            // coordinator stages hold it on node 0 only.
            PendingKind::Materialize {
                replicated: true, ..
            }
            | PendingKind::Coordinator => per_node.first().copied().unwrap_or(0) as f64,
            PendingKind::Materialize {
                replicated: false, ..
            } => per_node.iter().sum::<u64>() as f64,
        };
        if let Some(fb) = &self.p.cfg.feedback {
            fb.record(pending.fp, observed);
        }
        if let PendingKind::Materialize { name, .. } = pending.kind {
            if let Some(info) = self.p.ctes.get_mut(&name) {
                info.est = observed.max(1.0);
            }
        }
    }
}

/// Collect the names of every CTE `plan` scans.
fn collect_cte_refs(plan: &LogicalPlan, out: &mut BTreeSet<String>) {
    visit_cte_scans(plan, &mut |name| {
        out.insert(name.to_string());
    });
}

/// Count every CTE scan in `plan` (a consumer that scans a temp twice
/// really does re-exchange it twice).
fn count_cte_refs(plan: &LogicalPlan, out: &mut BTreeMap<String, usize>) {
    visit_cte_scans(plan, &mut |name| {
        *out.entry(name.to_string()).or_insert(0) += 1;
    });
}

fn visit_cte_scans(plan: &LogicalPlan, f: &mut impl FnMut(&str)) {
    match plan {
        LogicalPlan::Scan { .. } => {}
        LogicalPlan::CteScan { name } => f(name),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => visit_cte_scans(input, f),
        LogicalPlan::Join { left, right, .. } => {
            visit_cte_scans(left, f);
            visit_cte_scans(right, f);
        }
    }
}

/// Wrap `plan` in an exchange and update the partitioning property.
fn exchange(l: Lowered, kind: ExchangeKind, part: Part) -> Lowered {
    let part = match &kind {
        ExchangeKind::HashPartition(keys) => Part::Hash(
            keys.iter()
                .map(|k| {
                    let mut c = BTreeSet::new();
                    c.insert(k.clone());
                    c
                })
                .collect(),
        ),
        _ => part,
    };
    Lowered {
        plan: Plan::Exchange {
            input: Box::new(l.plan),
            kind,
        },
        cols: l.cols,
        part,
        est: l.est,
    }
}

fn join_plan(
    probe: Plan,
    build: Plan,
    probe_keys: &[String],
    build_keys: &[String],
    kind: JoinKind,
) -> Plan {
    Plan::HashJoin {
        probe: Box::new(probe),
        build: Box::new(build),
        probe_keys: probe_keys.to_vec(),
        build_keys: build_keys.to_vec(),
        kind,
    }
}

/// Constant-fold every expression site of a lowered physical plan:
/// literal-only subtrees collapse to single literals before the stage is
/// compiled for the vector VM (and the tree-walking oracle skips the same
/// re-computation per morsel).
fn fold_plan(plan: Plan) -> Plan {
    match plan {
        Plan::Scan {
            table,
            filter,
            project,
        } => Plan::Scan {
            table,
            filter: filter.map(|f| f.fold()),
            project,
        },
        Plan::TempScan { .. } => plan,
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(fold_plan(*input)),
            predicate: predicate.fold(),
        },
        Plan::Map { input, outputs } => Plan::Map {
            input: Box::new(fold_plan(*input)),
            outputs: outputs
                .into_iter()
                .map(|mut o| {
                    o.expr = o.expr.fold();
                    o
                })
                .collect(),
        },
        Plan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            kind,
        } => Plan::HashJoin {
            probe: Box::new(fold_plan(*probe)),
            build: Box::new(fold_plan(*build)),
            probe_keys,
            build_keys,
            kind,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => Plan::Aggregate {
            input: Box::new(fold_plan(*input)),
            group_by,
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.expr = a.expr.fold();
                    a
                })
                .collect(),
            phase,
        },
        Plan::Sort { input, keys, limit } => Plan::Sort {
            input: Box::new(fold_plan(*input)),
            keys,
            limit,
        },
        Plan::Exchange { input, kind } => Plan::Exchange {
            input: Box::new(fold_plan(*input)),
            kind,
        },
    }
}

/// Complete a lowered plan on the coordinator: gather unless node 0
/// already holds the full result.
fn finish_on_coordinator(lowered: Lowered) -> Plan {
    match lowered.part {
        Part::Single | Part::Replicated => lowered.plan,
        Part::Any | Part::Hash(_) => lowered.plan.gather(),
    }
}

/// A sort/limit needs the full result in one place: gather unless the
/// coordinator already holds it.
fn gathered(plan: Plan, part: Part) -> (Plan, Part) {
    match part {
        Part::Single => (plan, Part::Single),
        // Every node sorts its full copy; the coordinator's is the answer.
        Part::Replicated => (plan, Part::Replicated),
        Part::Any | Part::Hash(_) => (plan.gather(), Part::Single),
    }
}

/// Positions `p` such that `part` is hash-partitioned exactly on
/// `keys[p[0]], keys[p[1]], …` (readable through join equivalences), i.e.
/// the data is already co-partitioned for a join on `keys`.
fn key_positions(part: &Part, keys: &[String]) -> Option<Vec<usize>> {
    let Part::Hash(classes) = part else {
        return None;
    };
    let mut positions = Vec::with_capacity(classes.len());
    for class in classes {
        let pos = keys.iter().position(|k| class.contains(k.as_str()))?;
        positions.push(pos);
    }
    Some(positions)
}

/// Drop partition-key names that no longer exist in the output schema;
/// degrade to `Any` when a position loses all its names.
fn prune_part(part: Part, cols: &[String]) -> Part {
    match part {
        Part::Hash(classes) => {
            let pruned: Vec<BTreeSet<String>> = classes
                .into_iter()
                .map(|class| {
                    class
                        .into_iter()
                        .filter(|c| cols.contains(c))
                        .collect::<BTreeSet<String>>()
                })
                .collect();
            if pruned.iter().any(BTreeSet::is_empty) {
                Part::Any
            } else {
                Part::Hash(pruned)
            }
        }
        p => p,
    }
}

/// Apply projection renames to hash-partition classes.
fn rename_classes(classes: Vec<BTreeSet<String>>, renames: &[(&str, &str)]) -> Part {
    let renamed: Vec<BTreeSet<String>> = classes
        .into_iter()
        .map(|class| {
            renames
                .iter()
                .filter(|(src, _)| class.contains(*src))
                .map(|(_, dst)| dst.to_string())
                .collect::<BTreeSet<String>>()
        })
        .collect();
    if renamed.iter().any(BTreeSet::is_empty) {
        Part::Any
    } else {
        Part::Hash(renamed)
    }
}

fn check_columns(
    needed: &BTreeSet<String>,
    available: &[String],
    what: &str,
) -> Result<(), EngineError> {
    for c in needed {
        if !available.iter().any(|a| a == c) {
            return planner_err(format!(
                "{what} references unknown column {c:?} (available: {available:?})"
            ));
        }
    }
    Ok(())
}

fn check_unique(cols: &[String], what: &str) -> Result<(), EngineError> {
    let mut seen = BTreeSet::new();
    for c in cols {
        if !seen.insert(c) {
            return planner_err(format!("{what} has ambiguous column name {c:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, lits};
    use crate::plan::MapExpr;

    fn planner(nodes: u16) -> Planner {
        Planner::new(PlannerConfig::new(nodes))
    }

    fn count_kind(plan: &Plan, pred: &dyn Fn(&Plan) -> bool) -> usize {
        usize::from(pred(plan))
            + plan
                .children()
                .iter()
                .map(|c| count_kind(c, pred))
                .sum::<usize>()
    }

    fn broadcasts(plan: &Plan) -> usize {
        count_kind(plan, &|p| {
            matches!(
                p,
                Plan::Exchange {
                    kind: ExchangeKind::Broadcast,
                    ..
                }
            )
        })
    }

    fn repartitions(plan: &Plan) -> usize {
        count_kind(plan, &|p| {
            matches!(
                p,
                Plan::Exchange {
                    kind: ExchangeKind::HashPartition(_),
                    ..
                }
            )
        })
    }

    #[test]
    fn small_build_side_is_broadcast() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem).join(
            LogicalPlan::scan(TpchTable::Nation),
            &["l_suppkey"],
            &["n_nationkey"],
            JoinKind::Inner,
        );
        let plan = planner(4).plan(&lp).unwrap();
        assert_eq!(broadcasts(&plan), 1);
        assert_eq!(repartitions(&plan), 0);
    }

    #[test]
    fn large_build_side_repartitions_both_inputs() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem).join(
            LogicalPlan::scan(TpchTable::Orders),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        );
        let plan = planner(4).plan(&lp).unwrap();
        assert_eq!(broadcasts(&plan), 0);
        assert_eq!(repartitions(&plan), 2);
    }

    #[test]
    fn join_strategy_hints_are_respected() {
        let forced = LogicalPlan::scan(TpchTable::Lineitem).join_with(
            LogicalPlan::scan(TpchTable::Orders),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
            JoinStrategy::Broadcast,
        );
        let plan = planner(4).plan(&forced).unwrap();
        assert_eq!(broadcasts(&plan), 1);
        assert_eq!(repartitions(&plan), 0);
    }

    #[test]
    fn preaggregation_split_is_inserted() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &["l_returnflag"],
            vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
        );
        let plan = planner(4).plan(&lp).unwrap();
        // Final ← HashPartition ← Partial ← Scan, then a root gather.
        let Plan::Exchange { input: g, kind } = &plan else {
            panic!("root must gather, got {plan:?}");
        };
        assert_eq!(*kind, ExchangeKind::Gather);
        let Plan::Aggregate { phase, input, .. } = &**g else {
            panic!("expected final aggregate");
        };
        assert_eq!(*phase, AggPhase::Final);
        let Plan::Exchange { input, .. } = &**input else {
            panic!("expected reshuffle below final");
        };
        let Plan::Aggregate { phase, .. } = &**input else {
            panic!("expected partial aggregate");
        };
        assert_eq!(*phase, AggPhase::Partial);
    }

    #[test]
    fn count_distinct_reshuffles_raw_tuples() {
        let lp = LogicalPlan::scan(TpchTable::Partsupp).aggregate(
            &["ps_partkey"],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("ps_suppkey"),
                "suppliers",
            )],
        );
        let plan = planner(4).plan(&lp).unwrap();
        assert_eq!(
            count_kind(&plan, &|p| matches!(
                p,
                Plan::Aggregate {
                    phase: AggPhase::Partial,
                    ..
                }
            )),
            0,
            "count(distinct) must not pre-aggregate"
        );
        assert_eq!(repartitions(&plan), 1);
    }

    #[test]
    fn aggregation_over_copartitioned_join_stays_local() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem)
            .join(
                LogicalPlan::scan(TpchTable::Orders),
                &["l_orderkey"],
                &["o_orderkey"],
                JoinKind::Inner,
            )
            .aggregate(
                // Grouping by the *build-side* key: reachable through the
                // inner-join equivalence, so no extra reshuffle.
                &["o_orderkey"],
                vec![AggSpec::new(AggFunc::Count, lit(1), "lines")],
            );
        let plan = planner(4).plan(&lp).unwrap();
        assert_eq!(repartitions(&plan), 2, "only the join repartitions");
        assert_eq!(
            count_kind(&plan, &|p| matches!(
                p,
                Plan::Aggregate {
                    phase: AggPhase::Single,
                    ..
                }
            )),
            1
        );
    }

    #[test]
    fn global_count_distinct_gathers_raw_rows() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &[],
            vec![AggSpec::new(
                AggFunc::CountDistinct,
                col("l_suppkey"),
                "suppliers",
            )],
        );
        let plan = planner(4).plan(&lp).unwrap();
        // No Partial phase anywhere (the executor forbids pre-aggregating
        // count(distinct)): gather raw rows, aggregate once.
        assert_eq!(
            count_kind(&plan, &|p| matches!(
                p,
                Plan::Aggregate {
                    phase: AggPhase::Partial,
                    ..
                }
            )),
            0
        );
        let Plan::Aggregate { phase, input, .. } = &plan else {
            panic!("root is the aggregate, got {plan:?}");
        };
        assert_eq!(*phase, AggPhase::Single);
        assert!(matches!(
            **input,
            Plan::Exchange {
                kind: ExchangeKind::Gather,
                ..
            }
        ));
    }

    #[test]
    fn global_aggregate_gathers_partials() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem).aggregate(
            &[],
            vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
        );
        let plan = planner(4).plan(&lp).unwrap();
        // Partial per node, gather, Final at the coordinator — and no extra
        // root gather (the result is already coordinator-only).
        assert_eq!(plan.exchange_count(), 1);
        let Plan::Aggregate { phase, .. } = &plan else {
            panic!("root is the final aggregate");
        };
        assert_eq!(*phase, AggPhase::Final);
    }

    #[test]
    fn scans_are_pruned_to_used_columns() {
        let lp = LogicalPlan::scan(TpchTable::Lineitem)
            .filter(col("l_shipdate").lt(lit(10_000)))
            .aggregate(
                &["l_returnflag"],
                vec![AggSpec::new(AggFunc::Sum, col("l_quantity"), "qty")],
            );
        let plan = planner(2).plan(&lp).unwrap();
        fn find_scan(p: &Plan) -> Option<&Plan> {
            if matches!(p, Plan::Scan { .. }) {
                return Some(p);
            }
            p.children().iter().find_map(|c| find_scan(c))
        }
        let Some(Plan::Scan {
            filter, project, ..
        }) = find_scan(&plan)
        else {
            panic!("plan has a scan");
        };
        assert!(filter.is_some(), "filter is pushed into the scan");
        // The filter column is evaluated pre-projection and must not be kept.
        assert_eq!(
            project.as_deref(),
            Some(&["l_quantity".to_string(), "l_returnflag".to_string()][..])
        );
    }

    #[test]
    fn sort_gathers_before_ordering() {
        let lp = LogicalPlan::scan(TpchTable::Nation)
            .sort(vec![SortKey::asc("n_name")])
            .limit(3);
        let plan = planner(4).plan(&lp).unwrap();
        let Plan::Sort { input, limit, .. } = &plan else {
            panic!("root is a sort, got {plan:?}");
        };
        assert_eq!(*limit, Some(3), "limit folds into the sort");
        assert!(matches!(
            **input,
            Plan::Exchange {
                kind: ExchangeKind::Gather,
                ..
            }
        ));
    }

    #[test]
    fn unknown_columns_are_rejected_not_panicked() {
        let bad = LogicalPlan::scan(TpchTable::Nation).filter(col("no_such").eq(lit(1)));
        assert!(matches!(
            planner(2).plan(&bad),
            Err(EngineError::Planner(_))
        ));
        let bad = LogicalPlan::scan(TpchTable::Nation)
            .aggregate(&["nope"], vec![AggSpec::new(AggFunc::Count, lit(1), "c")]);
        assert!(matches!(
            planner(2).plan(&bad),
            Err(EngineError::Planner(_))
        ));
        let bad = LogicalPlan::scan(TpchTable::Nation).join(
            LogicalPlan::scan(TpchTable::Region),
            &["n_regionkey"],
            &[],
            JoinKind::Inner,
        );
        assert!(matches!(
            planner(2).plan(&bad),
            Err(EngineError::Planner(_))
        ));
    }

    #[test]
    fn ambiguous_join_output_is_rejected() {
        let bad = LogicalPlan::scan(TpchTable::Nation).join(
            LogicalPlan::scan(TpchTable::Nation),
            &["n_regionkey"],
            &["n_regionkey"],
            JoinKind::Inner,
        );
        assert!(matches!(
            planner(2).plan(&bad),
            Err(EngineError::Planner(_))
        ));
        // Semi joins drop the build columns, so self-joins are fine there.
        let ok = LogicalPlan::scan(TpchTable::Nation).join(
            LogicalPlan::scan(TpchTable::Nation),
            &["n_regionkey"],
            &["n_regionkey"],
            JoinKind::LeftSemi,
        );
        assert!(planner(2).plan(&ok).is_ok());
    }

    #[test]
    fn projection_renames_keep_partitioning() {
        let lp = LogicalPlan::scan(TpchTable::Orders)
            .join(
                LogicalPlan::scan(TpchTable::Lineitem).project(&["l_orderkey", "l_quantity"]),
                &["o_orderkey"],
                &["l_orderkey"],
                JoinKind::Inner,
            )
            .select(vec![
                MapExpr::new("key", col("o_orderkey")),
                MapExpr::new("qty", col("l_quantity")),
            ])
            .aggregate(&["key"], vec![AggSpec::new(AggFunc::Sum, col("qty"), "q")]);
        let plan = planner(4).plan(&lp).unwrap();
        // Join repartitions both sides; the rename preserves the property,
        // so the aggregate stays local (no third repartition).
        assert_eq!(repartitions(&plan), 2);
    }

    #[test]
    fn cte_materialization_pruned_to_union_of_consumers() {
        use crate::logical::LogicalQuery;
        // One consumer needs (s_suppkey, s_nationkey, s_acctbal), the other
        // only s_nationkey; the materialization must carry exactly the
        // union, and the narrow consumer's TempScan projects further.
        let narrow = LogicalPlan::from_cte("supp").aggregate(
            &["s_nationkey"],
            vec![AggSpec::new(AggFunc::Count, lit(1), "cnt")],
        );
        let result = LogicalPlan::from_cte("supp")
            .project(&["s_suppkey", "s_nationkey", "s_acctbal"])
            .join(
                narrow,
                &["s_nationkey"],
                &["s_nationkey"],
                JoinKind::LeftSemi,
            );
        let q = LogicalQuery::cte("supp", LogicalPlan::scan(TpchTable::Supplier)).then(result);
        let physical = planner(2).plan_query(&q).unwrap();

        fn find<'p>(p: &'p Plan, pred: &dyn Fn(&Plan) -> bool) -> Option<&'p Plan> {
            if pred(p) {
                return Some(p);
            }
            p.children().iter().find_map(|c| find(c, pred))
        }
        // Materialize stage: the supplier scan keeps only the union.
        let scan = find(&physical.stages[0].plan, &|p| {
            matches!(p, Plan::Scan { .. })
        })
        .expect("scan in materialize stage");
        let Plan::Scan { project, .. } = scan else {
            unreachable!()
        };
        assert_eq!(
            project.as_deref(),
            Some(
                &[
                    "s_suppkey".to_string(),
                    "s_nationkey".to_string(),
                    "s_acctbal".to_string()
                ][..]
            ),
            "materialization must carry exactly the consumers' union"
        );
        // Result stage: the aggregate consumer's TempScan projects to its
        // own single column.
        let narrow_scan = find(&physical.stages[1].plan, &|p| {
            matches!(
                p,
                Plan::TempScan {
                    project: Some(_),
                    ..
                }
            )
        })
        .expect("projected TempScan for the narrow consumer");
        let Plan::TempScan { project, .. } = narrow_scan else {
            unreachable!()
        };
        assert_eq!(project.as_deref(), Some(&["s_nationkey".to_string()][..]));
    }

    #[test]
    fn unpruned_cte_scans_share_without_projection() {
        use crate::logical::LogicalQuery;
        // A consumer that needs every CTE column gets a bare TempScan
        // (shared, no copy) rather than a projected one.
        let q = LogicalQuery::cte(
            "nations",
            LogicalPlan::scan(TpchTable::Nation).project(&["n_nationkey", "n_name"]),
        )
        .then(LogicalPlan::from_cte("nations").sort(vec![SortKey::asc("n_name")]));
        let physical = planner(2).plan_query(&q).unwrap();
        fn temp_scans(p: &Plan, out: &mut Vec<Option<Vec<String>>>) {
            if let Plan::TempScan { project, .. } = p {
                out.push(project.clone());
            }
            for c in p.children() {
                temp_scans(c, out);
            }
        }
        let mut scans = Vec::new();
        temp_scans(&physical.stages[1].plan, &mut scans);
        assert_eq!(scans, vec![None]);
    }

    #[test]
    fn stats_scale_with_the_generator() {
        let s = TableStats::for_scale_factor(0.01);
        assert_eq!(s.rows(TpchTable::Region), 5.0);
        assert_eq!(s.rows(TpchTable::Nation), 25.0);
        assert_eq!(s.rows(TpchTable::Supplier), 100.0);
        assert_eq!(s.rows(TpchTable::Orders), 15_000.0);
        assert_eq!(s.rows(TpchTable::Lineitem), 60_000.0);
    }

    #[test]
    fn selectivity_heuristics_are_sane() {
        let eq = col("a").eq(lit(1));
        let rng = col("a").gt(lit(1));
        assert!(selectivity(&eq) < selectivity(&rng));
        let conj = eq.clone().and(rng.clone());
        assert!(selectivity(&conj) < selectivity(&eq));
        let disj = eq.clone().or(rng);
        assert!(selectivity(&disj) > selectivity(&eq));
        assert!(selectivity(&lits("x").like("a%")) <= 0.1);
    }

    #[test]
    fn cte_may_reference_earlier_scalar_params() {
        use crate::expr::param;
        use crate::logical::LogicalQuery;
        // Stage 1 binds param(0); the CTE's subplan consumes it, so its
        // materialization must be deferred past the Params stage.
        let scalar = LogicalPlan::scan(TpchTable::Nation).aggregate(
            &[],
            vec![AggSpec::new(AggFunc::Max, col("n_regionkey"), "m")],
        );
        let dependent =
            LogicalPlan::scan(TpchTable::Region).filter(col("r_regionkey").lt(param(0)));
        let q = LogicalQuery::stage(scalar)
            .with("small", dependent)
            .then(LogicalPlan::from_cte("small"));
        let physical = planner(2).plan_query(&q).unwrap();
        let roles: Vec<String> = physical.stages.iter().map(|s| s.role.label()).collect();
        assert_eq!(
            roles,
            vec!["params", "materialize \"small\"", "result"],
            "param-dependent CTE must be emitted after its binding stage"
        );
    }

    #[test]
    fn cte_param_bound_too_late_is_rejected() {
        use crate::expr::param;
        use crate::logical::LogicalQuery;
        // Only the result stage could bind param(0), but a materialization
        // cannot run after the result: planning must fail, not panic.
        let dependent =
            LogicalPlan::scan(TpchTable::Region).filter(col("r_regionkey").lt(param(0)));
        let q = LogicalQuery::cte("small", dependent).then(LogicalPlan::from_cte("small"));
        assert!(matches!(
            planner(2).plan_query(&q),
            Err(EngineError::Planner(_))
        ));
    }

    #[test]
    fn feedback_cache_flips_cte_to_broadcast() {
        use crate::logical::LogicalQuery;
        // A CTE whose static estimate is huge stays partitioned; after one
        // execution observes a tiny actual, the next submission broadcasts.
        let q = LogicalQuery::cte(
            "big",
            LogicalPlan::scan(TpchTable::Lineitem).project(&["l_orderkey", "l_quantity"]),
        )
        .then(LogicalPlan::scan(TpchTable::Orders).join(
            LogicalPlan::from_cte("big"),
            &["o_orderkey"],
            &["l_orderkey"],
            JoinKind::Inner,
        ));
        let fb = Arc::new(FeedbackCache::new());
        let mut cfg = PlannerConfig::new(4);
        cfg.mode = StatsMode::Feedback;
        cfg.feedback = Some(Arc::clone(&fb));
        let p = Planner::new(cfg);

        let mut qp = p.begin_query(&q).unwrap();
        let s0 = qp.next_stage().unwrap().unwrap();
        assert!(s0.feedback_rows.is_none(), "cache starts empty");
        assert_eq!(broadcasts(&s0.plan), 0, "60k-row temp stays partitioned");
        qp.observe_rows(&[3, 2, 2, 3]);
        let _result_stage = qp.next_stage().unwrap().unwrap();
        qp.observe_rows(&[10, 0, 0, 0]);
        assert!(qp.next_stage().unwrap().is_none());
        assert!(!fb.is_empty(), "observations land in the session cache");

        let mut qp = p.begin_query(&q).unwrap();
        let s0 = qp.next_stage().unwrap().unwrap();
        assert_eq!(s0.feedback_rows, Some(10.0), "partitioned temp sums nodes");
        assert!(
            broadcasts(&s0.plan) >= 1,
            "corrected 10-row temp must be broadcast: {:?}",
            s0.plan
        );
    }

    #[test]
    fn stats_off_ignores_feedback_observations() {
        use crate::logical::LogicalQuery;
        let q = LogicalQuery::cte(
            "big",
            LogicalPlan::scan(TpchTable::Lineitem).project(&["l_orderkey"]),
        )
        .then(LogicalPlan::from_cte("big"));
        let fb = Arc::new(FeedbackCache::new());
        let mut cfg = PlannerConfig::new(4);
        cfg.mode = StatsMode::Off;
        cfg.feedback = Some(Arc::clone(&fb));
        let p = Planner::new(cfg);
        let mut qp = p.begin_query(&q).unwrap();
        while let Some(_stage) = qp.next_stage().unwrap() {
            qp.observe_rows(&[1, 1, 1, 1]);
        }
        assert!(fb.is_empty(), "Off mode must not record feedback");
    }

    #[test]
    fn explained_plans_surface_cost_decisions() {
        // Q3's shape: two large joins, one small build side. The rendered
        // decisions must name both outcomes so operators (and the CI grep)
        // can see why each exchange was chosen.
        let lp = LogicalPlan::scan(TpchTable::Lineitem)
            .join(
                LogicalPlan::scan(TpchTable::Orders),
                &["l_orderkey"],
                &["o_orderkey"],
                JoinKind::Inner,
            )
            .join(
                LogicalPlan::scan(TpchTable::Nation),
                &["l_suppkey"],
                &["n_nationkey"],
                JoinKind::Inner,
            );
        let (_plan, notes) = planner(4).plan_explained(&lp).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("repartition")),
            "lineitem ⋈ orders must log a repartition decision: {notes:?}"
        );
        assert!(
            notes.iter().any(|n| n.contains("broadcast")),
            "⋈ nation must log a broadcast decision: {notes:?}"
        );
        // StatsMode::Off keeps the legacy silent heuristics.
        let mut cfg = PlannerConfig::new(4);
        cfg.mode = StatsMode::Off;
        let (_plan, notes) = Planner::new(cfg).plan_explained(&lp).unwrap();
        assert!(notes.is_empty(), "Off mode records no decisions: {notes:?}");
    }

    #[test]
    fn catalog_stats_sharpen_filtered_estimates() {
        // With a column catalog, a tight range predicate shrinks the build
        // side enough to broadcast a join the flat heuristics repartition.
        let lp = LogicalPlan::scan(TpchTable::Lineitem).join(
            LogicalPlan::scan(TpchTable::Orders).filter(col("o_custkey").lt(lit(30))),
            &["l_orderkey"],
            &["o_orderkey"],
            JoinKind::Inner,
        );
        let mut with_catalog = PlannerConfig::new(4);
        with_catalog.stats = TableStats::for_scale_factor(0.01);
        with_catalog.catalog = Some(Arc::new(StatsCatalog::declared_tpch(0.01)));
        let plan = Planner::new(with_catalog).plan(&lp).unwrap();
        assert_eq!(
            broadcasts(&plan),
            1,
            "catalog min/max bounds the filter to a tiny fraction of orders"
        );
    }
}
